//! Integration tests pinning the paper's headline claims, each tagged
//! with the section or figure it reproduces.

use hdoms::core::perf::{paper, PerfReport, WorkloadShape};
use hdoms::hdc::multibit::IdPrecision;
use hdoms::hdc::BinaryHypervector;
use hdoms::ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms::oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms::oms::search::ExactBackend;
use hdoms::rram::chip::ChipSpec;
use hdoms::rram::config::MlcConfig;
use hdoms::rram::storage::HypervectorStore;
use hdoms::rram::times;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §5.2.1 / abstract: "3x better storage capacity per area".
#[test]
fn claim_three_x_storage_capacity() {
    let slc = ChipSpec::paper_chip(MlcConfig::with_bits(1));
    let mlc = ChipSpec::paper_chip(MlcConfig::with_bits(3));
    assert_eq!(mlc.storage_bits(), 3 * slc.storage_bits());
}

/// Fig. 7: storage BER ordering and ballpark at one day.
#[test]
fn claim_storage_error_rates() {
    let mut rng = StdRng::seed_from_u64(2);
    let hvs: Vec<BinaryHypervector> = (0..8)
        .map(|_| BinaryHypervector::random(&mut rng, 8192))
        .collect();
    let mut day_rates = Vec::new();
    for bits in 1..=3u8 {
        let store = HypervectorStore::program(MlcConfig::with_bits(bits), &hvs);
        let mut read_rng = StdRng::seed_from_u64(3);
        let (_, stats) = store.read_all(times::AFTER_1DAY, &mut read_rng);
        day_rates.push(stats.bit_error_rate());
    }
    assert!(day_rates[0] < 0.01, "1 bit/cell at 1 day: {}", day_rates[0]);
    assert!(
        (0.005..0.08).contains(&day_rates[1]),
        "2 bits/cell at 1 day: {}",
        day_rates[1]
    );
    assert!(
        (0.05..0.2).contains(&day_rates[2]),
        "3 bits/cell at 1 day: {}",
        day_rates[2]
    );
}

/// Abstract / Fig. 11: "tolerate up to 10% memory errors".
#[test]
fn claim_ten_percent_error_tolerance() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 4);
    let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
    let mut config = pipeline.config().exact;
    config.preprocess = pipeline.config().preprocess;
    let clean_backend = ExactBackend::build(&workload.library, config);
    let clean = pipeline.run(&workload, &clean_backend);
    let noisy = pipeline.run(
        &workload,
        &clean_backend.with_error_rates(0.10, 0.10, 0xabc),
    );
    assert!(
        noisy.identifications() as f64 >= 0.8 * clean.identifications() as f64,
        "10% BER ids {} vs clean {}",
        noisy.identifications(),
        clean.identifications()
    );
}

/// Fig. 11: multi-bit ID hypervectors beat binary ones under error.
#[test]
fn claim_multibit_ids_beat_binary() {
    // Pool over several seeds; tiny workloads are noisy.
    let mut bits3 = 0usize;
    let mut bits1 = 0usize;
    for seed in 5..9u64 {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        for (precision, tally) in [
            (IdPrecision::Bits3, &mut bits3),
            (IdPrecision::Bits1, &mut bits1),
        ] {
            let mut config = pipeline.config().exact;
            config.preprocess = pipeline.config().preprocess;
            config.encoder.id_precision = precision;
            let backend =
                ExactBackend::build(&workload.library, config).with_error_rates(0.05, 0.05, seed);
            *tally += pipeline.run(&workload, &backend).identifications();
        }
    }
    assert!(
        bits3 >= bits1,
        "3-bit IDs ({bits3}) should not trail 1-bit IDs ({bits1}) under 5% BER"
    );
}

/// §5.3.3 / Fig. 12: speedup and energy-efficiency ordering.
#[test]
fn claim_speedup_and_energy_ordering() {
    let report = PerfReport::generate(WorkloadShape::iprg2012_paper());
    let speedups = report.speedups();
    // ANN CPU > ANN GPU > HyperOMS > 1.
    assert!(speedups[0].1 > speedups[1].1 && speedups[1].1 > speedups[2].1);
    assert!(speedups[2].1 > 1.0);
    // Within 35 % of the paper's factors.
    assert!((speedups[0].1 / paper::SPEEDUP_VS_ANNSOLO_CPU - 1.0).abs() < 0.35);
    assert!((speedups[1].1 / paper::SPEEDUP_VS_ANNSOLO_GPU - 1.0).abs() < 0.35);
    assert!((speedups[2].1 / paper::SPEEDUP_VS_HYPEROMS_GPU - 1.0).abs() < 0.35);
    // Energy: two to three orders of magnitude vs ANN-SoLo CPU.
    let eff = report.energy_efficiency();
    assert!((500.0..10_000.0).contains(&eff[3].1), "ours {}", eff[3].1);
}

/// §5.2.2: 16x throughput over the 4-row MLC CIM macro.
#[test]
fn claim_sixteen_x_throughput() {
    let model = hdoms::core::perf::RramModel::default();
    assert_eq!(model.throughput_vs(4.0), paper::THROUGHPUT_VS_LI2022);
}
