//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use hdoms::hdc::corrupt::flip_bits;
use hdoms::hdc::similarity::{dot, hamming_distance};
use hdoms::hdc::BinaryHypervector;
use hdoms::ms::peptide::Peptide;
use hdoms::ms::preprocess::{PreprocessConfig, Preprocessor};
use hdoms::ms::spectrum::{Peak, Spectrum, SpectrumOrigin};
use hdoms::oms::fdr::filter_fdr;
use hdoms::oms::psm::Psm;
use hdoms::oms::window::PrecursorWindow;
use hdoms::rram::config::MlcConfig;
use hdoms::rram::levels::LevelMap;
use hdoms::rram::storage::HypervectorStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_hv(dim: usize) -> impl Strategy<Value = BinaryHypervector> {
    any::<u64>()
        .prop_map(move |seed| BinaryHypervector::random(&mut StdRng::seed_from_u64(seed), dim))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hamming distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn hamming_is_a_metric(a in arb_hv(256), b in arb_hv(256), c in arb_hv(256)) {
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        prop_assert!(
            hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c)
        );
    }

    /// dot = D - 2·hamming for all pairs.
    #[test]
    fn dot_hamming_identity(a in arb_hv(320), b in arb_hv(320)) {
        prop_assert_eq!(dot(&a, &b), 320 - 2 * i64::from(hamming_distance(&a, &b)));
    }

    /// Corruption at rate 0 is identity; at rate 1 it is complement.
    #[test]
    fn corruption_edge_rates(a in arb_hv(192), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(flip_bits(&mut rng, &a, 0.0), a.clone());
        let flipped = flip_bits(&mut rng, &a, 1.0);
        prop_assert_eq!(hamming_distance(&a, &flipped), 192);
    }

    /// Ideal MLC storage round-trips any hypervector at any precision.
    #[test]
    fn ideal_storage_roundtrip(a in arb_hv(500), bits in 1u8..=3) {
        let store = HypervectorStore::program(MlcConfig::ideal(bits), std::slice::from_ref(&a));
        let mut rng = StdRng::seed_from_u64(1);
        let (read, stats) = store.read_all(86_400.0, &mut rng);
        prop_assert_eq!(&read[0], &a);
        prop_assert_eq!(stats.bit_errors, 0);
    }

    /// Level decode inverts encode for every level at every precision.
    #[test]
    fn level_map_roundtrip(bits in 1u8..=3) {
        let map = LevelMap::new(&MlcConfig::with_bits(bits));
        for level in 0..map.levels() {
            prop_assert_eq!(map.decode(map.target(level)), level);
            prop_assert_eq!(
                map.bits_to_symbol(&map.symbol_to_bits(level)),
                level
            );
        }
    }

    /// Peptide parse/display round-trips for unmodified peptides.
    #[test]
    fn peptide_roundtrip(s in "[ACDEFGHIKLMNPQRSTVWY]{1,30}") {
        let p = Peptide::parse(&s).unwrap();
        prop_assert_eq!(p.to_string(), s);
        prop_assert!(p.monoisotopic_mass() > 18.0);
    }

    /// Decoys always preserve the precursor mass and length.
    #[test]
    fn decoy_mass_invariant(s in "[ACDEFGHILMNPQSTVWY]{4,25}[KR]", seed in any::<u64>()) {
        let p = Peptide::parse(&s).unwrap();
        let d = p.decoy(seed);
        prop_assert!((d.monoisotopic_mass() - p.monoisotopic_mass()).abs() < 1e-9);
        prop_assert_eq!(d.len(), p.len());
    }

    /// Preprocessing output is always sorted, deduplicated, max-normalised
    /// and within the configured bin range.
    #[test]
    fn preprocess_invariants(
        mzs in proptest::collection::vec(100.0f64..1500.0, 5..60),
        intensities in proptest::collection::vec(1.0f64..1000.0, 5..60),
    ) {
        let n = mzs.len().min(intensities.len());
        let peaks: Vec<Peak> = mzs[..n]
            .iter()
            .zip(&intensities[..n])
            .map(|(&mz, &i)| Peak::new(mz, i))
            .collect();
        let spectrum = Spectrum::new(0, 600.0, 2, peaks, SpectrumOrigin::Query);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            intensity_threshold: 0.0,
            ..PreprocessConfig::default()
        });
        let binned = pre.run(&spectrum).unwrap();
        let num_bins = pre.config().num_bins() as u32;
        let mut max = 0.0f32;
        for w in binned.peaks().windows(2) {
            prop_assert!(w[0].bin < w[1].bin, "bins must be strictly increasing");
        }
        for p in binned.peaks() {
            prop_assert!(p.bin < num_bins);
            prop_assert!(p.intensity > 0.0 && p.intensity <= 1.0);
            max = max.max(p.intensity);
        }
        prop_assert!((max - 1.0).abs() < 1e-6, "strongest bin must be 1.0");
    }

    /// FDR filter: acceptance count is monotone in alpha and accepted PSMs
    /// are always targets.
    #[test]
    fn fdr_monotone_in_alpha(scores in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..200)) {
        let psms: Vec<Psm> = scores
            .iter()
            .enumerate()
            .map(|(i, &(score, is_decoy))| Psm {
                query_id: i as u32,
                reference_id: i as u32,
                score,
                is_decoy,
                precursor_delta: 0.0,
            })
            .collect();
        let tight = filter_fdr(&psms, 0.01);
        let loose = filter_fdr(&psms, 0.3);
        prop_assert!(tight.accepted.len() <= loose.accepted.len());
        prop_assert!(tight.accepted.iter().all(|p| p.is_target()));
        prop_assert!(loose.accepted.iter().all(|p| p.is_target()));
    }

    /// Precursor windows: contains() agrees with reference_mass_range().
    #[test]
    fn window_contains_matches_range(
        query_mass in 400.0f64..4000.0,
        reference_mass in 400.0f64..4000.0,
        open in any::<bool>(),
    ) {
        let window = if open {
            PrecursorWindow::open_default()
        } else {
            PrecursorWindow::standard_default()
        };
        let (lo, hi) = window.reference_mass_range(query_mass);
        prop_assert_eq!(
            window.contains(query_mass, reference_mass),
            (lo..=hi).contains(&reference_mass)
        );
    }
}
