//! Cross-crate integration tests: the full paper pipeline from raw
//! synthetic spectra to FDR-filtered identifications, on software and on
//! the simulated RRAM accelerator.

use hdoms::core::accelerator::AcceleratorConfig;
use hdoms::engine::Engine;
use hdoms::hdc::item_memory::LevelStyle;
use hdoms::index::{IndexConfig, IndexedBackendKind};
use hdoms::ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms::oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms::oms::window::PrecursorWindow;
use std::sync::Arc;

fn small_accelerator_config() -> AcceleratorConfig {
    let mut config = AcceleratorConfig::default();
    config.encoder.dim = 2048;
    config.encoder.q_levels = 16;
    config.encoder.level_style = LevelStyle::Chunked { num_chunks: 64 };
    config.threads = 4;
    config
}

#[test]
fn software_pipeline_identifies_and_controls_fdr() {
    // Pool several tiny workloads: each has only ~45 matchable queries, so
    // per-run false rates are quantised in steps of ~2.5 %.
    let mut correct = 0usize;
    let mut wrong = 0usize;
    let mut matchable = 0usize;
    for seed in 1001..1005 {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed);
        let outcome = OmsPipeline::new(PipelineConfig::fast_test()).run_exact(&workload);
        let eval = outcome.evaluate(&workload);
        correct += eval.correct;
        wrong += eval.wrong_reference + eval.unmatchable_accepted;
        matchable += workload.matchable_queries();
    }
    let recall = correct as f64 / matchable as f64;
    let false_rate = wrong as f64 / (correct + wrong) as f64;
    assert!(recall > 0.55, "pooled recall {recall}");
    assert!(false_rate < 0.10, "pooled false rate {false_rate}");
}

#[test]
fn accelerator_matches_software_quality() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 1002);
    let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
    let software = pipeline.run_exact(&workload);
    // The unified construction path: the accelerator rides inside an
    // Engine (cold build → sharded search), as every caller now does.
    let accel = Arc::new(Engine::from_library(
        &workload.library,
        IndexConfig {
            kind: IndexedBackendKind::Rram(small_accelerator_config()),
            threads: 4,
            ..IndexConfig::default()
        },
    ));
    let (hardware, _) = accel.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
    let sw = software.evaluate(&workload).correct as f64;
    let hw = hardware.evaluate(&workload).correct as f64;
    assert!(
        hw >= 0.8 * sw,
        "RRAM accelerator correct ids {hw} vs software {sw}"
    );
}

#[test]
fn open_window_strictly_beats_standard_on_modified_workload() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 1003);
    let open = OmsPipeline::new(PipelineConfig::fast_test()).run_exact(&workload);
    let mut config = PipelineConfig::fast_test();
    config.window = PrecursorWindow::standard_default();
    let standard = OmsPipeline::new(config).run_exact(&workload);
    assert!(
        open.identifications() > standard.identifications(),
        "open {} vs standard {}",
        open.identifications(),
        standard.identifications()
    );
}

#[test]
fn pipeline_deterministic_end_to_end() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 1004);
    let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
    assert_eq!(pipeline.run_exact(&workload), pipeline.run_exact(&workload));
}
