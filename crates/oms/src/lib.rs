//! Open modification search (OMS) pipeline.
//!
//! OMS matches measured query spectra against a reference spectral library
//! under a *wide* precursor-mass window, so that peptides carrying
//! post-translational modifications — whose precursor mass is shifted by
//! the modification — still reach their unmodified reference spectrum
//! (§1, §2.1 of the paper). The pipeline here is the software skeleton all
//! search backends plug into:
//!
//! * precursor windows, standard and open ([`window`]);
//! * the mass-sorted candidate index ([`candidates`]);
//! * peptide-spectrum matches ([`psm`]);
//! * target-decoy false-discovery-rate filtering, §3.4 ([`fdr`]);
//! * the [`search::SimilarityBackend`] trait with an exact HD
//!   implementation (optionally with injected bit errors for the Fig. 11
//!   robustness study) ([`search`]);
//! * end-to-end orchestration with ground-truth evaluation
//!   ([`pipeline`]).
//!
//! # Example
//!
//! ```
//! use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
//! use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
//!
//! let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 42);
//! let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
//! let outcome = pipeline.run_exact(&workload);
//! assert!(!outcome.accepted.is_empty(), "should identify something");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod candidates;
pub mod cascade;
pub mod fdr;
pub mod pipeline;
pub mod profile;
pub mod psm;
pub mod search;
pub mod window;

pub use candidates::CandidateIndex;
pub use fdr::{filter_fdr, FdrOutcome};
pub use pipeline::{assemble_psms, OmsPipeline, PipelineConfig, PipelineOutcome, ReferenceCatalog};
pub use psm::Psm;
pub use search::{ExactBackend, ExactBackendConfig, SearchHit, SimilarityBackend};
pub use window::PrecursorWindow;
