//! Mass-sorted candidate index.
//!
//! Open search must find, for every query, all reference spectra whose
//! neutral mass lies in the window's reach. Sorting the library by mass
//! once makes each lookup two binary searches.

use crate::window::PrecursorWindow;
use hdoms_ms::library::SpectralLibrary;
use serde::{Deserialize, Serialize};

/// An index over reference neutral masses supporting range queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateIndex {
    /// (neutral mass, library id), sorted by mass.
    by_mass: Vec<(f64, u32)>,
}

impl CandidateIndex {
    /// Build from a spectral library (targets and decoys alike — decoys
    /// must compete in the same candidate pools for FDR to be meaningful).
    pub fn build(library: &SpectralLibrary) -> CandidateIndex {
        let mut by_mass: Vec<(f64, u32)> = library
            .iter()
            .map(|e| (e.spectrum.neutral_mass(), e.spectrum.id))
            .collect();
        by_mass.sort_by(|a, b| a.0.total_cmp(&b.0));
        CandidateIndex { by_mass }
    }

    /// Build from raw (mass, id) pairs.
    pub fn from_masses(masses: impl IntoIterator<Item = (f64, u32)>) -> CandidateIndex {
        let mut by_mass: Vec<(f64, u32)> = masses.into_iter().collect();
        by_mass.sort_by(|a, b| a.0.total_cmp(&b.0));
        CandidateIndex { by_mass }
    }

    /// Number of indexed references.
    pub fn len(&self) -> usize {
        self.by_mass.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_mass.is_empty()
    }

    /// Library ids of all references reachable from a query of neutral
    /// mass `query_mass` under `window`, in ascending mass order.
    pub fn candidates(&self, window: &PrecursorWindow, query_mass: f64) -> Vec<u32> {
        let (lo, hi) = window.reference_mass_range(query_mass);
        let start = self.by_mass.partition_point(|&(m, _)| m < lo);
        let end = self.by_mass.partition_point(|&(m, _)| m <= hi);
        self.by_mass[start..end].iter().map(|&(_, id)| id).collect()
    }

    /// Like [`CandidateIndex::candidates`] but only counting, for workload
    /// statistics (the open-search blow-up factor).
    pub fn candidate_count(&self, window: &PrecursorWindow, query_mass: f64) -> usize {
        let (lo, hi) = window.reference_mass_range(query_mass);
        let start = self.by_mass.partition_point(|&(m, _)| m < lo);
        let end = self.by_mass.partition_point(|&(m, _)| m <= hi);
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};

    fn index_of(masses: &[f64]) -> CandidateIndex {
        CandidateIndex::from_masses(masses.iter().enumerate().map(|(i, &m)| (m, i as u32)))
    }

    #[test]
    fn finds_in_range_inclusive() {
        let idx = index_of(&[100.0, 200.0, 300.0, 400.0]);
        let w = PrecursorWindow::OpenDa {
            lower: -50.0,
            upper: 50.0,
        };
        // query 250 → references in [200, 300]
        assert_eq!(idx.candidates(&w, 250.0), vec![1, 2]);
        assert_eq!(idx.candidate_count(&w, 250.0), 2);
    }

    #[test]
    fn empty_when_nothing_reachable() {
        let idx = index_of(&[100.0, 200.0]);
        let w = PrecursorWindow::StandardPpm(10.0);
        assert!(idx.candidates(&w, 500.0).is_empty());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let idx = CandidateIndex::from_masses([(300.0, 0u32), (100.0, 1), (200.0, 2)]);
        let w = PrecursorWindow::OpenDa {
            lower: -1000.0,
            upper: 1000.0,
        };
        assert_eq!(idx.candidates(&w, 200.0), vec![1, 2, 0]);
    }

    #[test]
    fn open_window_returns_more_candidates_than_standard() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 31);
        let idx = CandidateIndex::build(&workload.library);
        assert_eq!(idx.len(), workload.library.len());
        let standard = PrecursorWindow::standard_default();
        let open = PrecursorWindow::open_default();
        let mut open_total = 0usize;
        let mut std_total = 0usize;
        for q in &workload.queries {
            open_total += idx.candidate_count(&open, q.neutral_mass());
            std_total += idx.candidate_count(&standard, q.neutral_mass());
        }
        assert!(
            open_total > 10 * std_total.max(1),
            "open search must blow up the candidate set ({std_total} → {open_total})"
        );
    }

    #[test]
    fn modified_query_reaches_true_reference_only_in_open_mode() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 32);
        let idx = CandidateIndex::build(&workload.library);
        let standard = PrecursorWindow::standard_default();
        let open = PrecursorWindow::open_default();
        let mut checked = 0;
        for (q, t) in workload.queries.iter().zip(&workload.truth) {
            if let hdoms_ms::dataset::QueryTruth::Modified { library_id, .. } = t {
                let open_cands = idx.candidates(&open, q.neutral_mass());
                assert!(
                    open_cands.contains(library_id),
                    "open search must reach the true reference"
                );
                let std_cands = idx.candidates(&standard, q.neutral_mass());
                assert!(
                    !std_cands.contains(library_id),
                    "standard search must miss a modified query's reference"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn boundary_masses_included() {
        let idx = index_of(&[100.0, 150.0, 200.0]);
        let w = PrecursorWindow::OpenDa {
            lower: 0.0,
            upper: 50.0,
        };
        // query 150: reference range [100, 150]
        assert_eq!(idx.candidates(&w, 150.0), vec![0, 1]);
    }
}
