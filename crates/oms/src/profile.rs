//! Precursor mass-delta profiling of open-search results.
//!
//! The signature analysis of every open-search study (e.g. Chick et al.
//! 2015, reference 7 of the paper): histogram the `query − reference`
//! precursor mass deltas of the accepted identifications. Unmodified
//! matches pile up at 0 Da; each modification type forms a peak at its
//! characteristic mass shift, so the histogram reads as a catalogue of
//! the modifications present in the sample — without any prior list.

use crate::psm::Psm;
use serde::Serialize;

/// One detected delta-mass peak.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeltaPeak {
    /// Centroid of the delta-mass peak in daltons (intensity-weighted
    /// mean of the member deltas).
    pub delta_da: f64,
    /// Number of PSMs in the peak.
    pub count: usize,
}

/// Histogram of precursor mass deltas with peak detection.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeltaMassProfile {
    bin_width: f64,
    /// (bin lower edge, count), only non-empty bins, ascending.
    bins: Vec<(f64, usize)>,
    total: usize,
}

impl DeltaMassProfile {
    /// Build the profile from accepted PSMs with the given histogram bin
    /// width (0.01 Da resolves all common PTMs; the paper's precursors
    /// are measured to ~0.005 Da).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive.
    pub fn from_psms(psms: &[Psm], bin_width: f64) -> DeltaMassProfile {
        assert!(bin_width > 0.0, "bin width must be positive");
        let mut map = std::collections::BTreeMap::new();
        for psm in psms {
            let bin = (psm.precursor_delta / bin_width).floor() as i64;
            *map.entry(bin).or_insert(0usize) += 1;
        }
        DeltaMassProfile {
            bin_width,
            bins: map
                .into_iter()
                .map(|(bin, count)| (bin as f64 * bin_width, count))
                .collect(),
            total: psms.len(),
        }
    }

    /// Total PSMs profiled.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Non-empty histogram bins (lower edge, count), ascending by mass.
    pub fn bins(&self) -> &[(f64, usize)] {
        &self.bins
    }

    /// Detect delta-mass peaks: maximal runs of adjacent non-empty bins
    /// whose total count is at least `min_count`, returned by descending
    /// count.
    pub fn peaks(&self, min_count: usize) -> Vec<DeltaPeak> {
        let mut peaks = Vec::new();
        let mut run: Vec<(f64, usize)> = Vec::new();
        let flush = |run: &mut Vec<(f64, usize)>, peaks: &mut Vec<DeltaPeak>| {
            let count: usize = run.iter().map(|&(_, c)| c).sum();
            if count >= min_count && !run.is_empty() {
                let centroid = run
                    .iter()
                    .map(|&(edge, c)| (edge + 0.5 * self.bin_width) * c as f64)
                    .sum::<f64>()
                    / count as f64;
                peaks.push(DeltaPeak {
                    delta_da: centroid,
                    count,
                });
            }
            run.clear();
        };
        for &(edge, count) in &self.bins {
            if let Some(&(last_edge, _)) = run.last() {
                if edge - last_edge > self.bin_width * 1.5 {
                    flush(&mut run, &mut peaks);
                }
            }
            run.push((edge, count));
        }
        flush(&mut run, &mut peaks);
        peaks.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.delta_da.total_cmp(&b.delta_da))
        });
        peaks
    }

    /// Match detected peaks against a catalogue of (name, mass shift)
    /// annotations within `tolerance_da`, returning
    /// `(peak, Some(name))` or `(peak, None)` for unexplained peaks.
    pub fn annotate<'a>(
        &self,
        min_count: usize,
        catalogue: &'a [(&'a str, f64)],
        tolerance_da: f64,
    ) -> Vec<(DeltaPeak, Option<&'a str>)> {
        self.peaks(min_count)
            .into_iter()
            .map(|peak| {
                let name = catalogue
                    .iter()
                    .filter(|(_, shift)| (shift - peak.delta_da).abs() <= tolerance_da)
                    .min_by(|a, b| {
                        (a.1 - peak.delta_da)
                            .abs()
                            .total_cmp(&(b.1 - peak.delta_da).abs())
                    })
                    .map(|&(name, _)| name);
                (peak, name)
            })
            .collect()
    }
}

/// The annotation catalogue built from the synthetic workload's
/// modification set ([`hdoms_ms::modification::Modification::COMMON`]),
/// plus the zero peak.
pub fn common_catalogue() -> Vec<(&'static str, f64)> {
    let mut out = vec![("unmodified", 0.0)];
    for m in hdoms_ms::modification::Modification::COMMON {
        out.push((m.name(), m.mass_shift()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psm(delta: f64) -> Psm {
        Psm {
            query_id: 0,
            reference_id: 0,
            score: 1.0,
            is_decoy: false,
            precursor_delta: delta,
        }
    }

    #[test]
    fn zero_and_oxidation_peaks_detected() {
        let mut psms = Vec::new();
        for i in 0..50 {
            psms.push(psm(0.001 * (i % 5) as f64)); // cluster at 0
        }
        for i in 0..30 {
            psms.push(psm(15.9949 + 0.002 * (i % 3) as f64)); // oxidation
        }
        psms.push(psm(200.0)); // stray
        let profile = DeltaMassProfile::from_psms(&psms, 0.01);
        let peaks = profile.peaks(5);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].count, 50);
        assert!(peaks[0].delta_da.abs() < 0.02);
        assert_eq!(peaks[1].count, 30);
        assert!((peaks[1].delta_da - 15.995).abs() < 0.02);
    }

    #[test]
    fn annotation_names_the_peaks() {
        let psms: Vec<Psm> = (0..20).map(|_| psm(79.9663)).collect();
        let profile = DeltaMassProfile::from_psms(&psms, 0.01);
        let catalogue = common_catalogue();
        let annotated = profile.annotate(5, &catalogue, 0.02);
        assert_eq!(annotated.len(), 1);
        assert_eq!(annotated[0].1, Some("Phospho"));
    }

    #[test]
    fn unexplained_peaks_stay_unannotated() {
        let psms: Vec<Psm> = (0..20).map(|_| psm(123.456)).collect();
        let profile = DeltaMassProfile::from_psms(&psms, 0.01);
        let catalogue = common_catalogue();
        let annotated = profile.annotate(5, &catalogue, 0.02);
        assert_eq!(annotated[0].1, None);
    }

    #[test]
    fn min_count_filters_noise() {
        let mut psms: Vec<Psm> = (0..10).map(|_| psm(0.0)).collect();
        psms.push(psm(50.0));
        let profile = DeltaMassProfile::from_psms(&psms, 0.01);
        assert_eq!(profile.peaks(5).len(), 1);
        assert_eq!(profile.peaks(1).len(), 2);
    }

    #[test]
    fn adjacent_bins_merge_into_one_peak() {
        // Deltas straddling a bin boundary must form a single peak.
        let psms: Vec<Psm> = (0..40).map(|i| psm(0.999 + 0.0005 * i as f64)).collect();
        let profile = DeltaMassProfile::from_psms(&psms, 0.01);
        assert_eq!(profile.peaks(10).len(), 1);
    }

    #[test]
    fn empty_profile_is_sane() {
        let profile = DeltaMassProfile::from_psms(&[], 0.01);
        assert_eq!(profile.total(), 0);
        assert!(profile.peaks(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = DeltaMassProfile::from_psms(&[], 0.0);
    }
}
