//! Precursor mass windows: the difference between standard and open search.
//!
//! A *standard* search only considers reference peptides whose neutral mass
//! matches the query's within instrument precision (tens of ppm). An *open*
//! search widens the accepted `query − reference` mass delta to hundreds of
//! daltons so a modified query can still reach its unmodified reference —
//! at the cost of a vastly larger candidate set, which is exactly the
//! scaling problem the paper's accelerator attacks.

use serde::{Deserialize, Serialize};

/// The accepted range of `query − reference` neutral-mass deltas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrecursorWindow {
    /// Standard search: `|Δm| ≤ ppm · 10⁻⁶ · query_mass`.
    StandardPpm(f64),
    /// Open search: `Δm ∈ [lower, upper]` daltons. Modifications add mass,
    /// so the window is conventionally asymmetric around zero.
    OpenDa {
        /// Lower bound of the accepted delta (negative allows the query to
        /// be lighter than the reference).
        lower: f64,
        /// Upper bound of the accepted delta.
        upper: f64,
    },
}

impl PrecursorWindow {
    /// The open window used by the paper-shaped experiments: enough to
    /// cover every modification in the synthetic catalogue (the heaviest,
    /// GlyGly, adds ≈114 Da) with margin, mirroring the ±hundreds-of-Da
    /// windows open-search tools run with.
    pub fn open_default() -> PrecursorWindow {
        PrecursorWindow::OpenDa {
            lower: -2.0,
            upper: 150.0,
        }
    }

    /// A typical standard-search window (20 ppm).
    pub fn standard_default() -> PrecursorWindow {
        PrecursorWindow::StandardPpm(20.0)
    }

    /// Whether a reference of neutral mass `reference_mass` is reachable
    /// from a query of neutral mass `query_mass`.
    ///
    /// ```
    /// use hdoms_oms::window::PrecursorWindow;
    /// let open = PrecursorWindow::open_default();
    /// assert!(open.contains(1000.0 + 79.97, 1000.0)); // phospho-shifted
    /// assert!(!PrecursorWindow::standard_default().contains(1000.0 + 79.97, 1000.0));
    /// ```
    pub fn contains(&self, query_mass: f64, reference_mass: f64) -> bool {
        let (lo, hi) = self.reference_mass_range(query_mass);
        (lo..=hi).contains(&reference_mass)
    }

    /// The reference-mass interval `[lo, hi]` reachable from a query of
    /// neutral mass `query_mass` — what the candidate index searches.
    pub fn reference_mass_range(&self, query_mass: f64) -> (f64, f64) {
        match *self {
            PrecursorWindow::StandardPpm(ppm) => {
                let tol = ppm * 1e-6 * query_mass;
                (query_mass - tol, query_mass + tol)
            }
            // delta = query - reference ∈ [lower, upper]
            // ⇒ reference ∈ [query - upper, query - lower]
            PrecursorWindow::OpenDa { lower, upper } => (query_mass - upper, query_mass - lower),
        }
    }

    /// Validate the window parameters.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive ppm tolerance or an empty open interval.
    pub fn validate(&self) {
        match *self {
            PrecursorWindow::StandardPpm(ppm) => {
                assert!(ppm > 0.0, "ppm tolerance must be positive");
            }
            PrecursorWindow::OpenDa { lower, upper } => {
                assert!(lower < upper, "open window must be a non-empty interval");
            }
        }
    }
}

impl Default for PrecursorWindow {
    /// Open search is the paper's subject, so it is the default.
    fn default() -> PrecursorWindow {
        PrecursorWindow::open_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_window_is_tight() {
        let w = PrecursorWindow::StandardPpm(20.0);
        assert!(w.contains(1000.0, 1000.0));
        assert!(w.contains(1000.0, 1000.019)); // 19 ppm
        assert!(!w.contains(1000.0, 1000.021)); // 21 ppm
        assert!(!w.contains(1000.0, 1015.99)); // oxidation shift
    }

    #[test]
    fn open_window_reaches_modified_queries() {
        let w = PrecursorWindow::open_default();
        // Query = modified peptide (heavier); reference = unmodified.
        for shift in [0.98, 15.99, 42.01, 79.97, 114.04] {
            assert!(
                w.contains(1200.0 + shift, 1200.0),
                "shift {shift} must be inside the open window"
            );
        }
        // A 200-Da delta is outside the default window.
        assert!(!w.contains(1200.0 + 200.0, 1200.0));
    }

    #[test]
    fn open_window_asymmetry() {
        let w = PrecursorWindow::open_default();
        // Query lighter than reference by 10 Da: outside (lower = -2).
        assert!(!w.contains(1190.0, 1200.0));
        // Lighter by 1 Da: inside.
        assert!(w.contains(1199.0, 1200.0));
    }

    #[test]
    fn mass_range_inverts_contains() {
        let w = PrecursorWindow::open_default();
        let q = 1500.0;
        let (lo, hi) = w.reference_mass_range(q);
        assert!(w.contains(q, lo + 1e-9));
        assert!(w.contains(q, hi - 1e-9));
        assert!(!w.contains(q, lo - 1e-6));
        assert!(!w.contains(q, hi + 1e-6));
    }

    #[test]
    fn standard_range_scales_with_mass() {
        let w = PrecursorWindow::StandardPpm(10.0);
        let (lo1, hi1) = w.reference_mass_range(500.0);
        let (lo2, hi2) = w.reference_mass_range(2000.0);
        assert!((hi1 - lo1) < (hi2 - lo2));
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn validate_rejects_inverted_open_window() {
        PrecursorWindow::OpenDa {
            lower: 5.0,
            upper: -5.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "ppm tolerance must be positive")]
    fn validate_rejects_zero_ppm() {
        PrecursorWindow::StandardPpm(0.0).validate();
    }
}
