//! Search backends: the pluggable scoring stage of the pipeline.
//!
//! A [`SimilarityBackend`] receives preprocessed query spectra plus their
//! candidate lists and returns each query's best match. The pipeline is
//! agnostic to *how* scoring happens — exact Hamming on CPU (here), the
//! baselines crate's cosine scoring, or the core crate's simulated
//! in-RRAM search all implement this trait.

use crate::window::PrecursorWindow;
use hdoms_hdc::corrupt::{flip_bits, flip_bits_in_place};
use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
use hdoms_hdc::kernels::{self, QUERY_TILE, REFERENCE_TILE};
use hdoms_hdc::parallel::par_map;
use hdoms_hdc::{BinaryHypervector, HvRef, WordBuffer};
use hdoms_ms::library::{LibraryEntry, SpectralLibrary};
use hdoms_ms::preprocess::{BinnedSpectrum, PreprocessConfig, Preprocessor};
use hdoms_prefilter::SketchIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sentinel marking an absent hypervector in a mapped offset table.
const NO_HV: u64 = u64::MAX;

/// A dense reference-hypervector table, indexed by library id (absent
/// slots mark entries preprocessing rejected).
///
/// The table is reference-counted so one encoded library can back many
/// consumers at once — a loaded `hdoms-index`, a flat [`ExactBackend`],
/// and a sharded backend all share the same words instead of each holding
/// a private copy. Two representations exist behind one lookup API
/// ([`SharedReferences::hv`] hands out borrowed [`HvRef`] views either
/// way):
///
/// * [`SharedReferences::Owned`] — materialised
///   [`BinaryHypervector`]s (cold builds, v1 index loads, appends);
/// * [`SharedReferences::Mapped`] — word slices living directly inside a
///   single index-file backing buffer (the zero-copy `.hdx` v2 load
///   path: no per-reference allocation, the file bytes *are* the search
///   bits).
#[derive(Debug, Clone)]
pub enum SharedReferences {
    /// Materialised hypervectors behind one shared allocation.
    Owned(Arc<Vec<Option<BinaryHypervector>>>),
    /// Borrowed word slices inside one shared backing buffer.
    Mapped(MappedReferences),
}

/// The mapped representation: one backing buffer (typically a whole
/// `.hdx` file) plus a dense `id → byte offset` table locating each
/// stored hypervector's packed words inside it.
#[derive(Debug, Clone)]
pub struct MappedReferences {
    buffer: WordBuffer,
    dim: usize,
    /// Byte offset of each reference's word block ([`NO_HV`] = absent).
    offsets: Arc<Vec<u64>>,
}

impl MappedReferences {
    /// Wrap `buffer` as a reference table: `offsets[id]` is the byte
    /// offset of reference `id`'s `ceil(dim / 64)` packed words, or
    /// `u64::MAX` for an entry preprocessing rejected.
    ///
    /// Every offset is validated once here (8-aligned, in bounds, zero
    /// tail bits) so the per-candidate lookup on the search hot path is
    /// a plain slice index.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or any offset is misaligned, out of
    /// bounds, or points at words with dirty tail bits.
    pub fn new(buffer: WordBuffer, dim: usize, offsets: Vec<u64>) -> MappedReferences {
        assert!(dim > 0, "hypervector dimension must be positive");
        let words = dim.div_ceil(64);
        for &offset in offsets.iter().filter(|&&offset| offset != NO_HV) {
            let offset = usize::try_from(offset).expect("offset fits in usize");
            // `words()` checks alignment and bounds; `HvRef::new` checks
            // the tail invariant.
            let _ = HvRef::new(dim, buffer.words(offset, words));
        }
        MappedReferences {
            buffer,
            dim,
            offsets: Arc::new(offsets),
        }
    }

    /// The shared backing buffer.
    pub fn buffer(&self) -> &WordBuffer {
        &self.buffer
    }

    /// Hypervector dimension of every stored reference.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The view for reference `id`, or `None` for an absent slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is beyond the table (a candidate list disagreeing
    /// with the reference table is a wiring bug, not an absent entry).
    #[inline]
    pub fn hv(&self, id: usize) -> Option<HvRef<'_>> {
        let offset = self.offsets[id];
        if offset == NO_HV {
            return None;
        }
        let words = self.buffer.words(offset as usize, self.dim.div_ceil(64));
        // Validated in `new`, so skip the re-checks on the hot path.
        Some(HvRef::new_unchecked(self.dim, words))
    }

    /// Number of slots (present or absent).
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Byte offset of reference `id`'s packed words inside the backing
    /// buffer, or `None` for an absent slot. This is the residency
    /// seam: knowing where each reference's words live lets a caller
    /// compute per-shard byte ranges and release cold shards' pages
    /// ([`WordBuffer::release_range`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is beyond the table.
    pub fn offset_of(&self, id: usize) -> Option<u64> {
        let offset = self.offsets[id];
        (offset != NO_HV).then_some(offset)
    }

    /// Bytes one stored hypervector's packed words occupy
    /// (`ceil(dim / 64)` words of 8 bytes).
    pub fn hv_bytes(&self) -> usize {
        self.dim.div_ceil(64) * 8
    }
}

impl SharedReferences {
    /// Number of slots (present or absent).
    pub fn len(&self) -> usize {
        match self {
            SharedReferences::Owned(table) => table.len(),
            SharedReferences::Mapped(mapped) => mapped.len(),
        }
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view for reference `id` (`None` for an absent slot).
    ///
    /// # Panics
    ///
    /// Panics if `id` is beyond the table — a backend handed a
    /// candidate id its reference table does not cover is mis-wired,
    /// and silently skipping it would drop matches instead of failing
    /// loudly.
    #[inline]
    pub fn hv(&self, id: usize) -> Option<HvRef<'_>> {
        match self {
            SharedReferences::Owned(table) => table[id].as_ref().map(|hv| hv.as_view()),
            SharedReferences::Mapped(mapped) => mapped.hv(id),
        }
    }

    /// Iterate every slot in id order.
    pub fn iter(&self) -> impl Iterator<Item = Option<HvRef<'_>>> + '_ {
        (0..self.len()).map(|id| self.hv(id))
    }

    /// Number of present (non-rejected) references.
    pub fn present_count(&self) -> usize {
        self.iter().flatten().count()
    }

    /// The common dimension of the stored references, or `None` when no
    /// reference is present.
    ///
    /// # Panics
    ///
    /// Panics if present references disagree in dimension (only
    /// possible for the `Owned` variant — a mapped table fixes one
    /// dimension at construction).
    pub fn dim(&self) -> Option<usize> {
        match self {
            SharedReferences::Owned(table) => {
                let mut views = table.iter().flatten();
                let dim = views.next()?.dim();
                assert!(
                    views.all(|hv| hv.dim() == dim),
                    "all references must share a dimension"
                );
                Some(dim)
            }
            SharedReferences::Mapped(mapped) => mapped
                .offsets
                .iter()
                .any(|&offset| offset != NO_HV)
                .then_some(mapped.dim),
        }
    }

    /// Whether two handles share the same underlying storage (the
    /// zero-copy guarantee warm backends rely on).
    pub fn ptr_eq(a: &SharedReferences, b: &SharedReferences) -> bool {
        match (a, b) {
            (SharedReferences::Owned(x), SharedReferences::Owned(y)) => Arc::ptr_eq(x, y),
            (SharedReferences::Mapped(x), SharedReferences::Mapped(y)) => {
                WordBuffer::ptr_eq(&x.buffer, &y.buffer) && Arc::ptr_eq(&x.offsets, &y.offsets)
            }
            _ => false,
        }
    }

    /// Number of live handles on the underlying storage (owned table or
    /// mapped backing buffer).
    pub fn handle_count(&self) -> usize {
        match self {
            SharedReferences::Owned(table) => Arc::strong_count(table),
            SharedReferences::Mapped(mapped) => mapped.buffer.handle_count(),
        }
    }

    /// Whether this table is the mapped (zero-copy) representation.
    pub fn is_mapped(&self) -> bool {
        matches!(self, SharedReferences::Mapped(_))
    }

    /// The mapped representation, when this table is mapped (`None` for
    /// owned tables, whose heap pages cannot be released piecemeal).
    pub fn as_mapped(&self) -> Option<&MappedReferences> {
        match self {
            SharedReferences::Mapped(mapped) => Some(mapped),
            SharedReferences::Owned(_) => None,
        }
    }

    /// Materialise an owned copy of every stored hypervector (the one
    /// deliberate copy in the system — used by mutation paths like
    /// append, which cannot grow a file-backed table in place).
    pub fn to_owned_table(&self) -> Vec<Option<BinaryHypervector>> {
        self.iter()
            .map(|slot| slot.map(|hv| hv.to_hypervector()))
            .collect()
    }

    /// Append new slots. An `Owned` table extends in place
    /// (copy-on-write if other handles share it); a `Mapped` table is
    /// first materialised, since the backing file buffer cannot grow.
    pub fn append(&mut self, new_slots: impl IntoIterator<Item = Option<BinaryHypervector>>) {
        if let SharedReferences::Mapped(_) = self {
            *self = SharedReferences::Owned(Arc::new(self.to_owned_table()));
        }
        let SharedReferences::Owned(table) = self else {
            unreachable!("mapped tables were just materialised");
        };
        Arc::make_mut(table).extend(new_slots);
    }
}

impl PartialEq for SharedReferences {
    /// Logical equality: same slots with the same bits, regardless of
    /// representation — a mapped table equals the owned table it was
    /// loaded from.
    fn eq(&self, other: &SharedReferences) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl From<Vec<Option<BinaryHypervector>>> for SharedReferences {
    fn from(table: Vec<Option<BinaryHypervector>>) -> SharedReferences {
        SharedReferences::Owned(Arc::new(table))
    }
}

impl From<Arc<Vec<Option<BinaryHypervector>>>> for SharedReferences {
    fn from(table: Arc<Vec<Option<BinaryHypervector>>>) -> SharedReferences {
        SharedReferences::Owned(table)
    }
}

impl From<MappedReferences> for SharedReferences {
    fn from(mapped: MappedReferences) -> SharedReferences {
        SharedReferences::Mapped(mapped)
    }
}

/// One best-match result from a backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Library entry id of the best match.
    pub reference: u32,
    /// Backend-specific similarity score (higher is better).
    pub score: f64,
}

/// Fold one scored reference tile into the running best hit with the
/// canonical `(score desc, id asc)` tie-break.
fn fold_tile(dim: usize, ids: &[u32], scores: &[i64], best: &mut Option<SearchHit>) {
    for (&cand, &raw) in ids.iter().zip(scores) {
        let score = raw as f64 / dim as f64;
        let better = match best {
            None => true,
            Some(b) => score > b.score || (score == b.score && cand < b.reference),
        };
        if better {
            *best = Some(SearchHit {
                reference: cand,
                score,
            });
        }
    }
}

/// The flat exact scan every exact backend shares: score `query_hv`
/// against the present entries of `candidates` in
/// [`REFERENCE_TILE`]-sized tiles on the process-wide active kernel
/// ([`hdoms_hdc::kernels::active`]) and return the best hit under the
/// `(score desc, id asc)` tie-break — identical results to the pairwise
/// formulation, whatever the kernel or tile shape.
///
/// Returns `None` when no candidate has a stored hypervector.
///
/// # Panics
///
/// Panics if a candidate id is beyond the reference table or `dim`
/// disagrees with the stored hypervectors.
pub fn best_hit(
    references: &SharedReferences,
    dim: usize,
    query_hv: &BinaryHypervector,
    candidates: &[u32],
) -> Option<SearchHit> {
    let kernel = kernels::active();
    let query = query_hv.words();
    let mut best: Option<SearchHit> = None;
    let cap = REFERENCE_TILE.min(candidates.len());
    let mut ids: Vec<u32> = Vec::with_capacity(cap);
    let mut tile: Vec<&[u64]> = Vec::with_capacity(cap);
    let mut scores = [0i64; REFERENCE_TILE];
    for &cand in candidates {
        let Some(ref_hv) = references.hv(cand as usize) else {
            continue;
        };
        ids.push(cand);
        tile.push(ref_hv.words());
        if ids.len() == REFERENCE_TILE {
            kernel.dot_many(dim, query, &tile, &mut scores);
            fold_tile(dim, &ids, &scores, &mut best);
            ids.clear();
            tile.clear();
        }
    }
    if !ids.is_empty() {
        let out = &mut scores[..ids.len()];
        kernel.dot_many(dim, query, &tile, out);
        fold_tile(dim, &ids, out, &mut best);
    }
    best
}

/// The query-blocked scan: score a whole block of queries sharing one
/// candidate list through
/// [`score_block`](hdoms_hdc::kernels::KernelDispatch::score_block), so each
/// reference tile is swept once per block instead of once per query.
/// Hit `i` pairs with `query_hvs[i]`; results are identical to running
/// [`best_hit`] per query.
fn best_hits_block(
    references: &SharedReferences,
    dim: usize,
    query_hvs: &[BinaryHypervector],
    candidates: &[u32],
) -> Vec<Option<SearchHit>> {
    let kernel = kernels::active();
    let queries: Vec<&[u64]> = query_hvs.iter().map(|q| q.words()).collect();
    let q_count = queries.len();
    let mut best: Vec<Option<SearchHit>> = vec![None; q_count];
    let mut ids: Vec<u32> = Vec::with_capacity(candidates.len());
    let mut refs: Vec<&[u64]> = Vec::with_capacity(candidates.len());
    for &cand in candidates {
        if let Some(ref_hv) = references.hv(cand as usize) {
            ids.push(cand);
            refs.push(ref_hv.words());
        }
    }
    let mut scores = vec![0i64; q_count * REFERENCE_TILE];
    for (tile_ids, tile_refs) in ids.chunks(REFERENCE_TILE).zip(refs.chunks(REFERENCE_TILE)) {
        let r = tile_ids.len();
        let out = &mut scores[..q_count * r];
        kernel.score_block(dim, &queries, tile_refs, out);
        for (qi, slot) in best.iter_mut().enumerate() {
            fold_tile(dim, tile_ids, &out[qi * r..(qi + 1) * r], slot);
        }
    }
    best
}

/// A pluggable scoring backend for the OMS pipeline.
pub trait SimilarityBackend {
    /// A short human-readable name ("exact-hd", "ann-solo", …) used in
    /// reports.
    fn name(&self) -> String;

    /// For each query, score it against its candidate references and
    /// return the best hit (or `None` for an empty candidate list).
    ///
    /// `queries[i]` pairs with `candidates[i]`; implementations must
    /// preserve order.
    fn search_batch(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
    ) -> Vec<Option<SearchHit>>;
}

/// Configuration for [`ExactBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactBackendConfig {
    /// Preprocessing applied to the reference library (queries are
    /// preprocessed by the pipeline with its own config; keep them equal).
    pub preprocess: PreprocessConfig,
    /// HD encoder settings.
    pub encoder: EncoderConfig,
    /// Worker threads for encoding and search.
    pub threads: usize,
    /// Bit-error rate injected into each *query* hypervector after
    /// encoding (models in-memory encoding errors, Fig. 11). Zero for the
    /// ideal backend.
    pub encode_ber: f64,
    /// Bit-error rate injected into each *reference* hypervector once at
    /// build time (models storage errors, Fig. 11). Zero for ideal.
    pub storage_ber: f64,
    /// Seed for the error injection (errors are deterministic per query /
    /// reference id).
    pub noise_seed: u64,
}

impl Default for ExactBackendConfig {
    fn default() -> ExactBackendConfig {
        ExactBackendConfig {
            preprocess: PreprocessConfig::default(),
            encoder: EncoderConfig::default(),
            threads: hdoms_hdc::parallel::default_threads(),
            encode_ber: 0.0,
            storage_ber: 0.0,
            noise_seed: 0xbe44,
        }
    }
}

/// Exact HD backend: ID-Level encoding + exact Hamming scoring, optionally
/// with injected bit errors (the software equivalent of HyperOMS, and the
/// reference point the RRAM backend is compared against).
#[derive(Debug, Clone)]
pub struct ExactBackend {
    config: ExactBackendConfig,
    encoder: IdLevelEncoder,
    /// Encoded reference hypervectors, indexed by library id; `None` when
    /// the reference failed preprocessing (too few peaks). Shared, so a
    /// warm load from a persistent index does not duplicate the words.
    reference_hvs: SharedReferences,
    /// The two-stage cascade's sketch stage, when enabled: each query's
    /// candidate list is narrowed to the top-K sketch scorers before the
    /// exact scan ([`ExactBackend::set_prefilter`]).
    prefilter: Option<(Arc<SketchIndex>, usize)>,
}

impl ExactBackend {
    /// Build the backend: preprocess and encode the whole library, then
    /// apply storage errors if configured.
    pub fn build(library: &SpectralLibrary, config: ExactBackendConfig) -> ExactBackend {
        let encoder = IdLevelEncoder::new(config.encoder);
        let pre = Preprocessor::new(config.preprocess);
        let reference_hvs =
            ExactBackend::encode_chunk(&encoder, &pre, &config, library.entries(), 0);
        ExactBackend {
            config,
            encoder,
            reference_hvs: reference_hvs.into(),
            prefilter: None,
        }
    }

    /// Encode a dense run of library entries exactly as a cold
    /// [`ExactBackend::build`] encodes ids `first_id..first_id + len`:
    /// each entry's spectrum id is treated as `first_id + offset` (the
    /// dense id the entry will occupy), so preprocessing, encoding, and
    /// the per-reference storage-error stream are all keyed on the final
    /// id rather than whatever id the source spectrum carried.
    ///
    /// This is the chunked entry point behind streaming index builds and
    /// index appends: feeding a library through it one bounded chunk at a
    /// time yields bit-for-bit the hypervectors a whole-library
    /// [`ExactBackend::build`] would store, without ever holding more
    /// than one chunk of encodings in memory. `config` supplies the
    /// storage-error knobs and the thread count; `encoder` and `pre` must
    /// have been constructed from that same config.
    pub fn encode_chunk(
        encoder: &IdLevelEncoder,
        pre: &Preprocessor,
        config: &ExactBackendConfig,
        entries: &[LibraryEntry],
        first_id: u32,
    ) -> Vec<Option<BinaryHypervector>> {
        let jobs: Vec<(u32, &LibraryEntry)> = entries
            .iter()
            .enumerate()
            .map(|(offset, entry)| (first_id + offset as u32, entry))
            .collect();
        par_map(&jobs, config.threads, |&(id, entry)| {
            let binned = if entry.spectrum.id == id {
                pre.run(&entry.spectrum).ok()
            } else {
                let mut spectrum = entry.spectrum.clone();
                spectrum.id = id;
                pre.run(&spectrum).ok()
            };
            binned.map(|binned| {
                let mut hv = encoder.encode(&binned);
                if config.storage_ber > 0.0 {
                    let mut rng = StdRng::seed_from_u64(
                        config
                            .noise_seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(u64::from(id)),
                    );
                    flip_bits_in_place(&mut rng, &mut hv, config.storage_ber);
                }
                hv
            })
        })
    }

    /// Reassemble a backend from already-encoded reference hypervectors
    /// without touching the library — the warm-load path used by
    /// `hdoms-index`. Slot `id` must hold exactly what a cold
    /// [`ExactBackend::build`] with `config` would have produced (encoding
    /// is deterministic in the config, so persisted hypervectors qualify).
    ///
    /// The backend holds another handle to the caller's table instead of
    /// a private copy — whether that table is owned hypervectors or word
    /// slices inside a mapped index buffer — so a resident index and
    /// every backend reconstructed from it keep exactly one copy of the
    /// encoded library in memory.
    ///
    /// # Panics
    ///
    /// Panics if a stored hypervector's dimension disagrees with the
    /// encoder configuration.
    pub fn from_shared(
        config: ExactBackendConfig,
        reference_hvs: SharedReferences,
    ) -> ExactBackend {
        let encoder = IdLevelEncoder::new(config.encoder);
        if let Some(dim) = reference_hvs.dim() {
            assert_eq!(
                dim, config.encoder.dim,
                "reference hypervector dimensions must match the encoder"
            );
        }
        ExactBackend {
            config,
            encoder,
            reference_hvs,
            prefilter: None,
        }
    }

    /// The encoder (shared configuration with the pipeline's quality
    /// studies).
    pub fn encoder(&self) -> &IdLevelEncoder {
        &self.encoder
    }

    /// The shared handle to the reference table (use
    /// [`SharedReferences::ptr_eq`] on two handles to verify that
    /// storage really is shared, not cloned).
    pub fn shared_references(&self) -> &SharedReferences {
        &self.reference_hvs
    }

    /// Derive a backend with different injected error rates *without*
    /// re-encoding the library — the Fig. 11 sweep builds one clean
    /// backend per ID precision and derives every BER point from it.
    ///
    /// # Panics
    ///
    /// Panics if `self` already carries storage errors (its references are
    /// corrupted and cannot serve as the clean source), or if a rate is
    /// outside `[0, 1]`.
    pub fn with_error_rates(
        &self,
        encode_ber: f64,
        storage_ber: f64,
        noise_seed: u64,
    ) -> ExactBackend {
        assert_eq!(
            self.config.storage_ber, 0.0,
            "derive error variants from a clean backend"
        );
        let config = ExactBackendConfig {
            encode_ber,
            storage_ber,
            noise_seed,
            ..self.config
        };
        let reference_hvs = if storage_ber > 0.0 {
            SharedReferences::from(
                self.reference_hvs
                    .iter()
                    .enumerate()
                    .map(|(id, slot)| {
                        slot.map(|hv| {
                            let mut rng = StdRng::seed_from_u64(
                                noise_seed
                                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                    .wrapping_add(id as u64),
                            );
                            let mut owned = hv.to_hypervector();
                            flip_bits_in_place(&mut rng, &mut owned, storage_ber);
                            owned
                        })
                    })
                    .collect::<Vec<_>>(),
            )
        } else {
            // Clean references stay clean: share instead of cloning.
            self.reference_hvs.clone()
        };
        ExactBackend {
            config,
            encoder: self.encoder.clone(),
            reference_hvs,
            // A sketch built over the clean references no longer matches
            // corrupted storage — derived variants start unfiltered.
            prefilter: None,
        }
    }

    /// Enable the two-stage cascade: narrow every candidate list to the
    /// `k` best scorers under `sketch` before the exact scan. `sketch`
    /// must cover this backend's reference table (same slots, same
    /// hypervector width).
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero or the sketch shape disagrees with the
    /// reference table.
    pub fn set_prefilter(&mut self, sketch: Arc<SketchIndex>, k: usize) {
        assert!(k > 0, "prefilter K must be >= 1 (clear it to disable)");
        assert_eq!(
            sketch.len(),
            self.reference_hvs.len(),
            "sketch slots must cover the reference table"
        );
        assert_eq!(
            sketch.full_words(),
            self.config.encoder.dim.div_ceil(64),
            "sketch samples a different hypervector width than the encoder"
        );
        self.prefilter = Some((sketch, k));
    }

    /// Disable the cascade (return to scanning every candidate).
    pub fn clear_prefilter(&mut self) {
        self.prefilter = None;
    }

    /// The active sketch index and K, when the cascade is enabled.
    pub fn prefilter(&self) -> Option<(&Arc<SketchIndex>, usize)> {
        self.prefilter.as_ref().map(|(sketch, k)| (sketch, *k))
    }

    /// Encode one query, applying the configured encode-path bit errors.
    pub fn encode_query(&self, binned: &BinnedSpectrum) -> BinaryHypervector {
        let hv = self.encoder.encode(binned);
        if self.config.encode_ber > 0.0 {
            let mut rng = StdRng::seed_from_u64(
                self.config
                    .noise_seed
                    .wrapping_mul(0xd134_2543_de82_ef95)
                    .wrapping_add(u64::from(binned.id)),
            );
            flip_bits(&mut rng, &hv, self.config.encode_ber)
        } else {
            hv
        }
    }
}

impl SimilarityBackend for ExactBackend {
    fn name(&self) -> String {
        if self.config.encode_ber > 0.0 || self.config.storage_ber > 0.0 {
            format!(
                "exact-hd(ber={:.4}/{:.4})",
                self.config.encode_ber, self.config.storage_ber
            )
        } else {
            "exact-hd".to_owned()
        }
    }

    fn search_batch(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
    ) -> Vec<Option<SearchHit>> {
        assert_eq!(
            queries.len(),
            candidates.len(),
            "queries and candidate lists must pair up"
        );
        let dim = self.encoder.config().dim;
        if let Some((sketch, k)) = &self.prefilter {
            // The cascade narrows each query's list individually, so the
            // narrowed lists of consecutive queries rarely coincide —
            // take the per-query scan (encode → sketch → narrow → exact).
            let jobs: Vec<usize> = (0..queries.len()).collect();
            return par_map(&jobs, self.config.threads, |&i| {
                let query_hv = self.encode_query(&queries[i]);
                let signature = sketch.sketch_query(query_hv.words());
                let narrowed = sketch.narrow(&signature, &candidates[i], *k);
                best_hit(&self.reference_hvs, dim, &query_hv, &narrowed)
            });
        }
        // Consecutive queries sharing one candidate list form a query
        // block for the blocked kernel (one reference sweep per block);
        // everything else takes the 1 × R tiled scan. Either way the
        // hits are identical to the pairwise formulation.
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        for i in 1..=queries.len() {
            if i == queries.len() || i - start == QUERY_TILE || candidates[i] != candidates[start] {
                groups.push((start, i));
                start = i;
            }
        }
        let per_group = par_map(&groups, self.config.threads, |&(s, e)| {
            if e - s == 1 {
                let query_hv = self.encode_query(&queries[s]);
                vec![best_hit(
                    &self.reference_hvs,
                    dim,
                    &query_hv,
                    &candidates[s],
                )]
            } else {
                let query_hvs: Vec<BinaryHypervector> =
                    queries[s..e].iter().map(|b| self.encode_query(b)).collect();
                best_hits_block(&self.reference_hvs, dim, &query_hvs, &candidates[s])
            }
        });
        per_group.into_iter().flatten().collect()
    }
}

/// Convenience: compute per-query candidate lists for a batch (used by
/// pipelines and benches alike).
pub fn candidate_lists(
    index: &crate::candidates::CandidateIndex,
    window: &PrecursorWindow,
    queries: &[BinnedSpectrum],
) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| index.candidates(window, q.neutral_mass))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateIndex;
    use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};

    fn small_backend_config() -> ExactBackendConfig {
        ExactBackendConfig {
            encoder: EncoderConfig {
                dim: 2048,
                ..EncoderConfig::default()
            },
            threads: 2,
            ..ExactBackendConfig::default()
        }
    }

    fn setup() -> (
        SyntheticWorkload,
        ExactBackend,
        Vec<BinnedSpectrum>,
        Vec<Vec<u32>>,
    ) {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 55);
        let backend = ExactBackend::build(&workload.library, small_backend_config());
        let pre = Preprocessor::default();
        let (queries, _) = pre.run_batch(&workload.queries);
        let index = CandidateIndex::build(&workload.library);
        let cands = candidate_lists(&index, &PrecursorWindow::open_default(), &queries);
        (workload, backend, queries, cands)
    }

    #[test]
    fn finds_mostly_true_references() {
        let (workload, backend, queries, cands) = setup();
        let hits = backend.search_batch(&queries, &cands);
        let mut correct = 0usize;
        let mut matchable = 0usize;
        for (binned, hit) in queries.iter().zip(&hits) {
            let truth = &workload.truth[binned.id as usize];
            if let Some(true_id) = truth.library_id() {
                matchable += 1;
                if let Some(h) = hit {
                    if h.reference == true_id {
                        correct += 1;
                    }
                }
            }
        }
        assert!(matchable > 20);
        let rate = correct as f64 / matchable as f64;
        assert!(rate > 0.7, "true-reference hit rate {rate} too low");
    }

    #[test]
    fn empty_candidates_give_none() {
        let (_, backend, queries, _) = setup();
        let empty: Vec<Vec<u32>> = queries.iter().map(|_| Vec::new()).collect();
        let hits = backend.search_batch(&queries, &empty);
        assert!(hits.iter().all(Option::is_none));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 56);
        let pre = Preprocessor::default();
        let (queries, _) = pre.run_batch(&workload.queries);
        let index = CandidateIndex::build(&workload.library);
        let cands = candidate_lists(&index, &PrecursorWindow::open_default(), &queries);
        let run = |threads: usize| {
            let backend = ExactBackend::build(
                &workload.library,
                ExactBackendConfig {
                    threads,
                    ..small_backend_config()
                },
            );
            backend.search_batch(&queries, &cands)
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn bit_errors_degrade_scores_but_not_catastrophically() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 57);
        let pre = Preprocessor::default();
        let (queries, _) = pre.run_batch(&workload.queries);
        let index = CandidateIndex::build(&workload.library);
        let cands = candidate_lists(&index, &PrecursorWindow::open_default(), &queries);

        let clean = ExactBackend::build(&workload.library, small_backend_config());
        let noisy = ExactBackend::build(
            &workload.library,
            ExactBackendConfig {
                encode_ber: 0.05,
                storage_ber: 0.05,
                ..small_backend_config()
            },
        );
        let clean_hits = clean.search_batch(&queries, &cands);
        let noisy_hits = noisy.search_batch(&queries, &cands);
        // At 5 % BER the HD representation tolerates the noise: most best
        // references should be unchanged (the paper's robustness claim).
        let agree = clean_hits
            .iter()
            .zip(&noisy_hits)
            .filter(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x.reference == y.reference,
                (None, None) => true,
                _ => false,
            })
            .count();
        let rate = agree as f64 / clean_hits.len() as f64;
        assert!(rate > 0.75, "agreement {rate} too low at 5 % BER");
        // And the noisy scores are lower on average.
        let mean = |hits: &[Option<SearchHit>]| {
            let scores: Vec<f64> = hits.iter().flatten().map(|h| h.score).collect();
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        assert!(mean(&noisy_hits) < mean(&clean_hits));
    }

    #[test]
    fn name_reflects_noise() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 58);
        let clean = ExactBackend::build(&workload.library, small_backend_config());
        assert_eq!(clean.name(), "exact-hd");
        let noisy = ExactBackend::build(
            &workload.library,
            ExactBackendConfig {
                encode_ber: 0.01,
                ..small_backend_config()
            },
        );
        assert!(noisy.name().contains("ber"));
    }

    #[test]
    fn blocked_groups_match_per_query_scans() {
        // Hand every query the same candidate list so search_batch
        // groups them into query blocks for the blocked kernel, then
        // check each hit against the singleton tiled scan.
        let (_, backend, queries, _) = setup();
        let all: Vec<u32> = (0..backend.shared_references().len() as u32).collect();
        let shared: Vec<Vec<u32>> = queries.iter().map(|_| all.clone()).collect();
        let blocked = backend.search_batch(&queries, &shared);
        let dim = backend.encoder().config().dim;
        let singles: Vec<Option<SearchHit>> = queries
            .iter()
            .map(|q| {
                let hv = backend.encode_query(q);
                best_hit(backend.shared_references(), dim, &hv, &all)
            })
            .collect();
        assert_eq!(blocked, singles);
        assert!(blocked.iter().any(Option::is_some));
    }

    #[test]
    fn mixed_grouping_boundaries_match_per_query_scans() {
        // Regression for the candidate-block grouping: a batch where
        // *some* consecutive queries share a candidate list and others
        // differ exercises every group boundary — shared runs longer
        // than QUERY_TILE (forced splits), singleton runs, empty lists,
        // and back-to-back distinct lists. Each hit must equal the
        // per-query tiled scan regardless of how the batch was cut.
        let (_, backend, queries, cands) = setup();
        let n = backend.shared_references().len() as u32;
        let all: Vec<u32> = (0..n).collect();
        let evens: Vec<u32> = (0..n).step_by(2).collect();
        let mixed: Vec<Vec<u32>> = (0..queries.len())
            .map(|i| match i % 7 {
                // A long shared run (wraps past QUERY_TILE across the
                // batch), a second shared run, per-query windows, an
                // empty list, and a singleton distinct list.
                0..=2 => all.clone(),
                3 | 4 => evens.clone(),
                5 => Vec::new(),
                _ => cands[i].clone(),
            })
            .collect();
        let grouped = backend.search_batch(&queries, &mixed);
        let dim = backend.encoder().config().dim;
        let singles: Vec<Option<SearchHit>> = queries
            .iter()
            .zip(&mixed)
            .map(|(q, c)| {
                let hv = backend.encode_query(q);
                best_hit(backend.shared_references(), dim, &hv, c)
            })
            .collect();
        assert_eq!(grouped, singles);
        assert!(grouped.iter().any(Option::is_some));
        assert!(
            grouped
                .iter()
                .zip(&mixed)
                .any(|(h, c)| c.is_empty() && h.is_none()),
            "the empty-list lane must survive grouping as None"
        );
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn search_batch_checks_lengths() {
        let (_, backend, queries, _) = setup();
        let _ = backend.search_batch(&queries, &[]);
    }
}
