//! Target-decoy false-discovery-rate (FDR) filtering — §3.4 of the paper.
//!
//! The library contains one shuffled *decoy* per target. Any query that
//! matches a decoy best is by construction a false positive, so the decoy
//! hit rate above a score threshold estimates the false-positive rate
//! among target hits at that threshold. The filter finds the loosest
//! threshold at which the estimated FDR stays at or below the requested
//! level (canonically 1 %) and accepts the target PSMs above it.

use crate::psm::Psm;
use serde::{Deserialize, Serialize};

/// Result of FDR filtering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdrOutcome {
    /// Accepted target PSMs (score above the chosen threshold), in
    /// descending score order.
    pub accepted: Vec<Psm>,
    /// The score of the weakest accepted PSM, or `f64::INFINITY` when
    /// nothing was accepted.
    pub threshold_score: f64,
    /// Number of decoy PSMs at or above the threshold.
    pub decoys_above: usize,
    /// q-value (minimal FDR at which the PSM would be accepted) for every
    /// input PSM, parallel to the *score-sorted* order returned by
    /// [`FdrOutcome::sorted_psms`].
    pub q_values: Vec<f64>,
    /// All PSMs sorted by descending score (ties by query id), the order
    /// `q_values` refers to.
    pub sorted_psms: Vec<Psm>,
}

impl FdrOutcome {
    /// Number of accepted identifications — the paper's
    /// "total # of identifications" metric (Figs. 11 and 13).
    pub fn identifications(&self) -> usize {
        self.accepted.len()
    }
}

/// Filter `psms` at FDR level `alpha` (e.g. `0.01` for 1 %).
///
/// The estimator is the classical target-decoy ratio `decoys / targets`
/// (the form used by ANN-SoLo and most open-search tools), monotonised
/// into q-values from the bottom of the score ranking. The conservative
/// `+1` pseudocount variant is deliberately not used: it forbids any
/// acceptance until at least `1/alpha` targets rank above the first decoy,
/// which is statistically safer on million-query datasets but degenerate
/// on the small workloads used in tests and examples.
///
/// # Panics
///
/// Panics unless `0 < alpha < 1`.
pub fn filter_fdr(psms: &[Psm], alpha: f64) -> FdrOutcome {
    assert!(alpha > 0.0 && alpha < 1.0, "FDR level must be in (0, 1)");
    let mut sorted: Vec<Psm> = psms.to_vec();
    sorted.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.query_id.cmp(&b.query_id))
    });

    // Walk down the ranking computing the running FDR estimate, then
    // monotonise from the bottom to obtain q-values.
    let mut fdrs = Vec::with_capacity(sorted.len());
    let mut targets = 0usize;
    let mut decoys = 0usize;
    for psm in &sorted {
        if psm.is_decoy {
            decoys += 1;
        } else {
            targets += 1;
        }
        let fdr = if targets == 0 {
            1.0
        } else {
            (decoys as f64 / targets as f64).min(1.0)
        };
        fdrs.push(fdr);
    }
    let mut q_values = fdrs.clone();
    let mut running_min = 1.0f64;
    for q in q_values.iter_mut().rev() {
        running_min = running_min.min(*q);
        *q = running_min;
    }

    // Accept every target at or above the last rank with q ≤ alpha.
    let cutoff = q_values.iter().rposition(|&q| q <= alpha);
    let (accepted, threshold_score, decoys_above) = match cutoff {
        None => (Vec::new(), f64::INFINITY, 0),
        Some(last) => {
            let accepted: Vec<Psm> = sorted[..=last]
                .iter()
                .filter(|p| p.is_target())
                .copied()
                .collect();
            let decoys_above = sorted[..=last].iter().filter(|p| p.is_decoy).count();
            (accepted, sorted[last].score, decoys_above)
        }
    };

    FdrOutcome {
        accepted,
        threshold_score,
        decoys_above,
        q_values,
        sorted_psms: sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psm(query_id: u32, score: f64, is_decoy: bool) -> Psm {
        Psm {
            query_id,
            reference_id: query_id,
            score,
            is_decoy,
            precursor_delta: 0.0,
        }
    }

    #[test]
    fn clean_separation_accepts_all_targets() {
        // 50 targets scoring high, 50 decoys scoring low.
        let mut psms = Vec::new();
        for i in 0..50 {
            psms.push(psm(i, 0.9 - i as f64 * 1e-3, false));
            psms.push(psm(100 + i, 0.1 - i as f64 * 1e-3, true));
        }
        let out = filter_fdr(&psms, 0.01);
        assert_eq!(out.identifications(), 50);
        assert_eq!(out.decoys_above, 0);
    }

    #[test]
    fn interleaved_decoys_truncate_acceptance() {
        // Ranking: 10 targets, then alternating decoy/target — the FDR
        // estimate rises quickly once decoys appear.
        let mut psms = Vec::new();
        for i in 0..10 {
            psms.push(psm(i, 1.0 - i as f64 * 1e-3, false));
        }
        for i in 0..20 {
            psms.push(psm(100 + i, 0.5 - i as f64 * 1e-3, i % 2 == 0));
        }
        let out = filter_fdr(&psms, 0.15);
        // Ranks 1–10 are clean targets (FDR 0). Rank 11 is a decoy
        // (1/10 = 0.10 ≤ 0.15) and rank 12 a target (1/11 ≈ 0.09, which is
        // also the q-value there since later estimates only grow); rank 13
        // pushes the estimate to 2/11 ≈ 0.18 > 0.15. The cutoff therefore
        // sits at rank 12: eleven targets, one decoy above threshold.
        assert_eq!(out.identifications(), 11);
        assert_eq!(out.decoys_above, 1);
    }

    #[test]
    fn no_psms_no_identifications() {
        let out = filter_fdr(&[], 0.01);
        assert_eq!(out.identifications(), 0);
        assert_eq!(out.threshold_score, f64::INFINITY);
    }

    #[test]
    fn all_decoys_accept_nothing() {
        let psms: Vec<Psm> = (0..10).map(|i| psm(i, 0.5, true)).collect();
        let out = filter_fdr(&psms, 0.01);
        assert_eq!(out.identifications(), 0);
    }

    #[test]
    fn q_values_are_monotone_in_rank() {
        let mut psms = Vec::new();
        for i in 0..100 {
            psms.push(psm(i, 1.0 - i as f64 * 0.01, i % 7 == 3));
        }
        let out = filter_fdr(&psms, 0.01);
        for w in out.q_values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "q-values must be non-decreasing");
        }
    }

    #[test]
    fn tighter_alpha_accepts_fewer() {
        let mut psms = Vec::new();
        for i in 0..200 {
            // decoys sprinkled through the ranking
            psms.push(psm(i, 1.0 - i as f64 * 0.004, i % 11 == 5));
        }
        let loose = filter_fdr(&psms, 0.2).identifications();
        let tight = filter_fdr(&psms, 0.02).identifications();
        assert!(tight <= loose);
        assert!(loose > 0);
    }

    #[test]
    fn accepted_contains_only_targets_above_threshold() {
        let mut psms = Vec::new();
        for i in 0..40 {
            psms.push(psm(i, 1.0 - i as f64 * 0.01, i >= 30));
        }
        let out = filter_fdr(&psms, 0.10);
        for p in &out.accepted {
            assert!(p.is_target());
            assert!(p.score >= out.threshold_score);
        }
    }

    #[test]
    #[should_panic(expected = "FDR level must be in (0, 1)")]
    fn rejects_silly_alpha() {
        let _ = filter_fdr(&[], 1.0);
    }

    #[test]
    fn empirical_false_rate_respects_alpha() {
        // Synthetic calibration check: true matches score ~N(high), random
        // matches (half of them decoys) score lower with overlap. The
        // accepted set should contain mostly true matches.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut psms = Vec::new();
        let mut is_true = std::collections::HashSet::new();
        for i in 0..500u32 {
            // True match: high score, always a target.
            psms.push(psm(i, 0.6 + 0.1 * rng.gen::<f64>(), false));
            is_true.insert(i);
        }
        for i in 500..1000u32 {
            // Random match: low score, decoy half the time.
            psms.push(psm(i, 0.3 + 0.25 * rng.gen::<f64>(), rng.gen_bool(0.5)));
        }
        let out = filter_fdr(&psms, 0.01);
        let false_accepts = out
            .accepted
            .iter()
            .filter(|p| !is_true.contains(&p.query_id))
            .count();
        let rate = false_accepts as f64 / out.identifications().max(1) as f64;
        assert!(
            rate < 0.05,
            "empirical false rate {rate} should be near the 1 % target"
        );
        assert!(out.identifications() >= 450, "most true matches accepted");
    }
}
