//! Two-pass cascade open search (the ANN-SoLo strategy).
//!
//! ANN-SoLo's key systems trick: run a cheap *standard* (narrow-window)
//! pass first, accept its confident identifications, and only send the
//! remaining queries through the expensive *open* pass. Because the
//! standard pass faces a candidate set hundreds of times smaller, the
//! cascade cuts total scoring work while separately controlling FDR per
//! pass — modified peptides can only be found in pass two, so competing
//! them against unmodified matches in one pool would bias the filter.
//!
//! The cascade is backend-agnostic: it runs any
//! [`SimilarityBackend`], including the RRAM accelerator.

use crate::candidates::CandidateIndex;
use crate::fdr::filter_fdr;
use crate::pipeline::{OmsPipeline, PipelineOutcome};
use crate::psm::Psm;
use crate::search::{candidate_lists, SimilarityBackend};
use crate::window::PrecursorWindow;
use hdoms_ms::dataset::SyntheticWorkload;
use hdoms_ms::preprocess::Preprocessor;
use serde::Serialize;

/// Result of a cascade run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CascadeOutcome {
    /// Accepted PSMs from the standard (first) pass.
    pub standard_accepted: Vec<Psm>,
    /// Accepted PSMs from the open (second) pass.
    pub open_accepted: Vec<Psm>,
    /// Queries sent into the second pass.
    pub second_pass_queries: usize,
    /// Candidate pairs scored in pass one / pass two — the work saving
    /// the cascade exists for.
    pub standard_pairs: u64,
    /// Candidate pairs scored in the open pass.
    pub open_pairs: u64,
}

impl CascadeOutcome {
    /// Total identifications across both passes.
    pub fn identifications(&self) -> usize {
        self.standard_accepted.len() + self.open_accepted.len()
    }

    /// All accepted PSMs (standard pass first).
    pub fn all_accepted(&self) -> Vec<Psm> {
        let mut out = self.standard_accepted.clone();
        out.extend(self.open_accepted.iter().copied());
        out
    }

    /// Scored-pair reduction factor versus a single open-window pass over
    /// every query (`>1` means the cascade saved work).
    pub fn work_saving(&self, single_pass_pairs: u64) -> f64 {
        single_pass_pairs as f64 / (self.standard_pairs + self.open_pairs).max(1) as f64
    }
}

/// Cascade configuration: the two windows and per-pass FDR level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CascadeConfig {
    /// First-pass (narrow) window.
    pub standard_window: PrecursorWindow,
    /// Second-pass (open) window.
    pub open_window: PrecursorWindow,
    /// FDR level applied independently to each pass.
    pub fdr_level: f64,
}

impl Default for CascadeConfig {
    fn default() -> CascadeConfig {
        CascadeConfig {
            standard_window: PrecursorWindow::standard_default(),
            open_window: PrecursorWindow::open_default(),
            fdr_level: 0.01,
        }
    }
}

/// Run the cascade over `workload` with `backend`, reusing the pipeline's
/// preprocessing configuration.
///
/// # Panics
///
/// Panics if either window is invalid or the FDR level is out of range.
pub fn run_cascade<B: SimilarityBackend + ?Sized>(
    pipeline: &OmsPipeline,
    config: &CascadeConfig,
    workload: &SyntheticWorkload,
    backend: &B,
) -> CascadeOutcome {
    config.standard_window.validate();
    config.open_window.validate();
    assert!(
        config.fdr_level > 0.0 && config.fdr_level < 1.0,
        "FDR level must be in (0, 1)"
    );
    let pre = Preprocessor::new(pipeline.config().preprocess);
    let (queries, _) = pre.run_batch(&workload.queries);
    let index = CandidateIndex::build(&workload.library);

    // Pass 1: standard window over everything.
    let std_cands = candidate_lists(&index, &config.standard_window, &queries);
    let standard_pairs: u64 = std_cands.iter().map(|c| c.len() as u64).sum();
    let hits = backend.search_batch(&queries, &std_cands);
    let psms = build_psms(workload, &queries, &hits);
    let standard_accepted = filter_fdr(&psms, config.fdr_level).accepted;
    let identified: std::collections::HashSet<u32> =
        standard_accepted.iter().map(|p| p.query_id).collect();

    // Pass 2: open window over the remainder only.
    let remaining: Vec<hdoms_ms::preprocess::BinnedSpectrum> = queries
        .iter()
        .filter(|q| !identified.contains(&q.id))
        .cloned()
        .collect();
    let open_cands = candidate_lists(&index, &config.open_window, &remaining);
    let open_pairs: u64 = open_cands.iter().map(|c| c.len() as u64).sum();
    let hits = backend.search_batch(&remaining, &open_cands);
    let psms = build_psms(workload, &remaining, &hits);
    let open_accepted = filter_fdr(&psms, config.fdr_level).accepted;

    CascadeOutcome {
        standard_accepted,
        open_accepted,
        second_pass_queries: remaining.len(),
        standard_pairs,
        open_pairs,
    }
}

fn build_psms(
    workload: &SyntheticWorkload,
    queries: &[hdoms_ms::preprocess::BinnedSpectrum],
    hits: &[Option<crate::search::SearchHit>],
) -> Vec<Psm> {
    queries
        .iter()
        .zip(hits)
        .filter_map(|(binned, hit)| {
            hit.map(|h| {
                let entry = workload
                    .library
                    .get(h.reference)
                    .expect("backend returned a valid library id");
                Psm {
                    query_id: binned.id,
                    reference_id: h.reference,
                    score: h.score,
                    is_decoy: entry.is_decoy,
                    precursor_delta: binned.neutral_mass - entry.spectrum.neutral_mass(),
                }
            })
        })
        .collect()
}

/// Compare a cascade against the single-pass pipeline outcome: the pairs
/// a single open pass would have scored.
pub fn single_pass_pairs(outcome: &PipelineOutcome) -> u64 {
    (outcome.mean_candidates * (outcome.total_queries - outcome.rejected_queries) as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::search::{ExactBackend, ExactBackendConfig};
    use hdoms_hdc::encoder::EncoderConfig;
    use hdoms_ms::dataset::WorkloadSpec;

    fn setup() -> (SyntheticWorkload, OmsPipeline, ExactBackend) {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 2024);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        let backend = ExactBackend::build(
            &workload.library,
            ExactBackendConfig {
                encoder: EncoderConfig {
                    dim: 2048,
                    ..EncoderConfig::default()
                },
                threads: 4,
                ..ExactBackendConfig::default()
            },
        );
        (workload, pipeline, backend)
    }

    #[test]
    fn cascade_identifies_comparable_to_single_pass() {
        let (workload, pipeline, backend) = setup();
        let single = pipeline.run(&workload, &backend);
        let cascade = run_cascade(&pipeline, &CascadeConfig::default(), &workload, &backend);
        let a = cascade.identifications() as f64;
        let b = single.identifications() as f64;
        assert!(
            a >= 0.8 * b,
            "cascade ids {a} should be comparable to single-pass {b}"
        );
    }

    #[test]
    fn cascade_saves_scoring_work() {
        let (workload, pipeline, backend) = setup();
        let single = pipeline.run(&workload, &backend);
        let cascade = run_cascade(&pipeline, &CascadeConfig::default(), &workload, &backend);
        let saving = cascade.work_saving(single_pass_pairs(&single));
        assert!(
            saving > 1.2,
            "cascade should reduce scored pairs (saving factor {saving})"
        );
    }

    #[test]
    fn second_pass_receives_only_unidentified_queries() {
        let (workload, pipeline, backend) = setup();
        let cascade = run_cascade(&pipeline, &CascadeConfig::default(), &workload, &backend);
        assert_eq!(
            cascade.second_pass_queries + cascade.standard_accepted.len(),
            workload.queries.len(),
            "every query is either identified in pass one or forwarded"
        );
        // No query may be accepted twice.
        let mut seen = std::collections::HashSet::new();
        for psm in cascade.all_accepted() {
            assert!(
                seen.insert(psm.query_id),
                "query {} accepted twice",
                psm.query_id
            );
        }
    }

    #[test]
    fn open_pass_finds_the_modified_peptides() {
        let (workload, pipeline, backend) = setup();
        let cascade = run_cascade(&pipeline, &CascadeConfig::default(), &workload, &backend);
        let modified_in_open = cascade
            .open_accepted
            .iter()
            .filter(|p| workload.truth[p.query_id as usize].is_modified())
            .count();
        // The narrow window cannot contain a modified query's *true*
        // reference (it may still mis-assign the query to a same-mass
        // impostor, which the FDR filter treats like any other PSM).
        let true_modified_in_standard = cascade
            .standard_accepted
            .iter()
            .filter(|p| {
                let truth = &workload.truth[p.query_id as usize];
                truth.is_modified() && truth.library_id() == Some(p.reference_id)
            })
            .count();
        assert!(
            modified_in_open > 0,
            "open pass must find modified peptides"
        );
        assert_eq!(
            true_modified_in_standard, 0,
            "standard pass cannot reach a modified query's true reference"
        );
    }
}
