//! End-to-end OMS orchestration: preprocess → candidates → search → FDR.
//!
//! These four stages are also the observability spans of the served
//! stack: `hdoms-engine` times each one where it runs and surfaces the
//! figures as the `encode` / `candidates` / `score` / `finalize`
//! fields in receipts, `BatchStats`, and the `hdoms_stage_*_ms`
//! histograms (see `docs/OBSERVABILITY.md`). This crate itself stays
//! timer-free — instrumentation lives in the callers.

use crate::candidates::CandidateIndex;
use crate::fdr::{filter_fdr, FdrOutcome};
use crate::psm::Psm;
use crate::search::{
    candidate_lists, ExactBackend, ExactBackendConfig, SearchHit, SimilarityBackend,
};
use crate::window::PrecursorWindow;
use hdoms_ms::dataset::SyntheticWorkload;
use hdoms_ms::library::SpectralLibrary;
use hdoms_ms::preprocess::{BinnedSpectrum, PreprocessConfig, Preprocessor};
use hdoms_ms::spectrum::Spectrum;
use serde::Serialize;
use std::collections::{BTreeSet, HashSet};

/// The reference-side metadata the pipeline needs to turn backend hits
/// into PSMs: masses for the precursor delta, decoy flags for FDR.
///
/// A [`SpectralLibrary`] is the obvious catalog; a prebuilt persistent
/// index (`hdoms-index`) implements this too, which is how a search runs
/// without the raw library ever being loaded.
pub trait ReferenceCatalog {
    /// Number of references (dense ids `0..len`).
    fn reference_count(&self) -> usize;

    /// Neutral mass of reference `id`, or `None` for an unknown id.
    fn reference_mass(&self, id: u32) -> Option<f64>;

    /// Whether reference `id` is a decoy, or `None` for an unknown id.
    fn reference_is_decoy(&self, id: u32) -> Option<bool>;

    /// A mass-sorted candidate index over all references.
    fn candidate_index(&self) -> CandidateIndex;
}

impl ReferenceCatalog for SpectralLibrary {
    fn reference_count(&self) -> usize {
        self.len()
    }

    fn reference_mass(&self, id: u32) -> Option<f64> {
        self.get(id).map(|e| e.spectrum.neutral_mass())
    }

    fn reference_is_decoy(&self, id: u32) -> Option<bool> {
        self.get(id).map(|e| e.is_decoy)
    }

    fn candidate_index(&self) -> CandidateIndex {
        CandidateIndex::build(self)
    }
}

/// Join a batch of backend hits with catalog metadata into PSMs.
///
/// This is the one assembly step between scoring and FDR, shared by
/// **every** execution path — [`OmsPipeline`] and the `hdoms-engine`
/// session layer both call it, which is what guarantees that a streamed
/// multi-batch session reproduces a one-shot batch run byte-for-byte.
///
/// `queries[i]` must pair with `hits[i]`.
///
/// # Panics
///
/// Panics if the lengths disagree or a hit names a reference the catalog
/// does not know.
pub fn assemble_psms<C>(
    queries: &[BinnedSpectrum],
    hits: &[Option<SearchHit>],
    catalog: &C,
) -> Vec<Psm>
where
    C: ReferenceCatalog + ?Sized,
{
    assert_eq!(queries.len(), hits.len(), "queries and hits must pair up");
    queries
        .iter()
        .zip(hits)
        .filter_map(|(binned, hit)| {
            hit.map(|h| {
                let reference_mass = catalog
                    .reference_mass(h.reference)
                    .expect("backend returned a valid reference id");
                let is_decoy = catalog
                    .reference_is_decoy(h.reference)
                    .expect("backend returned a valid reference id");
                Psm {
                    query_id: binned.id,
                    reference_id: h.reference,
                    score: h.score,
                    is_decoy,
                    precursor_delta: binned.neutral_mass - reference_mass,
                }
            })
        })
        .collect()
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PipelineConfig {
    /// Preprocessing applied to query spectra (must match the backend's
    /// library preprocessing for scores to be meaningful).
    pub preprocess: PreprocessConfig,
    /// The precursor window; open by default — this *is* open modification
    /// search.
    pub window: PrecursorWindow,
    /// FDR acceptance level (the paper filters at the conventional 1 %).
    pub fdr_level: f64,
    /// Worker threads.
    pub threads: usize,
    /// Configuration for the built-in exact backend used by
    /// [`OmsPipeline::run_exact`].
    pub exact: ExactBackendConfig,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            preprocess: PreprocessConfig::default(),
            window: PrecursorWindow::open_default(),
            fdr_level: 0.01,
            threads: hdoms_hdc::parallel::default_threads(),
            exact: ExactBackendConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A configuration sized for unit tests and doctests: 2048-dim
    /// hypervectors, few threads. Quality is slightly below the 8192-dim
    /// default but runs in milliseconds on tiny workloads.
    pub fn fast_test() -> PipelineConfig {
        let mut config = PipelineConfig::default();
        config.exact.encoder.dim = 2048;
        config.exact.threads = 4;
        config.threads = 4;
        config
    }
}

/// The result of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineOutcome {
    /// Name of the backend that produced the scores.
    pub backend_name: String,
    /// Best-hit PSMs for every query that survived preprocessing and had
    /// candidates.
    pub psms: Vec<Psm>,
    /// Target PSMs accepted at the configured FDR, descending score.
    pub accepted: Vec<Psm>,
    /// Score of the weakest accepted PSM.
    pub threshold_score: f64,
    /// Decoy PSMs above the threshold.
    pub decoys_above: usize,
    /// Queries dropped by preprocessing (too few peaks).
    pub rejected_queries: usize,
    /// Total queries in the workload.
    pub total_queries: usize,
    /// Mean open-window candidate count per query (the search blow-up the
    /// accelerator has to cope with).
    pub mean_candidates: f64,
}

impl PipelineOutcome {
    /// Number of accepted identifications (the paper's headline quality
    /// metric, Figs. 11/13).
    pub fn identifications(&self) -> usize {
        self.accepted.len()
    }

    /// Ids of the queries with an accepted identification.
    pub fn accepted_query_ids(&self) -> HashSet<u32> {
        self.accepted.iter().map(|p| p.query_id).collect()
    }

    /// The set of identified peptide sequences — what the Fig. 10 Venn
    /// diagram compares across tools.
    pub fn identified_peptides(&self, library: &SpectralLibrary) -> BTreeSet<String> {
        self.accepted
            .iter()
            .filter_map(|p| library.get(p.reference_id))
            .map(|e| e.peptide.to_string())
            .collect()
    }

    /// Compare accepted PSMs against the synthetic ground truth.
    pub fn evaluate(&self, workload: &SyntheticWorkload) -> EvalStats {
        let mut correct = 0usize;
        let mut wrong_reference = 0usize;
        let mut unmatchable_accepted = 0usize;
        for psm in &self.accepted {
            match workload.truth[psm.query_id as usize].library_id() {
                Some(true_id) if true_id == psm.reference_id => correct += 1,
                Some(_) => wrong_reference += 1,
                None => unmatchable_accepted += 1,
            }
        }
        let matchable = workload.matchable_queries();
        EvalStats {
            accepted: self.accepted.len(),
            correct,
            wrong_reference,
            unmatchable_accepted,
            recall: if matchable == 0 {
                0.0
            } else {
                correct as f64 / matchable as f64
            },
            observed_false_rate: if self.accepted.is_empty() {
                0.0
            } else {
                (wrong_reference + unmatchable_accepted) as f64 / self.accepted.len() as f64
            },
        }
    }
}

/// Ground-truth evaluation of a pipeline run (synthetic workloads only —
/// real data has no ground truth, which is why the paper compares tool
/// agreement instead, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvalStats {
    /// Accepted identifications.
    pub accepted: usize,
    /// Accepted PSMs pointing at the query's true library entry.
    pub correct: usize,
    /// Accepted PSMs pointing at some other target entry.
    pub wrong_reference: usize,
    /// Accepted PSMs for queries with no true match in the library.
    pub unmatchable_accepted: usize,
    /// `correct / matchable queries`.
    pub recall: f64,
    /// Fraction of accepted PSMs that are wrong — should track the FDR
    /// level.
    pub observed_false_rate: f64,
}

/// The OMS pipeline: owns the stage configuration, runs any backend.
#[derive(Debug, Clone, PartialEq)]
pub struct OmsPipeline {
    config: PipelineConfig,
}

impl OmsPipeline {
    /// Create a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the window is invalid or the FDR level is outside (0, 1).
    pub fn new(config: PipelineConfig) -> OmsPipeline {
        config.window.validate();
        assert!(
            config.fdr_level > 0.0 && config.fdr_level < 1.0,
            "FDR level must be in (0, 1)"
        );
        OmsPipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run the full pipeline over `workload` with `backend`.
    pub fn run<B: SimilarityBackend + ?Sized>(
        &self,
        workload: &SyntheticWorkload,
        backend: &B,
    ) -> PipelineOutcome {
        self.run_catalog(&workload.queries, &workload.library, backend)
    }

    /// Run the pipeline over raw query spectra against any reference
    /// catalog with a *prebuilt* backend.
    ///
    /// This is the entry point for index-backed searches: the catalog may
    /// be a [`SpectralLibrary`] or a loaded `hdoms-index`, and the backend
    /// is whatever was reconstructed (or built) over the same references.
    pub fn run_catalog<B, C>(
        &self,
        queries: &[Spectrum],
        catalog: &C,
        backend: &B,
    ) -> PipelineOutcome
    where
        B: SimilarityBackend + ?Sized,
        C: ReferenceCatalog + ?Sized,
    {
        self.prepare_and_run(queries, catalog, backend, &catalog.candidate_index())
    }

    /// Preprocess, look up candidates, then score and filter (the body
    /// every public `run_*` entry point funnels through).
    fn prepare_and_run<B, C>(
        &self,
        queries: &[Spectrum],
        catalog: &C,
        backend: &B,
        index: &CandidateIndex,
    ) -> PipelineOutcome
    where
        B: SimilarityBackend + ?Sized,
        C: ReferenceCatalog + ?Sized,
    {
        let pre = Preprocessor::new(self.config.preprocess);
        let (binned_queries, rejected) = pre.run_batch(queries);
        let cands = candidate_lists(index, &self.config.window, &binned_queries);
        self.run_prepared_inner(
            queries.len(),
            &binned_queries,
            rejected,
            &cands,
            catalog,
            backend,
        )
    }

    fn run_prepared_inner<B, C>(
        &self,
        total_queries: usize,
        binned_queries: &[BinnedSpectrum],
        rejected_queries: usize,
        candidates: &[Vec<u32>],
        catalog: &C,
        backend: &B,
    ) -> PipelineOutcome
    where
        B: SimilarityBackend + ?Sized,
        C: ReferenceCatalog + ?Sized,
    {
        let mean_candidates = if binned_queries.is_empty() {
            0.0
        } else {
            candidates.iter().map(Vec::len).sum::<usize>() as f64 / binned_queries.len() as f64
        };
        let hits = backend.search_batch(binned_queries, candidates);
        let psms = assemble_psms(binned_queries, &hits, catalog);

        let FdrOutcome {
            accepted,
            threshold_score,
            decoys_above,
            ..
        } = filter_fdr(&psms, self.config.fdr_level);

        PipelineOutcome {
            backend_name: backend.name(),
            psms,
            accepted,
            threshold_score,
            decoys_above,
            rejected_queries,
            total_queries,
            mean_candidates,
        }
    }

    /// Convenience: build the exact HD backend from
    /// `config.exact` and run it.
    pub fn run_exact(&self, workload: &SyntheticWorkload) -> PipelineOutcome {
        let mut exact = self.config.exact;
        // The backend must preprocess the library exactly like the
        // pipeline preprocesses queries.
        exact.preprocess = self.config.preprocess;
        let backend = ExactBackend::build(&workload.library, exact);
        self.run(workload, &backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoms_ms::dataset::WorkloadSpec;

    fn run_tiny(seed: u64) -> (SyntheticWorkload, PipelineOutcome) {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        let outcome = pipeline.run_exact(&workload);
        (workload, outcome)
    }

    #[test]
    fn identifies_most_matchable_queries() {
        let (workload, outcome) = run_tiny(100);
        let eval = outcome.evaluate(&workload);
        assert!(
            eval.recall > 0.6,
            "recall {} too low (accepted {}, correct {})",
            eval.recall,
            eval.accepted,
            eval.correct
        );
    }

    #[test]
    fn observed_false_rate_tracks_fdr_level() {
        // Average over seeds: each tiny workload is small, so pool.
        let mut wrong = 0usize;
        let mut total = 0usize;
        for seed in 200..206 {
            let (workload, outcome) = run_tiny(seed);
            let eval = outcome.evaluate(&workload);
            wrong += eval.wrong_reference + eval.unmatchable_accepted;
            total += eval.accepted;
        }
        assert!(total > 50);
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.08, "pooled false rate {rate} too far above 1 %");
    }

    #[test]
    fn open_window_finds_modified_peptides() {
        let (workload, outcome) = run_tiny(300);
        // Count accepted modified queries.
        let accepted = outcome.accepted_query_ids();
        let modified_found = workload
            .truth
            .iter()
            .enumerate()
            .filter(|(i, t)| t.is_modified() && accepted.contains(&(*i as u32)))
            .count();
        assert!(
            modified_found > 5,
            "open search should identify modified peptides, found {modified_found}"
        );
    }

    #[test]
    fn standard_window_misses_modified_peptides() {
        // Pool over seeds like observed_false_rate_tracks_fdr_level does:
        // on any single tiny workload a stray coincidental acceptance (a
        // modified query matching some other reference inside the narrow
        // window) can occur, so assert the pooled rate instead of pinning
        // one seed to an exact zero.
        let mut modified_total = 0usize;
        let mut modified_found = 0usize;
        for seed in 300..306 {
            let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed);
            let mut config = PipelineConfig::fast_test();
            config.window = PrecursorWindow::standard_default();
            let outcome = OmsPipeline::new(config).run_exact(&workload);
            let accepted = outcome.accepted_query_ids();
            modified_total += workload.truth.iter().filter(|t| t.is_modified()).count();
            modified_found += workload
                .truth
                .iter()
                .enumerate()
                .filter(|(i, t)| t.is_modified() && accepted.contains(&(*i as u32)))
                .count();
        }
        assert!(modified_total > 50, "pooled workloads too small");
        let rate = modified_found as f64 / modified_total as f64;
        assert!(
            rate < 0.02,
            "standard search should not reach modified peptides: \
             pooled rate {rate} ({modified_found}/{modified_total})"
        );
    }

    #[test]
    fn outcome_bookkeeping_consistent() {
        let (workload, outcome) = run_tiny(400);
        assert_eq!(outcome.total_queries, workload.queries.len());
        assert!(outcome.accepted.len() <= outcome.psms.len());
        assert!(outcome.accepted.iter().all(Psm::is_target));
        assert!(outcome.mean_candidates > 1.0);
        for psm in &outcome.accepted {
            assert!(psm.score >= outcome.threshold_score);
        }
    }

    #[test]
    fn identified_peptides_nonempty_and_valid() {
        let (workload, outcome) = run_tiny(500);
        let peptides = outcome.identified_peptides(&workload.library);
        assert!(!peptides.is_empty());
        assert!(peptides.len() <= outcome.identifications());
    }

    #[test]
    fn run_is_deterministic() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 600);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        let a = pipeline.run_exact(&workload);
        let b = pipeline.run_exact(&workload);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "FDR level")]
    fn rejects_bad_fdr() {
        let mut config = PipelineConfig::fast_test();
        config.fdr_level = 0.0;
        let _ = OmsPipeline::new(config);
    }

    #[test]
    fn higher_dimension_does_not_hurt() {
        // Fig. 13 direction, pooled over seeds: more dimensions → at
        // least as many identifications in aggregate. A single tiny
        // workload at a pinned seed is noisy enough to flip the
        // comparison, so sum over several.
        let mut low_total = 0usize;
        let mut high_total = 0usize;
        for seed in 700..704 {
            let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed);
            let run_with_dim = |dim: usize| {
                let mut config = PipelineConfig::fast_test();
                config.exact.encoder.dim = dim;
                OmsPipeline::new(config)
                    .run_exact(&workload)
                    .identifications()
            };
            low_total += run_with_dim(512);
            high_total += run_with_dim(4096);
        }
        assert!(
            high_total + 4 >= low_total,
            "pooled 4096-dim ids ({high_total}) should not trail \
             512-dim ids ({low_total})"
        );
    }
}
