//! Peptide-spectrum matches (PSMs).

use serde::{Deserialize, Serialize};

/// The outcome of searching one query spectrum: its best-scoring library
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Psm {
    /// Query spectrum id.
    pub query_id: u32,
    /// Library entry id of the best match.
    pub reference_id: u32,
    /// Backend-specific similarity score; only the ordering within one
    /// backend is meaningful (the FDR filter consumes ranks, not values).
    pub score: f64,
    /// Whether the matched library entry is a decoy.
    pub is_decoy: bool,
    /// `query − reference` neutral-mass delta in daltons; for a correctly
    /// matched modified peptide this approximates the modification mass.
    pub precursor_delta: f64,
}

impl Psm {
    /// Whether this PSM hits a target (non-decoy) entry.
    pub fn is_target(&self) -> bool {
        !self.is_decoy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_is_not_decoy() {
        let psm = Psm {
            query_id: 0,
            reference_id: 1,
            score: 0.5,
            is_decoy: false,
            precursor_delta: 15.99,
        };
        assert!(psm.is_target());
        let decoy = Psm {
            is_decoy: true,
            ..psm
        };
        assert!(!decoy.is_target());
    }
}
