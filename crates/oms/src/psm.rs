//! Peptide-spectrum matches (PSMs) and the canonical PSM table format.

use crate::pipeline::PipelineOutcome;
use serde::{Deserialize, Serialize};

/// The outcome of searching one query spectrum: its best-scoring library
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Psm {
    /// Query spectrum id.
    pub query_id: u32,
    /// Library entry id of the best match.
    pub reference_id: u32,
    /// Backend-specific similarity score; only the ordering within one
    /// backend is meaningful (the FDR filter consumes ranks, not values).
    pub score: f64,
    /// Whether the matched library entry is a decoy.
    pub is_decoy: bool,
    /// `query − reference` neutral-mass delta in daltons; for a correctly
    /// matched modified peptide this approximates the modification mass.
    pub precursor_delta: f64,
}

impl Psm {
    /// Whether this PSM hits a target (non-decoy) entry.
    pub fn is_target(&self) -> bool {
        !self.is_decoy
    }
}

/// One row of the canonical tab-separated PSM table: a [`Psm`] joined
/// with its peptide sequence and FDR acceptance flag.
///
/// Rows are the unit the serve layer ships over the wire; rendering a row
/// list with [`render_table_rows`] is byte-identical to rendering the
/// originating [`PipelineOutcome`] with [`render_table`], which is what
/// lets a remote `query` reproduce a local `search` output exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PsmTableRow {
    /// The match itself.
    pub psm: Psm,
    /// Peptide sequence of the matched reference.
    pub peptide: String,
    /// Whether the PSM was accepted at the run's FDR level (decoys are
    /// never accepted).
    pub accepted: bool,
}

/// Header line of the canonical PSM table.
pub const TABLE_HEADER: &str =
    "query_id\treference_id\tpeptide\tscore\tis_decoy\tprecursor_delta_da\taccepted";

/// Join a pipeline outcome with per-id peptide sequences into table rows
/// (one row per best-hit PSM, in outcome order).
pub fn table_rows(peptides_by_id: &[String], outcome: &PipelineOutcome) -> Vec<PsmTableRow> {
    let accepted = outcome.accepted_query_ids();
    outcome
        .psms
        .iter()
        .map(|psm| PsmTableRow {
            psm: *psm,
            peptide: peptides_by_id
                .get(psm.reference_id as usize)
                .cloned()
                .unwrap_or_default(),
            accepted: accepted.contains(&psm.query_id) && psm.is_target(),
        })
        .collect()
}

/// Render rows as the canonical tab-separated PSM table.
pub fn render_table_rows(rows: &[PsmTableRow]) -> String {
    let mut out = String::from(TABLE_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{:.6}\t{}\t{:.4}\t{}\n",
            row.psm.query_id,
            row.psm.reference_id,
            row.peptide,
            row.psm.score,
            u8::from(row.psm.is_decoy),
            row.psm.precursor_delta,
            u8::from(row.accepted),
        ));
    }
    out
}

/// Render a pipeline outcome as the canonical PSM table (all best hits,
/// with an `accepted` column).
pub fn render_table(peptides_by_id: &[String], outcome: &PipelineOutcome) -> String {
    render_table_rows(&table_rows(peptides_by_id, outcome))
}

/// Parse a canonical PSM table back into `(psm, accepted)` pairs
/// (the peptide column is validated for arity but not returned).
///
/// # Errors
///
/// Returns a description of the first ragged or unparseable line.
pub fn parse_table(table: &str) -> Result<Vec<(Psm, bool)>, String> {
    let mut out = Vec::new();
    for (i, line) in table.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "line {}: expected 7 columns, got {}",
                i + 1,
                fields.len()
            ));
        }
        let parse = |f: &str, what: &str| -> Result<f64, String> {
            f.parse()
                .map_err(|_| format!("line {}: bad {what} {f:?}", i + 1))
        };
        out.push((
            Psm {
                query_id: parse(fields[0], "query id")? as u32,
                reference_id: parse(fields[1], "reference id")? as u32,
                score: parse(fields[3], "score")?,
                is_decoy: fields[4] == "1",
                precursor_delta: parse(fields[5], "delta")?,
            },
            fields[6] == "1",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_is_not_decoy() {
        let psm = Psm {
            query_id: 0,
            reference_id: 1,
            score: 0.5,
            is_decoy: false,
            precursor_delta: 15.99,
        };
        assert!(psm.is_target());
        let decoy = Psm {
            is_decoy: true,
            ..psm
        };
        assert!(!decoy.is_target());
    }

    #[test]
    fn rows_render_and_parse_back() {
        let rows = vec![
            PsmTableRow {
                psm: Psm {
                    query_id: 3,
                    reference_id: 17,
                    score: 0.812345,
                    is_decoy: false,
                    precursor_delta: 15.9949,
                },
                peptide: "PEPTIDEK".to_owned(),
                accepted: true,
            },
            PsmTableRow {
                psm: Psm {
                    query_id: 4,
                    reference_id: 9,
                    score: 0.25,
                    is_decoy: true,
                    precursor_delta: -0.5,
                },
                peptide: "KEDITPEP".to_owned(),
                accepted: false,
            },
        ];
        let table = render_table_rows(&rows);
        assert!(table.starts_with(TABLE_HEADER));
        let parsed = parse_table(&table).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0.query_id, 3);
        assert!(parsed[0].1);
        assert!(parsed[1].0.is_decoy);
        assert!(!parsed[1].1);
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        assert!(parse_table("header\n1\t2\t3\n").is_err());
    }
}
