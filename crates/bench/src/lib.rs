//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every table and figure of the paper has a binary under `src/bin/`;
//! this library provides the bits they share: simple CLI parsing
//! (`--scale`, `--seed`, `--dim`), aligned table printing, and a text
//! histogram for the conductance figure.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Display;

/// Options common to the figure binaries, parsed from `std::env::args`.
///
/// Supported flags: `--scale <f64>`, `--seed <u64>`, `--dim <usize>`.
/// Unknown flags abort with a usage message — silently ignoring a typo'd
/// flag would regenerate the wrong figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureOptions {
    /// Workload scale relative to the paper's dataset sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Hypervector dimension.
    pub dim: usize,
}

impl FigureOptions {
    /// Parse the process arguments with the given defaults.
    ///
    /// # Panics
    ///
    /// Exits the process (code 2) on malformed flags.
    pub fn parse(default_scale: f64, default_dim: usize) -> FigureOptions {
        let mut options = FigureOptions {
            scale: default_scale,
            seed: 0xF1605,
            dim: default_dim,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args.get(i + 1);
            match (flag, value) {
                ("--scale", Some(v)) => options.scale = parse_or_die(v, flag),
                ("--seed", Some(v)) => options.seed = parse_or_die(v, flag),
                ("--dim", Some(v)) => options.dim = parse_or_die(v, flag),
                ("--help", _) | ("-h", _) => {
                    eprintln!("usage: [--scale <f64>] [--seed <u64>] [--dim <usize>]");
                    std::process::exit(0);
                }
                _ => {
                    eprintln!("unknown or incomplete flag: {flag}");
                    eprintln!("usage: [--scale <f64>] [--seed <u64>] [--dim <usize>]");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        options
    }
}

fn parse_or_die<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {value:?} for {flag}");
        std::process::exit(2);
    })
}

/// Print a header line followed by aligned rows. Every row must have the
/// same arity as the header.
///
/// # Panics
///
/// Panics on ragged rows — a malformed table means a bug in the figure
/// binary.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "table rows must match the header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format a float with `digits` significant decimals.
pub fn fmt(value: impl Into<f64>, digits: usize) -> String {
    format!("{:.digits$}", value.into())
}

/// Render a small ASCII histogram of `samples` over `[lo, hi]` with
/// `bins` buckets, each row scaled to `width` characters.
pub fn ascii_histogram(samples: &[f64], lo: f64, hi: f64, bins: usize, width: usize) -> String {
    assert!(bins > 0 && hi > lo, "degenerate histogram range");
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let t = ((s - lo) / (hi - lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as f64) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let bucket_lo = lo + (hi - lo) * i as f64 / bins as f64;
        let bar = "#".repeat(c * width / max);
        out.push_str(&format!("{bucket_lo:6.1} | {bar} {c}\n"));
    }
    out
}

/// Mean of a sample slice (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Join display items with commas (for Venn-region printing).
pub fn join<T: Display>(items: impl IntoIterator<Item = T>) -> String {
    items
        .into_iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_all_samples() {
        let samples = vec![0.0, 0.5, 1.0, 1.5, 2.0];
        let h = ascii_histogram(&samples, 0.0, 2.0, 4, 10);
        // Sum the trailing counts per row.
        let total: usize = h
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "rows must match")]
    fn table_rejects_ragged_rows() {
        print_table("t", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
