//! Distance-kernel benchmark with a machine-readable JSON summary.
//!
//! Scores a Q-query × R-reference block of packed hypervectors through
//! every kernel shape the dispatch layer offers and reports, per
//! variant, how many pair-scores per second and how many GB of packed
//! words per second the inner loop sweeps:
//!
//! * `kernel_auto` — what `HDOMS_KERNEL=auto` resolves to on this box
//!   (`scalar`, `avx2`, or `avx512-vpopcntdq`),
//! * `dim` / `queries` / `references` — the scored block's shape,
//! * `pair_scores_per_s_scalar` / `pair_scores_per_s_simd` — the
//!   single-pair (1 × R tiled `dot_many`) scan throughput per variant,
//! * `pair_scores_per_s_blocked_scalar` /
//!   `pair_scores_per_s_blocked_simd` — the query-blocked
//!   (`score_block`) throughput per variant,
//! * `gb_per_s_scalar` / `gb_per_s_simd` / `gb_per_s_blocked_scalar` /
//!   `gb_per_s_blocked_simd` — the same four measurements as swept
//!   bandwidth (each pair-score reads both vectors' words once:
//!   `2 × ceil(dim/64) × 8` bytes),
//! * `speedup_simd` — SIMD single-pair vs scalar single-pair,
//! * `speedup_blocked` — the headline figure: blocked SIMD vs scalar
//!   single-pair (the acceptance bar is ≥ 2×, or a documented
//!   bandwidth-bound ceiling — see docs/BENCHMARKS.md),
//! * `results_identical` — whether every variant × shape produced the
//!   exact same Q × R score matrix (the correctness gate riding along
//!   with the measurement).
//!
//! The JSON object is printed as the **last line** of stdout so future
//! PRs can track the perf trajectory with `... | tail -1 | <tool>`.
//!
//! Usage: `kernel_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_hdc::kernels::KernelDispatch;
use hdoms_hdc::BinaryHypervector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Measurement repeats; the minimum is the figure (the work is
/// deterministic, so spread is scheduler noise).
const REPEATS: usize = 5;

/// One timed sweep of the full Q × R block. Returns seconds.
fn time_sweep(sweep: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        sweep();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let options = FigureOptions::parse(1.0, 2048);
    let dim = options.dim;
    let q_count = ((128.0 * options.scale) as usize).max(8);
    let r_count = ((2048.0 * options.scale) as usize).max(64);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let queries: Vec<BinaryHypervector> = (0..q_count)
        .map(|_| BinaryHypervector::random(&mut rng, dim))
        .collect();
    let references: Vec<BinaryHypervector> = (0..r_count)
        .map(|_| BinaryHypervector::random(&mut rng, dim))
        .collect();
    let query_words: Vec<&[u64]> = queries.iter().map(|q| q.words()).collect();
    let reference_words: Vec<&[u64]> = references.iter().map(|r| r.words()).collect();

    let scalar = KernelDispatch::scalar();
    let simd = KernelDispatch::simd();
    let pair_count = (q_count * r_count) as f64;
    // Each pair-score reads both vectors' packed words once.
    let bytes_per_pair = (2 * dim.div_ceil(64) * 8) as f64;

    let mut out = vec![0i64; q_count * r_count];
    let mut matrices: Vec<Vec<i64>> = Vec::new();
    let measure = |kernel: KernelDispatch, blocked: bool, out: &mut Vec<i64>| -> f64 {
        let secs = time_sweep(&mut || {
            if blocked {
                kernel.score_block(dim, &query_words, &reference_words, out);
            } else {
                // The single-pair shape every flat scan had before the
                // blocked kernel: one dot_many row per query.
                for (qi, query) in query_words.iter().enumerate() {
                    kernel.dot_many(
                        dim,
                        query,
                        &reference_words,
                        &mut out[qi * r_count..(qi + 1) * r_count],
                    );
                }
            }
            black_box(&*out);
        });
        secs
    };

    let mut rates = Vec::new();
    for (kernel, blocked) in [(scalar, false), (simd, false), (scalar, true), (simd, true)] {
        let secs = measure(kernel, blocked, &mut out);
        matrices.push(out.clone());
        rates.push(pair_count / secs);
        eprintln!(
            "{}{}: {:.0} pair-scores/s ({:.2} GB/s)",
            kernel.name(),
            if blocked { " blocked" } else { "" },
            pair_count / secs,
            pair_count * bytes_per_pair / secs / 1e9,
        );
    }
    let results_identical = matrices.windows(2).all(|w| w[0] == w[1]);

    let (scalar_rate, simd_rate, blocked_scalar_rate, blocked_simd_rate) =
        (rates[0], rates[1], rates[2], rates[3]);
    let gb = |rate: f64| rate * bytes_per_pair / 1e9;
    println!(
        concat!(
            "{{\"bench\":\"kernel\",\"kernel_auto\":\"{}\",",
            "\"dim\":{},\"queries\":{},\"references\":{},",
            "\"pair_scores_per_s_scalar\":{:.0},",
            "\"pair_scores_per_s_simd\":{:.0},",
            "\"pair_scores_per_s_blocked_scalar\":{:.0},",
            "\"pair_scores_per_s_blocked_simd\":{:.0},",
            "\"gb_per_s_scalar\":{:.3},\"gb_per_s_simd\":{:.3},",
            "\"gb_per_s_blocked_scalar\":{:.3},\"gb_per_s_blocked_simd\":{:.3},",
            "\"speedup_simd\":{:.3},\"speedup_blocked\":{:.3},",
            "\"results_identical\":{}}}"
        ),
        simd.name(),
        dim,
        q_count,
        r_count,
        scalar_rate,
        simd_rate,
        blocked_scalar_rate,
        blocked_simd_rate,
        gb(scalar_rate),
        gb(simd_rate),
        gb(blocked_scalar_rate),
        gb(blocked_simd_rate),
        simd_rate / scalar_rate,
        blocked_simd_rate / scalar_rate,
        results_identical,
    );
}
