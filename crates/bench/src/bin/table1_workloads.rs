//! Table 1 — OMS workload settings.
//!
//! Prints the paper's dataset sizes next to the synthetic stand-ins this
//! reproduction evaluates on, including the open-window candidate blow-up
//! that motivates the accelerator.
//!
//! Run: `cargo run --release -p hdoms-bench --bin table1_workloads`

use hdoms_bench::{fmt, print_table, FigureOptions};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::window::PrecursorWindow;

fn main() {
    let options = FigureOptions::parse(0.01, 8192);

    print_table(
        "Table 1: OMS workload settings (paper)",
        &["dataset", "query spectra", "reference spectra"],
        &[
            vec!["iPRG2012".into(), "16k".into(), "1M".into()],
            vec!["HEK293".into(), "47k".into(), "3M".into()],
        ],
    );

    let mut rows = Vec::new();
    for spec in [
        WorkloadSpec::iprg2012(options.scale),
        WorkloadSpec::hek293(options.scale),
    ] {
        let workload = SyntheticWorkload::generate(&spec, options.seed);
        let pre = Preprocessor::default();
        let (queries, rejected) = pre.run_batch(&workload.queries);
        let index = CandidateIndex::build(&workload.library);
        let open = PrecursorWindow::open_default();
        let standard = PrecursorWindow::standard_default();
        let open_mean = hdoms_bench::mean(
            &queries
                .iter()
                .map(|q| index.candidate_count(&open, q.neutral_mass) as f64)
                .collect::<Vec<_>>(),
        );
        let std_mean = hdoms_bench::mean(
            &queries
                .iter()
                .map(|q| index.candidate_count(&standard, q.neutral_mass) as f64)
                .collect::<Vec<_>>(),
        );
        rows.push(vec![
            spec.name.clone(),
            workload.queries.len().to_string(),
            workload.library.len().to_string(),
            rejected.to_string(),
            fmt(std_mean, 1),
            fmt(open_mean, 1),
            fmt(open_mean / std_mean.max(1.0), 1),
        ]);
    }
    print_table(
        &format!("Synthetic stand-ins at scale {}", options.scale),
        &[
            "workload",
            "queries",
            "library (incl. decoys)",
            "rejected queries",
            "std-window cands",
            "open-window cands",
            "blow-up",
        ],
        &rows,
    );
    println!(
        "\nThe open window multiplies per-query candidates by the blow-up \
         factor — the search-volume problem the MLC RRAM accelerator targets."
    );
}
