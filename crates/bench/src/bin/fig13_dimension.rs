//! Figure 13 — identifications vs HD dimension, ideal vs in-RRAM.
//!
//! Sweeps the hypervector dimension 8192 → 1024 with 3-bit ID
//! hypervectors and compares the ideal (software) pipeline against the
//! full simulated-RRAM accelerator at 3 bits per cell. The paper's
//! finding: lower dimensions lose identifications (less separability,
//! more noise sensitivity) and the RRAM curve tracks slightly below the
//! ideal one.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig13_dimension`

use hdoms_bench::{print_table, FigureOptions};
use hdoms_core::accelerator::AcceleratorConfig;
use hdoms_engine::Engine;
use hdoms_index::{IndexConfig, IndexedBackendKind};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms_oms::window::PrecursorWindow;
use std::sync::Arc;

fn main() {
    let options = FigureOptions::parse(0.02, 8192);
    let dims = [8192usize, 4096, 2048, 1024];

    let spec = WorkloadSpec::iprg2012(options.scale);
    let workload = SyntheticWorkload::generate(&spec, options.seed);

    let mut ideal_row = vec!["ideal (software)".to_owned()];
    let mut rram_row = vec!["in RRAM (3 bits/cell)".to_owned()];
    for &dim in &dims {
        eprintln!("dimension {dim}: software pipeline…");
        let mut config = PipelineConfig::default();
        config.exact.encoder.dim = dim;
        let ideal = OmsPipeline::new(config).run_exact(&workload);
        ideal_row.push(ideal.identifications().to_string());

        eprintln!("dimension {dim}: RRAM accelerator…");
        let mut accel_cfg = AcceleratorConfig::default();
        accel_cfg.encoder.dim = dim;
        let accel = Arc::new(Engine::from_library(
            &workload.library,
            IndexConfig {
                kind: IndexedBackendKind::Rram(accel_cfg),
                ..IndexConfig::default()
            },
        ));
        let (hw, _) = accel.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
        rram_row.push(hw.identifications().to_string());
    }

    let header: Vec<String> = std::iter::once("config".to_owned())
        .chain(dims.iter().map(|d| d.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Figure 13 ({}): identifications vs HD dimension, 3-bit IDs",
            spec.name
        ),
        &header_refs,
        &[ideal_row, rram_row],
    );
    println!(
        "\nShape checks vs the paper: identifications fall as the dimension \
         shrinks (limited separability), and the in-RRAM curve sits at or \
         slightly below the ideal one at every dimension — the HD encoding \
         absorbs the device errors."
    );
}
