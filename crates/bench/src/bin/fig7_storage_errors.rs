//! Figure 7 — bit error rate from hypervector storage over time.
//!
//! Packs random hypervectors into MLC cells (§4.3), lets the simulated
//! cells relax for 1 s / 30 min / 60 min / 1 day, reads them back and
//! reports the bit error rate for 1/2/3 bits per cell.
//!
//! Paper reference points (read off Fig. 7): at one day roughly 0.2 % /
//! 4 % / 12 % for 1/2/3 bits per cell, with most of the growth inside
//! the first hour.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig7_storage_errors`

use hdoms_bench::{fmt, print_table, FigureOptions};
use hdoms_hdc::BinaryHypervector;
use hdoms_rram::config::MlcConfig;
use hdoms_rram::storage::HypervectorStore;
use hdoms_rram::times;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = FigureOptions::parse(1.0, 8192);
    let hv_count = 32;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let hvs: Vec<BinaryHypervector> = (0..hv_count)
        .map(|_| BinaryHypervector::random(&mut rng, options.dim))
        .collect();

    let time_points = [
        ("after 1s", times::AFTER_1S),
        ("30 min", times::AFTER_30MIN),
        ("60 min", times::AFTER_60MIN),
        ("1 day", times::AFTER_1DAY),
    ];

    let mut rows = Vec::new();
    for bits in 1..=3u8 {
        let store = HypervectorStore::program(MlcConfig::with_bits(bits), &hvs);
        let mut row = vec![format!("{bits} bit(s)/cell")];
        for (_, age) in time_points {
            let mut read_rng = StdRng::seed_from_u64(options.seed ^ (age as u64));
            let (_, stats) = store.read_all(age, &mut read_rng);
            row.push(format!("{}%", fmt(stats.bit_error_rate() * 100.0, 2)));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 7: storage bit error rate over time ({hv_count} hypervectors, D={})",
            options.dim
        ),
        &["cell config", "after 1s", "30 min", "60 min", "1 day"],
        &rows,
    );
    print_table(
        "Paper (Fig. 7, approximate read-off)",
        &["cell config", "after 1s", "30 min", "60 min", "1 day"],
        &[
            vec![
                "1 bit(s)/cell".into(),
                "~0%".into(),
                "~0.2%".into(),
                "~0.3%".into(),
                "~0.5%".into(),
            ],
            vec![
                "2 bit(s)/cell".into(),
                "~1%".into(),
                "~2.5%".into(),
                "~3%".into(),
                "~4%".into(),
            ],
            vec![
                "3 bit(s)/cell".into(),
                "~5%".into(),
                "~9%".into(),
                "~10%".into(),
                "~12.5%".into(),
            ],
        ],
    );
    println!(
        "\nShape checks: error grows with bits/cell at every time point, most \
         relaxation happens before the 60-minute mark, and the 3-bit curve \
         lands near the ~10% tolerance budget of the HD algorithm (Fig. 11)."
    );
}
