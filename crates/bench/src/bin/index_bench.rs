//! Index lifecycle benchmark with a machine-readable JSON summary.
//!
//! Measures, on an iPRG2012-shaped workload:
//!
//! * `cold_build_s` — one-time library encoding (what every search paid
//!   before the persistent index existed),
//! * `warm_load_s` — decoding + checksum-verifying the serialised index
//!   (the copying path over the current format),
//! * `load_speedup` — cold build / warm load (the PR-1 acceptance bar
//!   was ≥ 5×),
//! * `load_ms_v1` — the v1 decoding path (real file open): read +
//!   checksum + materialise every hypervector from a v1 image,
//! * `load_ms_mapped` — the zero-copy path (real file open): map (or
//!   stream once into) a single backing buffer, decode shard metadata,
//!   and search the hypervector words in place,
//! * `mapped_speedup` — `load_ms_v1 / load_ms_mapped` (acceptance bar
//!   ≥ 5×; on a single-CPU bandwidth-bound host both paths reduce to
//!   image-sized memory sweeps and the ratio compresses toward ~2×),
//! * `rss_ratio_v1` / `rss_ratio_mapped` — peak live heap during the
//!   load divided by the index image size (the v1 path holds the file
//!   bytes *and* the decoded table at its peak; the mapped path holds
//!   shard metadata only when `mmap` is enabled — the default — since
//!   the words stay in the page cache),
//! * `qps_unsharded` / `qps_sharded` / `qps_mapped` — open-search
//!   throughput through the flat, shard-parallel, and mapped
//!   shard-parallel backends,
//! * `psms_identical` — whether every path (cold, warm flat, warm
//!   sharded, mapped) produced byte-identical hits.
//!
//! The JSON object is printed as the **last line** of stdout so future
//! PRs can track the perf trajectory with `... | tail -1 | <tool>`.
//!
//! Usage: `index_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::search::{candidate_lists, ExactBackendConfig, SimilarityBackend};
use hdoms_oms::window::PrecursorWindow;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const THREADS: usize = 8;

/// Tracks live heap bytes and the high-water mark, so a load's peak
/// resident cost is measurable without OS introspection.
struct PeakAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc(new_size.saturating_sub(layout.size()));
        if new_size < layout.size() {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_ALLOC: PeakAllocator = PeakAllocator;

/// Run `load`, returning (result, seconds, peak live-heap delta).
fn measure<T>(load: impl FnOnce() -> T) -> (T, f64, usize) {
    let live_before = LIVE.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);
    let start = Instant::now();
    let value = load();
    let seconds = start.elapsed().as_secs_f64();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(live_before);
    (value, seconds, peak)
}

fn main() {
    let options = FigureOptions::parse(0.01, 2048);
    let workload =
        SyntheticWorkload::generate(&WorkloadSpec::iprg2012(options.scale), options.seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = options.dim;
    let builder = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: THREADS,
    });

    // Cold build: the one-time library encoding.
    let start = Instant::now();
    let index = builder.from_library(&workload.library);
    let cold_build_s = start.elapsed().as_secs_f64();
    let bytes = index.to_bytes();
    let bytes_v1 = index.to_bytes_version(1);

    // Warm load (copying path, current format): decode + verify.
    let start = Instant::now();
    let loaded = LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid");
    let warm_load_s = start.elapsed().as_secs_f64();
    let load_speedup = cold_build_s / warm_load_s.max(1e-9);

    // v1 decoding path vs mapped zero-copy path, as real file opens
    // (both pay the I/O; the page cache is warm from the writes), with
    // peak-heap accounting. Best of three: the paths are deterministic,
    // so the minimum is the measurement and the spread is scheduler
    // noise. On a single-CPU host both paths are bound by how many
    // times they touch the image bytes (read + checksum + materialise
    // vs map + checksum), which caps the ratio near 2-3×; with worker
    // cores the materialisation cost of the v1 path grows relative to
    // the bandwidth-parallel mapped scan and the ratio widens.
    let dir = std::env::temp_dir();
    let v1_path = dir.join(format!("hdoms-index-bench-v1-{}.hdx", std::process::id()));
    let v2_path = dir.join(format!("hdoms-index-bench-v2-{}.hdx", std::process::id()));
    std::fs::write(&v1_path, &bytes_v1).expect("write v1 image");
    std::fs::write(&v2_path, &bytes).expect("write v2 image");
    let (mut v1_s, mut v1_peak) = (f64::INFINITY, usize::MAX);
    let (mut mapped_s, mut mapped_peak) = (f64::INFINITY, usize::MAX);
    let mut mapped = None;
    for _ in 0..3 {
        let (v1_loaded, s, peak) = measure(|| {
            hdoms_index::IndexReader::with_threads(THREADS)
                .open_with(&v1_path)
                .expect("v1 file loads")
        });
        (v1_s, v1_peak) = (v1_s.min(s), v1_peak.min(peak));
        drop(v1_loaded);
        let (m, s, peak) =
            measure(|| LibraryIndex::open_mapped(&v2_path, THREADS).expect("mapped open"));
        (mapped_s, mapped_peak) = (mapped_s.min(s), mapped_peak.min(peak));
        mapped = Some(m);
    }
    let mapped = mapped.expect("three rounds ran");
    assert!(mapped.shared_references().is_mapped());
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
    let load_ms_v1 = v1_s * 1e3;
    let load_ms_mapped = mapped_s * 1e3;
    let mapped_speedup = v1_s / mapped_s.max(1e-9);
    let rss_ratio_v1 = v1_peak as f64 / bytes_v1.len() as f64;
    let rss_ratio_mapped = mapped_peak as f64 / bytes.len() as f64;

    // Search throughput, flat vs sharded vs mapped, over identical
    // candidates.
    let pre = Preprocessor::default();
    let (queries, _) = pre.run_batch(&workload.queries);
    let cand_index = CandidateIndex::from_masses(loaded.entries().map(|e| (e.neutral_mass, e.id)));
    let cands = candidate_lists(&cand_index, &PrecursorWindow::open_default(), &queries);

    let flat = loaded.to_exact_backend(THREADS).expect("exact kind");
    let sharded = loaded.sharded_backend(THREADS).expect("exact kind");
    let mapped_sharded = mapped.sharded_backend(THREADS).expect("exact kind");

    let time_search = |backend: &dyn SimilarityBackend| {
        // One warm-up pass, then the timed pass.
        let _ = backend.search_batch(&queries, &cands);
        let start = Instant::now();
        let hits = backend.search_batch(&queries, &cands);
        (start.elapsed().as_secs_f64(), hits)
    };
    let (flat_s, flat_hits) = time_search(&flat);
    let (sharded_s, sharded_hits) = time_search(&sharded);
    let (mapped_search_s, mapped_hits) = time_search(&mapped_sharded);
    let qps_unsharded = queries.len() as f64 / flat_s.max(1e-9);
    let qps_sharded = queries.len() as f64 / sharded_s.max(1e-9);
    let qps_mapped = queries.len() as f64 / mapped_search_s.max(1e-9);
    let psms_identical = flat_hits == sharded_hits && flat_hits == mapped_hits;

    println!(
        "== index bench ({}, dim {}) ==",
        workload.spec.name, options.dim
    );
    println!("references        {:>10}", loaded.entry_count());
    println!("shards            {:>10}", loaded.shards().len());
    println!("index size        {:>10} bytes", bytes.len());
    println!("cold build        {cold_build_s:>10.3} s");
    println!("warm load         {warm_load_s:>10.3} s   ({load_speedup:.1}x faster)");
    println!("v1 decode load    {load_ms_v1:>10.3} ms  (peak heap {rss_ratio_v1:.2}x image)");
    println!(
        "mapped load       {load_ms_mapped:>10.3} ms  (peak heap {rss_ratio_mapped:.2}x image, \
         {mapped_speedup:.1}x faster than v1 decode)"
    );
    println!("search unsharded  {:>10.1} queries/s", qps_unsharded);
    println!("search sharded    {:>10.1} queries/s", qps_sharded);
    println!("search mapped     {:>10.1} queries/s", qps_mapped);
    println!("identical PSMs    {psms_identical:>10}");
    if load_speedup < 5.0 {
        eprintln!("WARNING: warm load is below the 5x acceptance bar");
    }
    if mapped_speedup < 5.0 {
        eprintln!("WARNING: mapped open is below the 5x-vs-v1-decode acceptance bar");
    }

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"index\",\"workload\":\"{}\",\"dim\":{},\"scale\":{},\"seed\":{},\
         \"references\":{},\"shards\":{},\"index_bytes\":{},\
         \"cold_build_s\":{:.6},\"warm_load_s\":{:.6},\"load_speedup\":{:.3},\
         \"load_ms_v1\":{:.3},\"load_ms_mapped\":{:.3},\"mapped_speedup\":{:.3},\
         \"rss_ratio_v1\":{:.3},\"rss_ratio_mapped\":{:.3},\
         \"qps_unsharded\":{:.3},\"qps_sharded\":{:.3},\"qps_mapped\":{:.3},\
         \"psms_identical\":{}}}",
        workload.spec.name,
        options.dim,
        options.scale,
        options.seed,
        loaded.entry_count(),
        loaded.shards().len(),
        bytes.len(),
        cold_build_s,
        warm_load_s,
        load_speedup,
        load_ms_v1,
        load_ms_mapped,
        mapped_speedup,
        rss_ratio_v1,
        rss_ratio_mapped,
        qps_unsharded,
        qps_sharded,
        qps_mapped,
        psms_identical,
    );
}
