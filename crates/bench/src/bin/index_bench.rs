//! Index lifecycle benchmark with a machine-readable JSON summary.
//!
//! Measures, on an iPRG2012-shaped workload:
//!
//! * `cold_build_s` — one-time library encoding (what every search paid
//!   before the persistent index existed),
//! * `warm_load_s` — decoding + checksum-verifying the serialised index,
//! * `load_speedup` — the ratio (the PR's acceptance bar is ≥ 5×),
//! * `qps_unsharded` / `qps_sharded` — open-search throughput through the
//!   flat backend vs the shard-parallel backend,
//! * `psms_identical` — whether the three paths (cold, warm flat, warm
//!   sharded) produced byte-identical PSMs.
//!
//! The JSON object is printed as the **last line** of stdout so future
//! PRs can track the perf trajectory with `... | tail -1 | <tool>`.
//!
//! Usage: `index_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::search::{candidate_lists, ExactBackendConfig, SimilarityBackend};
use hdoms_oms::window::PrecursorWindow;
use std::time::Instant;

const THREADS: usize = 8;

fn main() {
    let options = FigureOptions::parse(0.01, 2048);
    let workload =
        SyntheticWorkload::generate(&WorkloadSpec::iprg2012(options.scale), options.seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = options.dim;
    let builder = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: THREADS,
    });

    // Cold build: the one-time library encoding.
    let start = Instant::now();
    let index = builder.from_library(&workload.library);
    let cold_build_s = start.elapsed().as_secs_f64();
    let bytes = index.to_bytes();

    // Warm load: decode + verify.
    let start = Instant::now();
    let loaded = LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid");
    let warm_load_s = start.elapsed().as_secs_f64();
    let load_speedup = cold_build_s / warm_load_s.max(1e-9);

    // Search throughput, flat vs sharded, over identical candidates.
    let pre = Preprocessor::default();
    let (queries, _) = pre.run_batch(&workload.queries);
    let cand_index = CandidateIndex::from_masses(loaded.entries().map(|e| (e.neutral_mass, e.id)));
    let cands = candidate_lists(&cand_index, &PrecursorWindow::open_default(), &queries);

    let flat = loaded.to_exact_backend(THREADS).expect("exact kind");
    let sharded = loaded.sharded_backend(THREADS).expect("exact kind");

    let time_search = |backend: &dyn SimilarityBackend| {
        // One warm-up pass, then the timed pass.
        let _ = backend.search_batch(&queries, &cands);
        let start = Instant::now();
        let hits = backend.search_batch(&queries, &cands);
        (start.elapsed().as_secs_f64(), hits)
    };
    let (flat_s, flat_hits) = time_search(&flat);
    let (sharded_s, sharded_hits) = time_search(&sharded);
    let qps_unsharded = queries.len() as f64 / flat_s.max(1e-9);
    let qps_sharded = queries.len() as f64 / sharded_s.max(1e-9);
    let psms_identical = flat_hits == sharded_hits;

    println!(
        "== index bench ({}, dim {}) ==",
        workload.spec.name, options.dim
    );
    println!("references        {:>10}", loaded.entry_count());
    println!("shards            {:>10}", loaded.shards().len());
    println!("index size        {:>10} bytes", bytes.len());
    println!("cold build        {cold_build_s:>10.3} s");
    println!("warm load         {warm_load_s:>10.3} s   ({load_speedup:.1}x faster)");
    println!("search unsharded  {:>10.1} queries/s", qps_unsharded);
    println!("search sharded    {:>10.1} queries/s", qps_sharded);
    println!("identical PSMs    {psms_identical:>10}");
    if load_speedup < 5.0 {
        eprintln!("WARNING: warm load is below the 5x acceptance bar");
    }

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"index\",\"workload\":\"{}\",\"dim\":{},\"scale\":{},\"seed\":{},\
         \"references\":{},\"shards\":{},\"index_bytes\":{},\
         \"cold_build_s\":{:.6},\"warm_load_s\":{:.6},\"load_speedup\":{:.3},\
         \"qps_unsharded\":{:.3},\"qps_sharded\":{:.3},\"psms_identical\":{}}}",
        workload.spec.name,
        options.dim,
        options.scale,
        options.seed,
        loaded.entry_count(),
        loaded.shards().len(),
        bytes.len(),
        cold_build_s,
        warm_load_s,
        load_speedup,
        qps_unsharded,
        qps_sharded,
        psms_identical,
    );
}
