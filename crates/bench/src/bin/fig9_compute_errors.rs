//! Figure 9 — computation errors vs number of activated rows.
//!
//! (a) **Encoding errors**: fraction of output bits of the in-memory
//!     ID-Level encoding that differ from the software ground truth, for
//!     1/2/3 bits per cell across 20–120 activated rows.
//! (b) **Search errors**: normalised RMSE of in-array MVM outputs against
//!     the ideal MAC, using random multi-bit weight patterns (the chip
//!     characterisation protocol), same sweep.
//!
//! Paper reference: encoding errors rise from a few percent at 20 rows to
//! ~15/25/38 % at 120 rows for 1/2/3 bits per cell; search RMSE spans
//! ~0.02–0.12 with the same ordering.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig9_compute_errors`

use hdoms_bench::{fmt, mean, print_table, FigureOptions};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_hdc::encoder::EncoderConfig;
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_hdc::multibit::IdPrecision;
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_rram::array::{CrossbarArray, CrossbarConfig};
use hdoms_rram::config::MlcConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn precision_for(bits: u8) -> IdPrecision {
    match bits {
        1 => IdPrecision::Bits1,
        2 => IdPrecision::Bits2,
        _ => IdPrecision::Bits3,
    }
}

fn main() {
    let options = FigureOptions::parse(1.0, 2048);
    let activated_rows = [20usize, 40, 60, 80, 100, 120];

    // Spectra to encode for panel (a).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), options.seed);
    let pre = Preprocessor::default();
    let (binned, _) = pre.run_batch(&workload.queries[..24.min(workload.queries.len())]);

    // Panel (a): encoding bit error rate.
    let mut rows_a = Vec::new();
    for bits in 1..=3u8 {
        let mut row = vec![format!("{bits} bit(s)/cell")];
        for &act in &activated_rows {
            let encoder_cfg = EncoderConfig {
                dim: options.dim,
                q_levels: 16,
                id_precision: precision_for(bits),
                level_style: LevelStyle::Chunked { num_chunks: 64 },
                ..EncoderConfig::default()
            };
            let crossbar = CrossbarConfig {
                mlc: MlcConfig::with_bits(bits),
                activated_rows: act,
                ..CrossbarConfig::default()
            };
            let encoder = InMemoryEncoder::new(encoder_cfg, crossbar, options.seed ^ act as u64);
            let rates: Vec<f64> = binned
                .iter()
                .map(|b| encoder.encode_with_stats(b).1.bit_error_rate())
                .collect();
            row.push(format!("{}%", fmt(mean(&rates) * 100.0, 1)));
        }
        rows_a.push(row);
    }
    let header: Vec<String> = std::iter::once("cell config".to_owned())
        .chain(activated_rows.iter().map(|a| format!("{a} rows")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Figure 9a: in-memory encoding bit errors vs activated rows (D={}, {} spectra)",
            options.dim,
            binned.len()
        ),
        &header_refs,
        &rows_a,
    );

    // Panel (b): search (MVM) normalised RMSE on random multi-bit weights.
    let mut rows_b = Vec::new();
    let cols = 32usize;
    let pairs = 128usize;
    let trials = 24usize;
    for bits in 1..=3u8 {
        let mut row = vec![format!("{bits} bit(s)/cell")];
        for &act in &activated_rows {
            let config = CrossbarConfig {
                mlc: MlcConfig::with_bits(bits),
                rows: 256,
                cols,
                activated_rows: act,
                ..CrossbarConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(options.seed ^ (u64::from(bits) << 8) ^ act as u64);
            let weights: Vec<Vec<f64>> = (0..cols)
                .map(|_| (0..pairs).map(|_| rng.gen_range(-1.0..=1.0)).collect())
                .collect();
            let array = CrossbarArray::program(config, &weights, &mut rng);
            let mut se = 0.0f64;
            let mut n = 0usize;
            for _ in 0..trials {
                let inputs: Vec<f64> = (0..pairs)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect();
                let got = array.mvm(&inputs, &mut rng);
                let want = array.ideal_mvm(&inputs);
                for (g, w) in got.iter().zip(&want) {
                    // Normalise by the full-scale output (± pairs).
                    se += ((g - w) / pairs as f64).powi(2);
                    n += 1;
                }
            }
            row.push(fmt((se / n as f64).sqrt(), 4));
        }
        rows_b.push(row);
    }
    print_table(
        &format!(
            "Figure 9b: in-memory search normalised RMSE vs activated rows ({pairs}-pair columns)"
        ),
        &header_refs,
        &rows_b,
    );

    println!(
        "\nShape checks vs the paper: both panels grow with activated rows \
         (coarser ADC quantisation per MAC unit) and order 3 > 2 > 1 bits \
         per cell (intermediate conductance levels are the least stable). \
         The paper operates at 64 rows with 8-level cells — 16x the 4-row \
         drive of the prior MLC CIM macro [Li et al. 2022] (see \
         ablation_rows)."
    );
}
