//! Library-scale benchmark: streaming index builds over synthetic
//! scaled libraries, measured where the in-memory builder stops being an
//! option.
//!
//! For each requested library size the bench generates a
//! [`ScaledLibrary`] (deterministic peak-permutation + intensity
//! augmentation over the `tiny` preset), streams it straight into a
//! `.hdx` image via [`StreamingIndexBuilder::build_from_iter`] — the
//! library is never materialised — and reports:
//!
//! * `build_ms` — wall-clock of the streaming build (generate + encode
//!   + spill + assemble),
//! * `peak_heap_bytes` — live-heap high-water during the build, from
//!   the counting global allocator (the bound the spill threshold buys),
//! * `peak_rss_bytes` — the process `VmHWM` after the build (0 where
//!   `/proc/self/status` is unavailable; monotonic across scales, so
//!   read it per scale in ascending order),
//! * `index_bytes` — the finished image size,
//! * `mapped_open_ms` — zero-copy [`LibraryIndex::open_mapped`] time
//!   (best of three): opens must not scale with the payload,
//! * `qps` / `qps_prefilter` — open-search throughput through the
//!   mapped shard-parallel engine, without and with the sketch
//!   prefilter cascade — the first bench where the cascade runs over an
//!   index that can meaningfully exceed RAM.
//!
//! `--smoke true` turns the run into a CI gate: it asserts the
//! streaming build's peak heap — net of the fixed encoder item
//! memories, which both build paths hold identically — stays **below
//! the encoded payload** (counted, not eyeballed; the side tables are
//! ~400 bytes/reference, so use `--dim` ≥ 4096 for the payload to
//! dominate) and that the mapped open + search produce hits. `--verify true` additionally
//! rebuilds the **smallest** scale with the in-memory builder and
//! asserts the two images are byte-identical.
//!
//! The JSON object is printed as the **last line** of stdout.
//!
//! Usage: `scale_bench [--scales <n1,n2,..>] [--dim <usize>]
//!         [--seed <u64>] [--threads <usize>] [--spill-threshold <usize>]
//!         [--smoke true] [--verify true]`

use hdoms_engine::Engine;
use hdoms_index::{
    IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex, StreamingConfig,
    StreamingIndexBuilder,
};
use hdoms_ms::dataset::{ScaledLibrary, ScaledLibrarySpec, SyntheticWorkload, WorkloadSpec};
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_prefilter::{PrefilterConfig, DEFAULT_TOP_K};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// FDR threshold for the throughput searches.
const FDR: f64 = 0.01;

/// Tracks live heap bytes and the high-water mark, so the streaming
/// build's peak residency is measurable without OS introspection.
struct PeakAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc(new_size.saturating_sub(layout.size()));
        if new_size < layout.size() {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_ALLOC: PeakAllocator = PeakAllocator;

/// Run `f`, returning (result, seconds, peak live-heap delta).
fn measure<T>(f: impl FnOnce() -> T) -> (T, f64, usize) {
    let live_before = LIVE.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);
    let start = Instant::now();
    let value = f();
    let seconds = start.elapsed().as_secs_f64();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(live_before);
    (value, seconds, peak)
}

/// The process peak resident set (`VmHWM`) in bytes, or 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

struct Options {
    scales: Vec<usize>,
    dim: usize,
    seed: u64,
    threads: usize,
    spill_threshold: usize,
    smoke: bool,
    verify: bool,
}

const USAGE: &str = "usage: scale_bench [--scales <n1,n2,..>] [--dim <usize>] \
                     [--seed <u64>] [--threads <usize>] [--spill-threshold <usize>] \
                     [--smoke true|false] [--verify true|false]";

fn parse_or_die<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

fn parse_options() -> Options {
    let mut options = Options {
        scales: vec![2_000, 10_000],
        dim: 8192,
        seed: 0xF1605,
        threads: 8,
        spill_threshold: 4096,
        smoke: false,
        verify: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match (flag, value) {
            ("--scales", Some(v)) => {
                options.scales = v
                    .split(',')
                    .map(|part| parse_or_die(part.trim(), flag))
                    .collect();
            }
            ("--dim", Some(v)) => options.dim = parse_or_die(v, flag),
            ("--seed", Some(v)) => options.seed = parse_or_die(v, flag),
            ("--threads", Some(v)) => options.threads = parse_or_die(v, flag),
            ("--spill-threshold", Some(v)) => options.spill_threshold = parse_or_die(v, flag),
            ("--smoke", Some(v)) => options.smoke = parse_or_die(v, flag),
            ("--verify", Some(v)) => options.verify = parse_or_die(v, flag),
            ("--help", _) | ("-h", _) => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            _ => {
                eprintln!("unknown or incomplete flag: {flag}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if options.scales.is_empty() || options.scales.contains(&0) {
        eprintln!("--scales needs positive library sizes\n{USAGE}");
        std::process::exit(2);
    }
    options.scales.sort_unstable();
    options
}

struct ScaleRow {
    references: usize,
    factor: usize,
    build_ms: f64,
    peak_heap_bytes: usize,
    peak_rss_bytes: u64,
    index_bytes: u64,
    mapped_open_ms: f64,
    qps: f64,
    qps_prefilter: f64,
}

fn main() {
    let options = parse_options();
    let base = WorkloadSpec::tiny();
    let base_entries = base.library_spectra();
    // Queries come from the base workload: every scaled library contains
    // the base entries verbatim (variant 0), so base queries stay
    // matchable at every factor.
    let queries = SyntheticWorkload::generate(&base, options.seed).queries;

    let index_config = |dim: usize| {
        let mut exact = ExactBackendConfig::default();
        exact.encoder.dim = dim;
        IndexConfig {
            kind: IndexedBackendKind::Exact(exact),
            entries_per_shard: 1024,
            threads: options.threads,
        }
    };

    println!(
        "== scale bench (dim {}, spill threshold {}, threads {}) ==",
        options.dim, options.spill_threshold, options.threads
    );

    // The query-side encoder (item memories ~ num_bins × dim bytes) is a
    // fixed cost every build path pays regardless of library size.
    // Measure its live footprint once so the smoke bound covers only the
    // marginal, library-dependent heap.
    let encoder_live = {
        let before = LIVE.load(Ordering::Relaxed);
        let IndexedBackendKind::Exact(exact) = index_config(options.dim).kind else {
            unreachable!("scale bench builds exact indexes");
        };
        let encoder = hdoms_hdc::encoder::IdLevelEncoder::new(exact.encoder);
        let live = LIVE.load(Ordering::Relaxed).saturating_sub(before);
        drop(encoder);
        live
    };

    let dir = std::env::temp_dir();
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut verified = None;
    for (i, &scale) in options.scales.iter().enumerate() {
        let factor = scale.div_ceil(base_entries);
        let library = ScaledLibrary::new(ScaledLibrarySpec {
            base: base.clone(),
            factor,
            seed: options.seed,
        });
        let references = library.len();
        let path: PathBuf = dir.join(format!(
            "hdoms-scale-bench-{}-{references}.hdx",
            std::process::id()
        ));

        // Streaming build straight from the generator.
        let (report, build_s, build_peak) = measure(|| {
            StreamingIndexBuilder::build_from_iter(
                StreamingConfig {
                    index: index_config(options.dim),
                    spill_threshold: options.spill_threshold,
                },
                &path,
                library.iter(),
            )
            .expect("streaming build")
        });
        let rss = peak_rss_bytes();
        let index_bytes = std::fs::metadata(&path).expect("streamed image").len();
        let payload = report.spilled_bytes as usize;

        // Mapped open, best of three.
        let mut mapped_s = f64::INFINITY;
        for _ in 0..3 {
            let (mapped, s, _) =
                measure(|| LibraryIndex::open_mapped(&path, options.threads).expect("mapped open"));
            mapped_s = mapped_s.min(s);
            drop(mapped);
        }

        // Throughput through the mapped shard-parallel engine, with and
        // without the sketch prefilter cascade.
        let mapped = LibraryIndex::open_mapped(&path, options.threads).expect("mapped open");
        let engine =
            Arc::new(Engine::from_index(mapped, options.threads).expect("engine from index"));
        let time_search = |config: PrefilterConfig| {
            let run = || {
                engine
                    .search_with_workers_opts(
                        &queries,
                        PrecursorWindow::open_default(),
                        FDR,
                        options.threads,
                        Some(config),
                    )
                    .expect("sharded index-backed engine accepts any prefilter")
            };
            let _ = run(); // warm-up
            let start = Instant::now();
            let (outcome, _) = run();
            (
                queries.len() as f64 / start.elapsed().as_secs_f64().max(1e-9),
                outcome,
            )
        };
        let (qps, outcome) = time_search(PrefilterConfig::Off);
        let (qps_prefilter, outcome_prefilter) = time_search(PrefilterConfig::TopK(DEFAULT_TOP_K));
        drop(engine);
        std::fs::remove_file(&path).ok();

        if options.smoke {
            let marginal = build_peak.saturating_sub(encoder_live);
            assert!(
                marginal < payload,
                "streaming build marginal peak heap {marginal} (raw {build_peak}, encoder \
                 {encoder_live}) not below the {payload}-byte encoded payload at \
                 {references} references (raise --dim so the payload dominates the \
                 ~400-byte/reference side tables)"
            );
            assert!(
                !outcome.accepted.is_empty(),
                "mapped search over {references} references produced no accepted PSMs"
            );
            assert!(
                !outcome_prefilter.accepted.is_empty(),
                "prefiltered search over {references} references produced no accepted PSMs"
            );
        }
        if options.verify && i == 0 {
            // Differential gate at the smallest scale: the streaming
            // image must be byte-identical to the in-memory build.
            let streamed = {
                let rebuilt_path = dir.join(format!(
                    "hdoms-scale-bench-verify-{}-{references}.hdx",
                    std::process::id()
                ));
                let rebuilt = StreamingIndexBuilder::build_from_iter(
                    StreamingConfig {
                        index: index_config(options.dim),
                        spill_threshold: options.spill_threshold,
                    },
                    &rebuilt_path,
                    library.iter(),
                )
                .map(|_| std::fs::read(&rebuilt_path).expect("read streamed image"));
                std::fs::remove_file(&rebuilt_path).ok();
                rebuilt.expect("streaming rebuild")
            };
            let in_memory = IndexBuilder::new(index_config(options.dim))
                .from_library(&library.materialize())
                .to_bytes();
            assert!(
                streamed == in_memory,
                "streaming and in-memory builds diverged at {references} references"
            );
            verified = Some(true);
        }

        println!(
            "scale {references:>9} (factor {factor:>5}): build {:>8.1} ms, peak heap \
             {:>6.1} MiB, rss {:>6.1} MiB, image {:>6.1} MiB, mapped open {:>6.2} ms, \
             {:>7.1} qps ({:>7.1} prefiltered)",
            build_s * 1e3,
            build_peak as f64 / (1 << 20) as f64,
            rss as f64 / (1 << 20) as f64,
            index_bytes as f64 / (1 << 20) as f64,
            mapped_s * 1e3,
            qps,
            qps_prefilter,
        );
        rows.push(ScaleRow {
            references,
            factor,
            build_ms: build_s * 1e3,
            peak_heap_bytes: build_peak,
            peak_rss_bytes: rss,
            index_bytes,
            mapped_open_ms: mapped_s * 1e3,
            qps,
            qps_prefilter,
        });
    }

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    let scales_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"references\":{},\"factor\":{},\"build_ms\":{:.3},\
                 \"peak_heap_bytes\":{},\"peak_rss_bytes\":{},\"index_bytes\":{},\
                 \"mapped_open_ms\":{:.3},\"qps\":{:.3},\"qps_prefilter\":{:.3}}}",
                r.references,
                r.factor,
                r.build_ms,
                r.peak_heap_bytes,
                r.peak_rss_bytes,
                r.index_bytes,
                r.mapped_open_ms,
                r.qps,
                r.qps_prefilter,
            )
        })
        .collect();
    println!(
        "{{\"bench\":\"scale\",\"dim\":{},\"seed\":{},\"threads\":{},\
         \"spill_threshold\":{},\"smoke\":{},\"verified\":{},\"scales\":[{}]}}",
        options.dim,
        options.seed,
        options.threads,
        options.spill_threshold,
        options.smoke,
        verified.unwrap_or(false),
        scales_json.join(","),
    );
}
