//! Two-stage cascade benchmark: recall@K and candidate-scan reduction
//! of the sketch prefilter against the exhaustive exact scan.
//!
//! Runs the same query batch through one warm engine twice per preset —
//! `--prefilter off` (the reference) and `--prefilter k=N` (the
//! cascade) — and reports, for `tiny` and `iprg2012`:
//!
//! * `recall_at_k` — fraction of the reference run's **accepted** PSMs
//!   (query → reference assignments passing 1% FDR) the cascade
//!   reproduces identically; this is the identification-preservation
//!   recall the ANN-SoLo cascade literature reports,
//! * `best_hit_agreement` — the stricter all-PSM agreement (every
//!   best hit, accepted or not, including the near-threshold ones the
//!   FDR filter discards),
//! * `reduction` — precursor-window candidates generated divided by
//!   candidates forwarded to the exact scan (`candidates_pre /
//!   candidates_post` from the batch receipt),
//! * `speedup` — reference batch wall-clock over cascade wall-clock
//!   (best of three each; includes the sketch stage's own cost),
//! * `score_speedup` — the same ratio over the **scoring stage** only
//!   (the stage the cascade targets; query encoding and candidate
//!   generation are identical either way and dilute the batch ratio),
//! * `ids_off` / `ids_k` — identifications at 1% FDR with the cascade
//!   off and on (the cascade must not move the FDR-level id count by
//!   more than 2%),
//! * `psms_identical` — whether the two PSM tables are byte-identical
//!   (guaranteed on `tiny`, where every precursor window fits inside K
//!   and the narrowing stage passes candidates through untouched).
//!
//! Acceptance (asserted, exit code 101 on failure): on the iPRG2012
//! preset at the default K the cascade keeps `recall_at_k ≥ 0.99`,
//! reduces the exact-scan volume by ≥ 3×, and preserves the 1% FDR id
//! count within 2%; on `tiny` the tables are identical.
//!
//! The JSON object is printed as the **last line** of stdout so future
//! PRs can track the trajectory with `... | tail -1 | <tool>`.
//!
//! Usage: `prefilter_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_engine::{BatchReceipt, Engine};
use hdoms_index::{IndexConfig, IndexedBackendKind};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::pipeline::PipelineOutcome;
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_prefilter::{PrefilterConfig, DEFAULT_TOP_K};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 8;
const REPEATS: usize = 3;
const FDR: f64 = 0.01;

/// One preset's measurements, reference vs cascade.
struct PresetReport {
    name: String,
    queries: usize,
    references: usize,
    recall_at_k: f64,
    best_hit_agreement: f64,
    reduction: f64,
    speedup: f64,
    score_speedup: f64,
    sketch_ms: f64,
    candidates_pre: usize,
    candidates_post: usize,
    ids_off: usize,
    ids_k: usize,
    psms_identical: bool,
}

/// Best-of-`REPEATS` run of one batch under one prefilter config.
fn run(
    engine: &Arc<Engine>,
    queries: &[hdoms_ms::spectrum::Spectrum],
    config: PrefilterConfig,
) -> (PipelineOutcome, BatchReceipt, f64) {
    let mut best = f64::INFINITY;
    let mut kept = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let (outcome, receipt) = engine
            .search_with_workers_opts(
                queries,
                PrecursorWindow::open_default(),
                FDR,
                THREADS,
                Some(config),
            )
            .expect("sharded index-backed engine accepts any prefilter");
        let seconds = start.elapsed().as_secs_f64();
        if seconds < best {
            best = seconds;
        }
        kept = Some((outcome, receipt));
    }
    let (outcome, receipt) = kept.expect("REPEATS >= 1");
    (outcome, receipt, best)
}

fn measure(spec: &WorkloadSpec, seed: u64, dim: usize, k: usize) -> PresetReport {
    let workload = SyntheticWorkload::generate(spec, seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = dim;
    let engine = Arc::new(Engine::from_library(
        &workload.library,
        IndexConfig {
            kind: IndexedBackendKind::Exact(exact),
            threads: THREADS,
            ..IndexConfig::default()
        },
    ));

    let (off, off_receipt, off_s) = run(&engine, &workload.queries, PrefilterConfig::Off);
    let (topk, topk_receipt, topk_s) = run(&engine, &workload.queries, PrefilterConfig::TopK(k));

    // The receipts' accounting invariant: off scans the full windows.
    assert_eq!(off_receipt.candidates_pre, off_receipt.candidates_post);

    // recall@K over identifications: of the reference run's accepted
    // (1% FDR) PSMs, how many does the cascade reproduce exactly (same
    // query → same reference)? Near-threshold best hits the FDR filter
    // discards are tracked separately as `best_hit_agreement`.
    let accepted = off.accepted_query_ids();
    let reference: HashMap<u32, u32> = off
        .psms
        .iter()
        .map(|p| (p.query_id, p.reference_id))
        .collect();
    let topk_by_query: HashMap<u32, u32> = topk
        .psms
        .iter()
        .map(|p| (p.query_id, p.reference_id))
        .collect();
    let preserved = accepted
        .iter()
        .filter(|q| topk_by_query.get(q) == reference.get(q))
        .count();
    let recall_at_k = if accepted.is_empty() {
        1.0
    } else {
        preserved as f64 / accepted.len() as f64
    };
    let agreed = topk
        .psms
        .iter()
        .filter(|p| reference.get(&p.query_id) == Some(&p.reference_id))
        .count();
    let best_hit_agreement = if reference.is_empty() {
        1.0
    } else {
        agreed as f64 / reference.len() as f64
    };

    let reduction =
        topk_receipt.candidates_pre as f64 / (topk_receipt.candidates_post as f64).max(1.0);

    PresetReport {
        name: spec.name.clone(),
        queries: workload.queries.len(),
        references: workload.library.len(),
        recall_at_k,
        best_hit_agreement,
        reduction,
        speedup: off_s / topk_s.max(1e-9),
        // The sharded backend runs the sketch stage inside scoring, so
        // the cascade's score_ms already pays for its own narrowing.
        score_speedup: off_receipt.stages.score_ms / topk_receipt.stages.score_ms.max(1e-9),
        sketch_ms: topk_receipt.sketch_ms,
        candidates_pre: topk_receipt.candidates_pre,
        candidates_post: topk_receipt.candidates_post,
        ids_off: off.identifications(),
        ids_k: topk.identifications(),
        psms_identical: off.psms == topk.psms,
    }
}

fn print_report(r: &PresetReport, k: usize) {
    println!(
        "-- {} ({} queries, {} references) --",
        r.name, r.queries, r.references
    );
    println!("recall@{k}         {:>10.4}", r.recall_at_k);
    println!("best-hit agree    {:>10.4}", r.best_hit_agreement);
    println!(
        "scan reduction    {:>10.2}x  ({} -> {} candidates)",
        r.reduction, r.candidates_pre, r.candidates_post,
    );
    println!(
        "batch speedup     {:>10.2}x  (sketch stage {:.2} ms)",
        r.speedup, r.sketch_ms
    );
    println!("score speedup     {:>10.2}x", r.score_speedup);
    println!(
        "ids @1% FDR       {:>6} off / {:<6} k={k}",
        r.ids_off, r.ids_k
    );
    println!("identical PSMs    {:>10}", r.psms_identical);
}

fn main() {
    let options = FigureOptions::parse(0.02, 8192);
    let k = DEFAULT_TOP_K;
    println!(
        "== prefilter bench (dim {}, K {k}, scale {}) ==",
        options.dim, options.scale
    );

    let tiny = measure(&WorkloadSpec::tiny(), options.seed, options.dim, k);
    print_report(&tiny, k);
    let iprg = measure(
        &WorkloadSpec::iprg2012(options.scale),
        options.seed,
        options.dim,
        k,
    );
    print_report(&iprg, k);

    // Acceptance bars (ISSUE 8): the cascade is only worth shipping if
    // it is near-lossless while skipping most of the exact scan.
    assert!(
        tiny.psms_identical,
        "tiny windows fit inside K={k}; the cascade must pass them through untouched"
    );
    assert!(
        iprg.recall_at_k >= 0.99,
        "recall@{k} {:.4} below the 0.99 acceptance bar",
        iprg.recall_at_k
    );
    assert!(
        iprg.reduction >= 3.0,
        "candidate-scan reduction {:.2}x below the 3x acceptance bar",
        iprg.reduction
    );
    let fdr_tolerance = ((iprg.ids_off as f64) * 0.02).ceil().max(1.0) as usize;
    assert!(
        iprg.ids_k.abs_diff(iprg.ids_off) <= fdr_tolerance,
        "1% FDR ids moved {} -> {} (tolerance {})",
        iprg.ids_off,
        iprg.ids_k,
        fdr_tolerance
    );

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"prefilter\",\"dim\":{},\"scale\":{},\"seed\":{},\"k\":{k},\
         \"tiny_psms_identical\":{},\
         \"recall_at_k\":{:.4},\"best_hit_agreement\":{:.4},\
         \"reduction\":{:.3},\"speedup\":{:.3},\"score_speedup\":{:.3},\
         \"sketch_ms\":{:.3},\"candidates_pre\":{},\"candidates_post\":{},\
         \"ids_off\":{},\"ids_k\":{}}}",
        options.dim,
        options.scale,
        options.seed,
        tiny.psms_identical,
        iprg.recall_at_k,
        iprg.best_hit_agreement,
        iprg.reduction,
        iprg.speedup,
        iprg.score_speedup,
        iprg.sketch_ms,
        iprg.candidates_pre,
        iprg.candidates_post,
        iprg.ids_off,
        iprg.ids_k,
    );
}
