//! §5.2.2 / §4.2.1 ablations — throughput vs activated rows and chunked
//! vs bit-serial encoding.
//!
//! Quantifies two design claims:
//!
//! 1. "our design can activate up to 64 rows with 8-level RRAM,
//!    indicating a 16× increase in throughput" over the prior MLC CIM
//!    macro (4 rows, 3 levels) [Li et al., JSSC 2022];
//! 2. the chunked level-hypervector scheme (§4.2.1) turns bit-serial
//!    encoding into MVM-style encoding, cutting cycles by `D / chunks`.
//!
//! Run: `cargo run --release -p hdoms-bench --bin ablation_rows`

use hdoms_bench::{fmt, print_table, FigureOptions};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_core::perf::{paper, RramModel};
use hdoms_hdc::encoder::EncoderConfig;
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_rram::array::CrossbarConfig;

fn main() {
    let options = FigureOptions::parse(1.0, 8192);

    // Claim 1: per-array MAC throughput scales with activated rows.
    let mut rows = Vec::new();
    for act in [4usize, 16, 32, 64, 128] {
        let model = RramModel {
            activated_rows: act as f64,
            ..RramModel::default()
        };
        rows.push(vec![
            act.to_string(),
            fmt(model.macs_per_tile_cycle(), 0),
            format!("{}x", fmt(model.throughput_vs(4.0), 1)),
        ]);
    }
    print_table(
        "Ablation: per-array throughput vs activated rows (256 columns)",
        &[
            "activated rows",
            "MACs per cycle",
            "vs Li et al. 2022 (4 rows)",
        ],
        &rows,
    );
    println!(
        "paper claim: 64 rows / 4 rows = {}x throughput  (with 8-level vs \
         3-level cells additionally tripling storage density)",
        paper::THROUGHPUT_VS_LI2022
    );

    // Claim 2: chunked vs bit-serial encoding cycles.
    let peaks = 100usize;
    let mut rows = Vec::new();
    for (label, style) in [
        ("bit-serial (conventional)", LevelStyle::Random),
        (
            "chunked, 512 chunks",
            LevelStyle::Chunked { num_chunks: 512 },
        ),
        (
            "chunked, 256 chunks",
            LevelStyle::Chunked { num_chunks: 256 },
        ),
        (
            "chunked, 128 chunks (paper)",
            LevelStyle::Chunked { num_chunks: 128 },
        ),
        ("chunked, 64 chunks", LevelStyle::Chunked { num_chunks: 64 }),
    ] {
        let encoder = InMemoryEncoder::new(
            EncoderConfig {
                dim: options.dim,
                level_style: style,
                ..EncoderConfig::default()
            },
            CrossbarConfig::default(),
            options.seed,
        );
        let cycles = encoder.cycles_for(peaks);
        rows.push(vec![
            label.to_owned(),
            cycles.to_string(),
            format!(
                "{}x",
                fmt(
                    options.dim as f64 / cycles as f64 * (peaks as f64 / 32.0).ceil(),
                    1
                )
            ),
        ]);
    }
    print_table(
        &format!(
            "Ablation: encoding cycles per spectrum (D={}, {peaks} peaks, 64 activated rows)",
            options.dim
        ),
        &[
            "level-hypervector scheme",
            "cycles",
            "speedup vs bit-serial",
        ],
        &rows,
    );
    println!(
        "\nFewer chunks cut encoding cycles proportionally; the floor is set \
         by Q (chunks must be at least 2Q for the level similarity structure, \
         §4.2.1). Quality impact is negligible — see the hdoms-hdc encoder \
         tests and EXPERIMENTS.md."
    );
}
