//! Serve-path throughput benchmark with a machine-readable JSON summary.
//!
//! Measures, on an iPRG2012-shaped workload, what the serving layer
//! actually buys:
//!
//! * `residency_s` — one-time cost of making an index resident
//!   (load-from-bytes + warm backend reconstruction), paid per *process*
//!   instead of per *search*,
//! * `qps_batch_full` / `qps_batch_16` / `qps_batch_1` — served queries
//!   per second with the whole query set as one batch, 16-query batches,
//!   and single-query (interactive) batches, all against the same warm
//!   resident index,
//! * `mean_latency_ms_batch_1` — mean per-request latency in the
//!   interactive regime,
//! * `qps_session_16` — streaming-session throughput: 16-query batches
//!   submitted through one session and FDR-finalized once at the end
//!   (the cross-batch FDR mode),
//! * `qps_clients_{1,4,16}` / `wait_p50_ms_clients_{1,4,16}` /
//!   `wait_p99_ms_clients_{1,4,16}` / `shed_rate_clients_{1,4,16}` —
//!   contention scenarios: N concurrent clients hammer 16-query batches
//!   through the shared scheduler (bounded queue, fair round-robin,
//!   admission control); reported per scenario are aggregate served
//!   queries per second, the p50/p99 scheduler queue wait, and the
//!   fraction of batches shed with the structured `busy`/`deadline`
//!   errors,
//! * `hist_wait_p50_ms_clients_{1,4,16}` /
//!   `hist_wait_p99_ms_clients_{1,4,16}` — the same wait percentiles
//!   read back from the server registry's `hdoms_queue_wait_ms`
//!   log₂-bucket histogram (reported as bucket upper bounds); the
//!   bench asserts these land within one bucket of the exact
//!   Vec-of-samples percentiles, so the cheap always-on readout is
//!   continuously validated against ground truth,
//! * `p99_interactive_under_batch_ms` / `p99_interactive_flat_ms` —
//!   the mixed-tier storm: batch clients saturate a deliberately small
//!   worker pool while an interactive probe fires single-spectrum
//!   queries; p99 probe latency is measured once with the probe on the
//!   `interactive` tier (weighted priority) and once on the `batch`
//!   tier (flat fairness). The bench asserts the tiered p99 is
//!   strictly lower while the batch side keeps every worker busy,
//! * `coalesce_ratio` — interactive requests per engine batch when
//!   four clients fire inside a `--coalesce-window-ms` window
//!   (requests ÷ batches; > 1 means cross-request coalescing merged
//!   work),
//! * `evictions_total` / `reloads_total` — shard-LRU eviction against
//!   a mapped index squeezed to half its resident footprint; the bench
//!   asserts the budget holds and the post-eviction rows are
//!   byte-identical to the pre-eviction rows,
//! * `shards_touched` / `candidates_scored` — the per-batch stats the
//!   server reports, summed over the full-batch run,
//! * `psms_identical` — whether the served full-batch rows render to the
//!   exact table a local `search --index` produces,
//! * `session_identical` — whether the 16-batch streamed session's
//!   finalized rows render to that same single-run table (they must:
//!   that is the session contract).
//!
//! The JSON object is printed as the **last line** of stdout so the perf
//! trajectory can be tracked with `... | tail -1 | <tool>`.
//!
//! Usage: `serve_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_obs::metrics::bucket_of;
use hdoms_oms::psm::{render_table, render_table_rows};
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_serve::protocol::{QueryRequest, QuerySpectrum, WindowKind};
use hdoms_serve::scheduler::{SchedulerConfig, Tier};
use hdoms_serve::server::Server;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

const THREADS: usize = 8;

/// Queue bound for the contention scenarios: small enough that a
/// 16-client storm actually exercises admission control.
const CONTENTION_QUEUE_DEPTH: usize = 8;

/// One contention scenario's outcome.
struct Contention {
    qps: f64,
    wait_p50_ms: f64,
    wait_p99_ms: f64,
    /// The same percentiles as read from the registry's
    /// `hdoms_queue_wait_ms` histogram (bucket upper bounds), delta'd
    /// to this scenario — cross-checked below against the exact
    /// Vec-of-samples percentiles.
    hist_wait_p50_ms: f64,
    hist_wait_p99_ms: f64,
    shed_rate: f64,
}

/// `clients` concurrent connections each stream their share of the
/// query set as 16-query batches through `server`'s scheduler; batches
/// rejected with `busy`/`deadline` count as shed.
fn run_contention(server: &Server, spectra: &[QuerySpectrum], clients: usize) -> Contention {
    let wait_hist = server.registry().histogram(
        "hdoms_queue_wait_ms",
        "Scheduler queue wait per batch, admitted and deadline-shed alike",
    );
    let hist_baseline = wait_hist.snapshot();
    let per_client: Vec<Vec<&[QuerySpectrum]>> = (0..clients)
        .map(|c| {
            spectra
                .chunks(16)
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, chunk)| chunk)
                .collect()
        })
        .collect();
    let start = Instant::now();
    let outcomes: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|batches| {
                scope.spawn(move || {
                    let client = server.next_client_id();
                    let mut waits = Vec::new();
                    let mut served = 0usize;
                    let mut shed = 0usize;
                    for batch in batches {
                        let request = QueryRequest {
                            index: "bench".to_owned(),
                            window: WindowKind::Open,
                            fdr: 0.01,
                            tier: Tier::Batch,
                            prefilter: None,
                            spectra: batch.to_vec(),
                        };
                        match server.query_batch_as(client, &request) {
                            Ok(result) => {
                                waits.push(result.stats.wait_ms);
                                served += result.stats.queries;
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (waits, served, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut waits: Vec<f64> = outcomes.iter().flat_map(|(w, _, _)| w.clone()).collect();
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let served: usize = outcomes.iter().map(|(_, s, _)| s).sum();
    let shed: usize = outcomes.iter().map(|(_, _, s)| s).sum();
    let batches = waits.len() + shed;
    let percentile = |p: f64| -> f64 {
        if waits.is_empty() {
            return 0.0;
        }
        let idx = ((waits.len() as f64 - 1.0) * p).round() as usize;
        waits[idx]
    };
    let wait_p50_ms = percentile(0.50);
    let wait_p99_ms = percentile(0.99);

    // Read the same percentiles back from the registry histogram and
    // cross-check: the log₂-bucket readout must land within one bucket
    // of the exact sample percentiles (the two use slightly different
    // rank conventions, so adjacency — not equality — is the contract).
    let delta = wait_hist.snapshot().since(&hist_baseline);
    assert_eq!(
        delta.count(),
        waits.len() as u64,
        "registry histogram saw every admitted batch of this scenario"
    );
    let hist_wait_p50_ms = delta.p50_ms();
    let hist_wait_p99_ms = delta.p99_ms();
    if !waits.is_empty() {
        for (p, exact, hist) in [
            (50, wait_p50_ms, hist_wait_p50_ms),
            (99, wait_p99_ms, hist_wait_p99_ms),
        ] {
            let exact_bucket = bucket_of(exact) as i64;
            let hist_bucket = bucket_of(hist) as i64;
            assert!(
                (exact_bucket - hist_bucket).abs() <= 1,
                "p{p} disagrees beyond one bucket: exact {exact:.4} ms \
                 (bucket {exact_bucket}) vs histogram {hist:.4} ms \
                 (bucket {hist_bucket})"
            );
        }
    }
    Contention {
        qps: served as f64 / wall_s.max(1e-9),
        wait_p50_ms,
        wait_p99_ms,
        hist_wait_p50_ms,
        hist_wait_p99_ms,
        shed_rate: if batches == 0 {
            0.0
        } else {
            shed as f64 / batches as f64
        },
    }
}

/// Exact percentile over a sorted sample vector (nearest-rank).
fn percentile_of(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The mixed-tier storm's outcome for one probe tier.
struct Storm {
    p99_probe_ms: f64,
    probes: usize,
    batch_qps: f64,
}

/// Worker pool for the mixed-tier storm: small enough that the batch
/// clients keep every worker busy for the whole run.
const STORM_WORKERS: usize = 2;
const STORM_BATCH_CLIENTS: usize = 8;
const STORM_ROUNDS: usize = 6;
const STORM_BATCH_SIZE: usize = 64;

/// `STORM_BATCH_CLIENTS` batch-tier clients hammer `server` with
/// `STORM_BATCH_SIZE`-query batches while one probe client fires
/// single-spectrum queries on `probe_tier`, measuring the wall latency
/// each probe experiences under saturation.
fn run_tiered_storm(server: &Server, spectra: &[QuerySpectrum], probe_tier: Tier) -> Storm {
    let storm_batch: Vec<QuerySpectrum> = spectra
        .iter()
        .cycle()
        .take(STORM_BATCH_SIZE)
        .cloned()
        .collect();
    let request_as = |tier: Tier, spectra: Vec<QuerySpectrum>| QueryRequest {
        index: "bench".to_owned(),
        window: WindowKind::Open,
        fdr: 0.01,
        tier,
        prefilter: None,
        spectra,
    };
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let (batch_served, probe_latencies) = std::thread::scope(|scope| {
        let batch_handles: Vec<_> = (0..STORM_BATCH_CLIENTS)
            .map(|_| {
                let (done, storm_batch) = (&done, &storm_batch);
                scope.spawn(move || {
                    let client = server.next_client_id();
                    let mut served = 0usize;
                    for _ in 0..STORM_ROUNDS {
                        let request = request_as(Tier::Batch, storm_batch.clone());
                        served += server
                            .query_batch_as(client, &request)
                            .expect("storm batch")
                            .stats
                            .queries;
                    }
                    done.store(true, Ordering::Release);
                    served
                })
            })
            .collect();
        let probe = scope.spawn(|| {
            let client = server.next_client_id();
            let mut latencies = Vec::new();
            while !done.load(Ordering::Acquire) {
                let request = request_as(probe_tier, spectra[..1].to_vec());
                let sent = Instant::now();
                server
                    .query_batch_as(client, &request)
                    .expect("storm probe");
                latencies.push(sent.elapsed().as_secs_f64() * 1e3);
            }
            latencies
        });
        let served: usize = batch_handles.into_iter().map(|h| h.join().unwrap()).sum();
        (served, probe.join().unwrap())
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut latencies = probe_latencies;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Storm {
        p99_probe_ms: percentile_of(&latencies, 0.99),
        probes: latencies.len(),
        batch_qps: batch_served as f64 / wall_s.max(1e-9),
    }
}

fn main() {
    let options = FigureOptions::parse(0.01, 2048);
    let workload =
        SyntheticWorkload::generate(&WorkloadSpec::iprg2012(options.scale), options.seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = options.dim;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: THREADS,
    })
    .from_library(&workload.library);
    let bytes = index.to_bytes();

    // Residency: what one process start costs before the first answer.
    let start = Instant::now();
    let loaded = LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid");
    let server = Server::new(THREADS);
    server.add_index("bench", loaded).expect("servable index");
    let residency_s = start.elapsed().as_secs_f64();

    let spectra: Vec<QuerySpectrum> = workload
        .queries
        .iter()
        .map(QuerySpectrum::from_spectrum)
        .collect();
    let request_for = |batch: &[QuerySpectrum]| QueryRequest {
        index: "bench".to_owned(),
        window: WindowKind::Open,
        fdr: 0.01,
        tier: Tier::Batch,
        prefilter: None,
        spectra: batch.to_vec(),
    };

    // One warm-up pass, then timed passes per batching regime.
    let _ = server.query_batch(&request_for(&spectra)).expect("warm-up");
    let timed = |batch_size: usize| {
        let batches: Vec<&[QuerySpectrum]> = if batch_size == 0 {
            vec![&spectra[..]]
        } else {
            spectra.chunks(batch_size).collect()
        };
        let start = Instant::now();
        let mut latency_ms = 0.0;
        let mut shards = 0usize;
        let mut candidates = 0usize;
        let mut rows = Vec::new();
        for batch in &batches {
            let result = server.query_batch(&request_for(batch)).expect("batch");
            latency_ms += result.stats.latency_ms;
            shards += result.stats.shards_touched;
            candidates += result.stats.candidates_scored;
            rows.extend(result.rows);
        }
        let wall_s = start.elapsed().as_secs_f64();
        (
            spectra.len() as f64 / wall_s.max(1e-9),
            latency_ms / batches.len() as f64,
            shards,
            candidates,
            rows,
        )
    };
    let (qps_full, _, shards_touched, candidates_scored, served_rows) = timed(0);
    let (qps_16, _, _, _, _) = timed(16);
    let (qps_1, latency_1, _, _, _) = timed(1);

    // Streaming session: 16-query batches through one session, FDR
    // finalized once over everything (the cross-batch FDR mode).
    let session_start = Instant::now();
    let session = server
        .open_session("bench", WindowKind::Open.window())
        .expect("session opens");
    for batch in spectra.chunks(16) {
        server
            .submit_session(session, batch)
            .expect("session batch");
    }
    let session_result = server
        .finalize_session(session, 0.01)
        .expect("session finalize");
    let qps_session_16 = spectra.len() as f64 / session_start.elapsed().as_secs_f64().max(1e-9);

    // Contention: N concurrent clients against a scheduler with a
    // deliberately small queue, so 16 clients exercise admission
    // control. A separate resident server keeps the counters clean.
    let contention_server = Server::with_scheduler(
        THREADS,
        SchedulerConfig {
            workers: THREADS,
            queue_depth: CONTENTION_QUEUE_DEPTH,
            deadline_ms: 0,
            ..SchedulerConfig::default()
        },
    );
    contention_server
        .add_index(
            "bench",
            LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid"),
        )
        .expect("servable index");
    let contention_1 = run_contention(&contention_server, &spectra, 1);
    let contention_4 = run_contention(&contention_server, &spectra, 4);
    let contention_16 = run_contention(&contention_server, &spectra, 16);
    let sched = contention_server.stats();
    // Sanity on the reported accounting (the real in-flight bound is
    // asserted by the scheduler's own tests with external measurement).
    assert!(
        sched.peak_workers_busy <= THREADS,
        "scheduler accounting exceeded its worker budget"
    );

    // Mixed-tier storm: the same saturating batch load, probed once
    // with flat fairness (probe on the batch tier) and once with the
    // interactive tier's weighted priority. The priority probe must see
    // a strictly lower p99 while the batch side keeps the (small)
    // worker pool fully busy.
    let storm_server = Server::with_scheduler(
        THREADS,
        SchedulerConfig {
            workers: STORM_WORKERS,
            queue_depth: 64,
            deadline_ms: 0,
            ..SchedulerConfig::default()
        },
    );
    storm_server
        .add_index(
            "bench",
            LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid"),
        )
        .expect("servable index");
    let storm_flat = run_tiered_storm(&storm_server, &spectra, Tier::Batch);
    let storm_tiered = run_tiered_storm(&storm_server, &spectra, Tier::Interactive);
    let storm_stats = storm_server.stats();
    assert_eq!(
        storm_stats.peak_workers_busy, STORM_WORKERS,
        "the batch storm must saturate the worker pool"
    );
    assert!(
        storm_tiered.p99_probe_ms < storm_flat.p99_probe_ms,
        "tiering must cut interactive p99 under batch load: \
         tiered {:.2} ms vs flat {:.2} ms",
        storm_tiered.p99_probe_ms,
        storm_flat.p99_probe_ms
    );

    // Coalescing: four interactive clients fire 4-spectrum queries in
    // lockstep inside a small window; the server merges each volley
    // into fewer engine batches.
    let mut coalesce_server = Server::with_scheduler(THREADS, SchedulerConfig::default());
    coalesce_server.set_coalesce_window_ms(2);
    coalesce_server
        .add_index(
            "bench",
            LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid"),
        )
        .expect("servable index");
    const COALESCE_CLIENTS: usize = 4;
    const COALESCE_ROUNDS: usize = 25;
    let volley = Barrier::new(COALESCE_CLIENTS);
    std::thread::scope(|scope| {
        for _ in 0..COALESCE_CLIENTS {
            let (coalesce_server, volley, spectra) = (&coalesce_server, &volley, &spectra);
            scope.spawn(move || {
                let client = coalesce_server.next_client_id();
                for _ in 0..COALESCE_ROUNDS {
                    volley.wait();
                    let request = QueryRequest {
                        index: "bench".to_owned(),
                        window: WindowKind::Open,
                        fdr: 0.01,
                        tier: Tier::Interactive,
                        prefilter: None,
                        spectra: spectra[..4.min(spectra.len())].to_vec(),
                    };
                    coalesce_server
                        .query_batch_as(client, &request)
                        .expect("coalesced volley");
                }
            });
        }
    });
    let coalesce_stats = coalesce_server.stats();
    let coalesce_ratio =
        coalesce_stats.coalesced_requests as f64 / coalesce_stats.coalesced_batches.max(1) as f64;
    assert!(
        coalesce_ratio > 1.0,
        "lockstep volleys must coalesce: {} requests in {} batches",
        coalesce_stats.coalesced_requests,
        coalesce_stats.coalesced_batches
    );

    // Eviction: a mapped copy of the same index squeezed to half its
    // resident footprint. Cold shards leave, searches fault them back
    // in, and the rows never change.
    let evict_path =
        std::env::temp_dir().join(format!("hdoms-serve-bench-{}.hdx", std::process::id()));
    index.write(&evict_path).expect("index file");
    let mut evict_server = Server::new(THREADS);
    evict_server
        .load_index("bench", evict_path.to_str().expect("utf-8 temp path"))
        .expect("mapped index");
    std::fs::remove_file(&evict_path).ok();
    let evict_baseline = evict_server
        .query_batch(&request_for(&spectra))
        .expect("pre-eviction batch");
    let resident_full = evict_server.stats().resident_bytes;
    evict_server.set_memory_budget(resident_full / 2);
    let evict_after = evict_server
        .query_batch(&request_for(&spectra))
        .expect("post-eviction batch");
    assert_eq!(
        evict_baseline.rows, evict_after.rows,
        "eviction must never change served rows"
    );
    let evict_stats = evict_server.stats();
    assert!(evict_stats.evictions > 0, "the squeeze evicted shards");
    assert!(evict_stats.reloads > 0, "the re-query faulted shards back");
    assert!(
        evict_stats.resident_bytes <= resident_full / 2,
        "the memory budget holds after the batch"
    );

    // Fidelity: the served full batch and the streamed session must
    // both render the local engine's table.
    let engine = server.engine("bench").expect("resident engine");
    let (outcome, _) = engine.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
    let local_table = render_table(engine.peptides(), &outcome);
    let psms_identical = render_table_rows(&served_rows) == local_table;
    let session_identical = render_table_rows(&session_result.rows) == local_table;
    let resident = engine.index().expect("index-backed engine");

    println!(
        "== serve bench ({}, dim {}) ==",
        workload.spec.name, options.dim
    );
    println!("references          {:>10}", resident.entry_count());
    println!("shards              {:>10}", resident.shards().len());
    println!("queries             {:>10}", spectra.len());
    println!("residency           {residency_s:>10.3} s (load + warm backend, once per process)");
    println!("served, one batch   {qps_full:>10.1} queries/s");
    println!("served, batch=16    {qps_16:>10.1} queries/s");
    println!("served, batch=1     {qps_1:>10.1} queries/s   ({latency_1:.2} ms/request)");
    println!("session, batch=16   {qps_session_16:>10.1} queries/s (cross-batch FDR)");
    for (clients, c) in [(1, &contention_1), (4, &contention_4), (16, &contention_16)] {
        println!(
            "contended, {clients:>2} client{} {:>8.1} queries/s   (wait p50 {:.2} / p99 {:.2} ms, \
             histogram {:.2} / {:.2} ms, shed {:.1}%)",
            if clients == 1 { " " } else { "s" },
            c.qps,
            c.wait_p50_ms,
            c.wait_p99_ms,
            c.hist_wait_p50_ms,
            c.hist_wait_p99_ms,
            c.shed_rate * 100.0,
        );
    }
    println!(
        "scheduler           {:>10} peak busy of {} workers, {} busy-rejected, {} shed",
        sched.peak_workers_busy, sched.workers, sched.rejected_busy, sched.shed_deadline
    );
    println!(
        "tiered storm        p99 {:>7.2} ms interactive vs {:.2} ms flat \
         ({} / {} probes, batch {:.1} queries/s, {} workers saturated)",
        storm_tiered.p99_probe_ms,
        storm_flat.p99_probe_ms,
        storm_tiered.probes,
        storm_flat.probes,
        storm_tiered.batch_qps,
        STORM_WORKERS,
    );
    println!(
        "coalescing          {:>10.2} requests/batch ({} requests in {} engine batches)",
        coalesce_ratio, coalesce_stats.coalesced_requests, coalesce_stats.coalesced_batches,
    );
    println!(
        "eviction            {:>10} evictions, {} reloads, resident {} of {} bytes",
        evict_stats.evictions, evict_stats.reloads, evict_stats.resident_bytes, resident_full,
    );
    println!("shards touched      {shards_touched:>10}");
    println!("candidates scored   {candidates_scored:>10}");
    println!("identical PSMs      {psms_identical:>10}");
    println!("session identical   {session_identical:>10}");

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"serve\",\"workload\":\"{}\",\"dim\":{},\"scale\":{},\"seed\":{},\
         \"references\":{},\"shards\":{},\"queries\":{},\"residency_s\":{:.6},\
         \"qps_batch_full\":{:.3},\"qps_batch_16\":{:.3},\"qps_batch_1\":{:.3},\
         \"mean_latency_ms_batch_1\":{:.4},\"qps_session_16\":{:.3},\
         \"qps_clients_1\":{:.3},\"wait_p50_ms_clients_1\":{:.4},\
         \"wait_p99_ms_clients_1\":{:.4},\"hist_wait_p50_ms_clients_1\":{:.4},\
         \"hist_wait_p99_ms_clients_1\":{:.4},\"shed_rate_clients_1\":{:.4},\
         \"qps_clients_4\":{:.3},\"wait_p50_ms_clients_4\":{:.4},\
         \"wait_p99_ms_clients_4\":{:.4},\"hist_wait_p50_ms_clients_4\":{:.4},\
         \"hist_wait_p99_ms_clients_4\":{:.4},\"shed_rate_clients_4\":{:.4},\
         \"qps_clients_16\":{:.3},\"wait_p50_ms_clients_16\":{:.4},\
         \"wait_p99_ms_clients_16\":{:.4},\"hist_wait_p50_ms_clients_16\":{:.4},\
         \"hist_wait_p99_ms_clients_16\":{:.4},\"shed_rate_clients_16\":{:.4},\
         \"sched_workers\":{},\"sched_queue_depth\":{},\"sched_peak_workers_busy\":{},\
         \"sched_rejected_busy\":{},\"sched_shed_deadline\":{},\
         \"p99_interactive_under_batch_ms\":{:.4},\"p99_interactive_flat_ms\":{:.4},\
         \"storm_batch_qps\":{:.3},\"coalesce_ratio\":{:.4},\
         \"coalesced_requests\":{},\"coalesced_batches\":{},\
         \"evictions_total\":{},\"reloads_total\":{},\
         \"shards_touched\":{},\
         \"candidates_scored\":{},\"psms_identical\":{},\"session_identical\":{}}}",
        workload.spec.name,
        options.dim,
        options.scale,
        options.seed,
        resident.entry_count(),
        resident.shards().len(),
        spectra.len(),
        residency_s,
        qps_full,
        qps_16,
        qps_1,
        latency_1,
        qps_session_16,
        contention_1.qps,
        contention_1.wait_p50_ms,
        contention_1.wait_p99_ms,
        contention_1.hist_wait_p50_ms,
        contention_1.hist_wait_p99_ms,
        contention_1.shed_rate,
        contention_4.qps,
        contention_4.wait_p50_ms,
        contention_4.wait_p99_ms,
        contention_4.hist_wait_p50_ms,
        contention_4.hist_wait_p99_ms,
        contention_4.shed_rate,
        contention_16.qps,
        contention_16.wait_p50_ms,
        contention_16.wait_p99_ms,
        contention_16.hist_wait_p50_ms,
        contention_16.hist_wait_p99_ms,
        contention_16.shed_rate,
        sched.workers,
        sched.queue_depth,
        sched.peak_workers_busy,
        sched.rejected_busy,
        sched.shed_deadline,
        storm_tiered.p99_probe_ms,
        storm_flat.p99_probe_ms,
        storm_tiered.batch_qps,
        coalesce_ratio,
        coalesce_stats.coalesced_requests,
        coalesce_stats.coalesced_batches,
        evict_stats.evictions,
        evict_stats.reloads,
        shards_touched,
        candidates_scored,
        psms_identical,
        session_identical,
    );
}
