//! Serve-path throughput benchmark with a machine-readable JSON summary.
//!
//! Measures, on an iPRG2012-shaped workload, what the serving layer
//! actually buys:
//!
//! * `residency_s` — one-time cost of making an index resident
//!   (load-from-bytes + warm backend reconstruction), paid per *process*
//!   instead of per *search*,
//! * `qps_batch_full` / `qps_batch_16` / `qps_batch_1` — served queries
//!   per second with the whole query set as one batch, 16-query batches,
//!   and single-query (interactive) batches, all against the same warm
//!   resident index,
//! * `mean_latency_ms_batch_1` — mean per-request latency in the
//!   interactive regime,
//! * `qps_session_16` — streaming-session throughput: 16-query batches
//!   submitted through one session and FDR-finalized once at the end
//!   (the cross-batch FDR mode),
//! * `shards_touched` / `candidates_scored` — the per-batch stats the
//!   server reports, summed over the full-batch run,
//! * `psms_identical` — whether the served full-batch rows render to the
//!   exact table a local `search --index` produces,
//! * `session_identical` — whether the 16-batch streamed session's
//!   finalized rows render to that same single-run table (they must:
//!   that is the session contract).
//!
//! The JSON object is printed as the **last line** of stdout so the perf
//! trajectory can be tracked with `... | tail -1 | <tool>`.
//!
//! Usage: `serve_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::psm::{render_table, render_table_rows};
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_serve::protocol::{QueryRequest, QuerySpectrum, WindowKind};
use hdoms_serve::server::Server;
use std::time::Instant;

const THREADS: usize = 8;

fn main() {
    let options = FigureOptions::parse(0.01, 2048);
    let workload =
        SyntheticWorkload::generate(&WorkloadSpec::iprg2012(options.scale), options.seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = options.dim;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: THREADS,
    })
    .from_library(&workload.library);
    let bytes = index.to_bytes();

    // Residency: what one process start costs before the first answer.
    let start = Instant::now();
    let loaded = LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid");
    let server = Server::new(THREADS);
    server.add_index("bench", loaded).expect("servable index");
    let residency_s = start.elapsed().as_secs_f64();

    let spectra: Vec<QuerySpectrum> = workload
        .queries
        .iter()
        .map(QuerySpectrum::from_spectrum)
        .collect();
    let request_for = |batch: &[QuerySpectrum]| QueryRequest {
        index: "bench".to_owned(),
        window: WindowKind::Open,
        fdr: 0.01,
        spectra: batch.to_vec(),
    };

    // One warm-up pass, then timed passes per batching regime.
    let _ = server.query_batch(&request_for(&spectra)).expect("warm-up");
    let timed = |batch_size: usize| {
        let batches: Vec<&[QuerySpectrum]> = if batch_size == 0 {
            vec![&spectra[..]]
        } else {
            spectra.chunks(batch_size).collect()
        };
        let start = Instant::now();
        let mut latency_ms = 0.0;
        let mut shards = 0usize;
        let mut candidates = 0usize;
        let mut rows = Vec::new();
        for batch in &batches {
            let result = server.query_batch(&request_for(batch)).expect("batch");
            latency_ms += result.stats.latency_ms;
            shards += result.stats.shards_touched;
            candidates += result.stats.candidates_scored;
            rows.extend(result.rows);
        }
        let wall_s = start.elapsed().as_secs_f64();
        (
            spectra.len() as f64 / wall_s.max(1e-9),
            latency_ms / batches.len() as f64,
            shards,
            candidates,
            rows,
        )
    };
    let (qps_full, _, shards_touched, candidates_scored, served_rows) = timed(0);
    let (qps_16, _, _, _, _) = timed(16);
    let (qps_1, latency_1, _, _, _) = timed(1);

    // Streaming session: 16-query batches through one session, FDR
    // finalized once over everything (the cross-batch FDR mode).
    let session_start = Instant::now();
    let session = server
        .open_session("bench", WindowKind::Open.window())
        .expect("session opens");
    for batch in spectra.chunks(16) {
        server
            .submit_session(session, batch)
            .expect("session batch");
    }
    let session_result = server
        .finalize_session(session, 0.01)
        .expect("session finalize");
    let qps_session_16 = spectra.len() as f64 / session_start.elapsed().as_secs_f64().max(1e-9);

    // Fidelity: the served full batch and the streamed session must
    // both render the local engine's table.
    let engine = server.engine("bench").expect("resident engine");
    let (outcome, _) = engine.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
    let local_table = render_table(engine.peptides(), &outcome);
    let psms_identical = render_table_rows(&served_rows) == local_table;
    let session_identical = render_table_rows(&session_result.rows) == local_table;
    let resident = engine.index().expect("index-backed engine");

    println!(
        "== serve bench ({}, dim {}) ==",
        workload.spec.name, options.dim
    );
    println!("references          {:>10}", resident.entry_count());
    println!("shards              {:>10}", resident.shards().len());
    println!("queries             {:>10}", spectra.len());
    println!("residency           {residency_s:>10.3} s (load + warm backend, once per process)");
    println!("served, one batch   {qps_full:>10.1} queries/s");
    println!("served, batch=16    {qps_16:>10.1} queries/s");
    println!("served, batch=1     {qps_1:>10.1} queries/s   ({latency_1:.2} ms/request)");
    println!("session, batch=16   {qps_session_16:>10.1} queries/s (cross-batch FDR)");
    println!("shards touched      {shards_touched:>10}");
    println!("candidates scored   {candidates_scored:>10}");
    println!("identical PSMs      {psms_identical:>10}");
    println!("session identical   {session_identical:>10}");

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"serve\",\"workload\":\"{}\",\"dim\":{},\"scale\":{},\"seed\":{},\
         \"references\":{},\"shards\":{},\"queries\":{},\"residency_s\":{:.6},\
         \"qps_batch_full\":{:.3},\"qps_batch_16\":{:.3},\"qps_batch_1\":{:.3},\
         \"mean_latency_ms_batch_1\":{:.4},\"qps_session_16\":{:.3},\"shards_touched\":{},\
         \"candidates_scored\":{},\"psms_identical\":{},\"session_identical\":{}}}",
        workload.spec.name,
        options.dim,
        options.scale,
        options.seed,
        resident.entry_count(),
        resident.shards().len(),
        spectra.len(),
        residency_s,
        qps_full,
        qps_16,
        qps_1,
        latency_1,
        qps_session_16,
        shards_touched,
        candidates_scored,
        psms_identical,
        session_identical,
    );
}
