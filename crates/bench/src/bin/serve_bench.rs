//! Serve-path throughput benchmark with a machine-readable JSON summary.
//!
//! Measures, on an iPRG2012-shaped workload, what the serving layer
//! actually buys:
//!
//! * `residency_s` — one-time cost of making an index resident
//!   (load-from-bytes + warm backend reconstruction), paid per *process*
//!   instead of per *search*,
//! * `qps_batch_full` / `qps_batch_16` / `qps_batch_1` — served queries
//!   per second with the whole query set as one batch, 16-query batches,
//!   and single-query (interactive) batches, all against the same warm
//!   resident index,
//! * `mean_latency_ms_batch_1` — mean per-request latency in the
//!   interactive regime,
//! * `qps_session_16` — streaming-session throughput: 16-query batches
//!   submitted through one session and FDR-finalized once at the end
//!   (the cross-batch FDR mode),
//! * `qps_clients_{1,4,16}` / `wait_p50_ms_clients_{1,4,16}` /
//!   `wait_p99_ms_clients_{1,4,16}` / `shed_rate_clients_{1,4,16}` —
//!   contention scenarios: N concurrent clients hammer 16-query batches
//!   through the shared scheduler (bounded queue, fair round-robin,
//!   admission control); reported per scenario are aggregate served
//!   queries per second, the p50/p99 scheduler queue wait, and the
//!   fraction of batches shed with the structured `busy`/`deadline`
//!   errors,
//! * `hist_wait_p50_ms_clients_{1,4,16}` /
//!   `hist_wait_p99_ms_clients_{1,4,16}` — the same wait percentiles
//!   read back from the server registry's `hdoms_queue_wait_ms`
//!   log₂-bucket histogram (reported as bucket upper bounds); the
//!   bench asserts these land within one bucket of the exact
//!   Vec-of-samples percentiles, so the cheap always-on readout is
//!   continuously validated against ground truth,
//! * `shards_touched` / `candidates_scored` — the per-batch stats the
//!   server reports, summed over the full-batch run,
//! * `psms_identical` — whether the served full-batch rows render to the
//!   exact table a local `search --index` produces,
//! * `session_identical` — whether the 16-batch streamed session's
//!   finalized rows render to that same single-run table (they must:
//!   that is the session contract).
//!
//! The JSON object is printed as the **last line** of stdout so the perf
//! trajectory can be tracked with `... | tail -1 | <tool>`.
//!
//! Usage: `serve_bench [--scale <f64>] [--seed <u64>] [--dim <usize>]`

use hdoms_bench::FigureOptions;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_obs::metrics::bucket_of;
use hdoms_oms::psm::{render_table, render_table_rows};
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_serve::protocol::{QueryRequest, QuerySpectrum, WindowKind};
use hdoms_serve::scheduler::SchedulerConfig;
use hdoms_serve::server::Server;
use std::time::Instant;

const THREADS: usize = 8;

/// Queue bound for the contention scenarios: small enough that a
/// 16-client storm actually exercises admission control.
const CONTENTION_QUEUE_DEPTH: usize = 8;

/// One contention scenario's outcome.
struct Contention {
    qps: f64,
    wait_p50_ms: f64,
    wait_p99_ms: f64,
    /// The same percentiles as read from the registry's
    /// `hdoms_queue_wait_ms` histogram (bucket upper bounds), delta'd
    /// to this scenario — cross-checked below against the exact
    /// Vec-of-samples percentiles.
    hist_wait_p50_ms: f64,
    hist_wait_p99_ms: f64,
    shed_rate: f64,
}

/// `clients` concurrent connections each stream their share of the
/// query set as 16-query batches through `server`'s scheduler; batches
/// rejected with `busy`/`deadline` count as shed.
fn run_contention(server: &Server, spectra: &[QuerySpectrum], clients: usize) -> Contention {
    let wait_hist = server.registry().histogram(
        "hdoms_queue_wait_ms",
        "Scheduler queue wait per batch, admitted and deadline-shed alike",
    );
    let hist_baseline = wait_hist.snapshot();
    let per_client: Vec<Vec<&[QuerySpectrum]>> = (0..clients)
        .map(|c| {
            spectra
                .chunks(16)
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, chunk)| chunk)
                .collect()
        })
        .collect();
    let start = Instant::now();
    let outcomes: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|batches| {
                scope.spawn(move || {
                    let client = server.next_client_id();
                    let mut waits = Vec::new();
                    let mut served = 0usize;
                    let mut shed = 0usize;
                    for batch in batches {
                        let request = QueryRequest {
                            index: "bench".to_owned(),
                            window: WindowKind::Open,
                            fdr: 0.01,
                            prefilter: None,
                            spectra: batch.to_vec(),
                        };
                        match server.query_batch_as(client, &request) {
                            Ok(result) => {
                                waits.push(result.stats.wait_ms);
                                served += result.stats.queries;
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (waits, served, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut waits: Vec<f64> = outcomes.iter().flat_map(|(w, _, _)| w.clone()).collect();
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let served: usize = outcomes.iter().map(|(_, s, _)| s).sum();
    let shed: usize = outcomes.iter().map(|(_, _, s)| s).sum();
    let batches = waits.len() + shed;
    let percentile = |p: f64| -> f64 {
        if waits.is_empty() {
            return 0.0;
        }
        let idx = ((waits.len() as f64 - 1.0) * p).round() as usize;
        waits[idx]
    };
    let wait_p50_ms = percentile(0.50);
    let wait_p99_ms = percentile(0.99);

    // Read the same percentiles back from the registry histogram and
    // cross-check: the log₂-bucket readout must land within one bucket
    // of the exact sample percentiles (the two use slightly different
    // rank conventions, so adjacency — not equality — is the contract).
    let delta = wait_hist.snapshot().since(&hist_baseline);
    assert_eq!(
        delta.count(),
        waits.len() as u64,
        "registry histogram saw every admitted batch of this scenario"
    );
    let hist_wait_p50_ms = delta.p50_ms();
    let hist_wait_p99_ms = delta.p99_ms();
    if !waits.is_empty() {
        for (p, exact, hist) in [
            (50, wait_p50_ms, hist_wait_p50_ms),
            (99, wait_p99_ms, hist_wait_p99_ms),
        ] {
            let exact_bucket = bucket_of(exact) as i64;
            let hist_bucket = bucket_of(hist) as i64;
            assert!(
                (exact_bucket - hist_bucket).abs() <= 1,
                "p{p} disagrees beyond one bucket: exact {exact:.4} ms \
                 (bucket {exact_bucket}) vs histogram {hist:.4} ms \
                 (bucket {hist_bucket})"
            );
        }
    }
    Contention {
        qps: served as f64 / wall_s.max(1e-9),
        wait_p50_ms,
        wait_p99_ms,
        hist_wait_p50_ms,
        hist_wait_p99_ms,
        shed_rate: if batches == 0 {
            0.0
        } else {
            shed as f64 / batches as f64
        },
    }
}

fn main() {
    let options = FigureOptions::parse(0.01, 2048);
    let workload =
        SyntheticWorkload::generate(&WorkloadSpec::iprg2012(options.scale), options.seed);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = options.dim;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: THREADS,
    })
    .from_library(&workload.library);
    let bytes = index.to_bytes();

    // Residency: what one process start costs before the first answer.
    let start = Instant::now();
    let loaded = LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid");
    let server = Server::new(THREADS);
    server.add_index("bench", loaded).expect("servable index");
    let residency_s = start.elapsed().as_secs_f64();

    let spectra: Vec<QuerySpectrum> = workload
        .queries
        .iter()
        .map(QuerySpectrum::from_spectrum)
        .collect();
    let request_for = |batch: &[QuerySpectrum]| QueryRequest {
        index: "bench".to_owned(),
        window: WindowKind::Open,
        fdr: 0.01,
        prefilter: None,
        spectra: batch.to_vec(),
    };

    // One warm-up pass, then timed passes per batching regime.
    let _ = server.query_batch(&request_for(&spectra)).expect("warm-up");
    let timed = |batch_size: usize| {
        let batches: Vec<&[QuerySpectrum]> = if batch_size == 0 {
            vec![&spectra[..]]
        } else {
            spectra.chunks(batch_size).collect()
        };
        let start = Instant::now();
        let mut latency_ms = 0.0;
        let mut shards = 0usize;
        let mut candidates = 0usize;
        let mut rows = Vec::new();
        for batch in &batches {
            let result = server.query_batch(&request_for(batch)).expect("batch");
            latency_ms += result.stats.latency_ms;
            shards += result.stats.shards_touched;
            candidates += result.stats.candidates_scored;
            rows.extend(result.rows);
        }
        let wall_s = start.elapsed().as_secs_f64();
        (
            spectra.len() as f64 / wall_s.max(1e-9),
            latency_ms / batches.len() as f64,
            shards,
            candidates,
            rows,
        )
    };
    let (qps_full, _, shards_touched, candidates_scored, served_rows) = timed(0);
    let (qps_16, _, _, _, _) = timed(16);
    let (qps_1, latency_1, _, _, _) = timed(1);

    // Streaming session: 16-query batches through one session, FDR
    // finalized once over everything (the cross-batch FDR mode).
    let session_start = Instant::now();
    let session = server
        .open_session("bench", WindowKind::Open.window())
        .expect("session opens");
    for batch in spectra.chunks(16) {
        server
            .submit_session(session, batch)
            .expect("session batch");
    }
    let session_result = server
        .finalize_session(session, 0.01)
        .expect("session finalize");
    let qps_session_16 = spectra.len() as f64 / session_start.elapsed().as_secs_f64().max(1e-9);

    // Contention: N concurrent clients against a scheduler with a
    // deliberately small queue, so 16 clients exercise admission
    // control. A separate resident server keeps the counters clean.
    let contention_server = Server::with_scheduler(
        THREADS,
        SchedulerConfig {
            workers: THREADS,
            queue_depth: CONTENTION_QUEUE_DEPTH,
            deadline_ms: 0,
        },
    );
    contention_server
        .add_index(
            "bench",
            LibraryIndex::from_bytes(&bytes, THREADS).expect("index bytes are valid"),
        )
        .expect("servable index");
    let contention_1 = run_contention(&contention_server, &spectra, 1);
    let contention_4 = run_contention(&contention_server, &spectra, 4);
    let contention_16 = run_contention(&contention_server, &spectra, 16);
    let sched = contention_server.stats();
    // Sanity on the reported accounting (the real in-flight bound is
    // asserted by the scheduler's own tests with external measurement).
    assert!(
        sched.peak_workers_busy <= THREADS,
        "scheduler accounting exceeded its worker budget"
    );

    // Fidelity: the served full batch and the streamed session must
    // both render the local engine's table.
    let engine = server.engine("bench").expect("resident engine");
    let (outcome, _) = engine.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
    let local_table = render_table(engine.peptides(), &outcome);
    let psms_identical = render_table_rows(&served_rows) == local_table;
    let session_identical = render_table_rows(&session_result.rows) == local_table;
    let resident = engine.index().expect("index-backed engine");

    println!(
        "== serve bench ({}, dim {}) ==",
        workload.spec.name, options.dim
    );
    println!("references          {:>10}", resident.entry_count());
    println!("shards              {:>10}", resident.shards().len());
    println!("queries             {:>10}", spectra.len());
    println!("residency           {residency_s:>10.3} s (load + warm backend, once per process)");
    println!("served, one batch   {qps_full:>10.1} queries/s");
    println!("served, batch=16    {qps_16:>10.1} queries/s");
    println!("served, batch=1     {qps_1:>10.1} queries/s   ({latency_1:.2} ms/request)");
    println!("session, batch=16   {qps_session_16:>10.1} queries/s (cross-batch FDR)");
    for (clients, c) in [(1, &contention_1), (4, &contention_4), (16, &contention_16)] {
        println!(
            "contended, {clients:>2} client{} {:>8.1} queries/s   (wait p50 {:.2} / p99 {:.2} ms, \
             histogram {:.2} / {:.2} ms, shed {:.1}%)",
            if clients == 1 { " " } else { "s" },
            c.qps,
            c.wait_p50_ms,
            c.wait_p99_ms,
            c.hist_wait_p50_ms,
            c.hist_wait_p99_ms,
            c.shed_rate * 100.0,
        );
    }
    println!(
        "scheduler           {:>10} peak busy of {} workers, {} busy-rejected, {} shed",
        sched.peak_workers_busy, sched.workers, sched.rejected_busy, sched.shed_deadline
    );
    println!("shards touched      {shards_touched:>10}");
    println!("candidates scored   {candidates_scored:>10}");
    println!("identical PSMs      {psms_identical:>10}");
    println!("session identical   {session_identical:>10}");

    // Machine-readable trailer (hand-rolled: the workspace serde is a
    // no-op shim).
    println!(
        "{{\"bench\":\"serve\",\"workload\":\"{}\",\"dim\":{},\"scale\":{},\"seed\":{},\
         \"references\":{},\"shards\":{},\"queries\":{},\"residency_s\":{:.6},\
         \"qps_batch_full\":{:.3},\"qps_batch_16\":{:.3},\"qps_batch_1\":{:.3},\
         \"mean_latency_ms_batch_1\":{:.4},\"qps_session_16\":{:.3},\
         \"qps_clients_1\":{:.3},\"wait_p50_ms_clients_1\":{:.4},\
         \"wait_p99_ms_clients_1\":{:.4},\"hist_wait_p50_ms_clients_1\":{:.4},\
         \"hist_wait_p99_ms_clients_1\":{:.4},\"shed_rate_clients_1\":{:.4},\
         \"qps_clients_4\":{:.3},\"wait_p50_ms_clients_4\":{:.4},\
         \"wait_p99_ms_clients_4\":{:.4},\"hist_wait_p50_ms_clients_4\":{:.4},\
         \"hist_wait_p99_ms_clients_4\":{:.4},\"shed_rate_clients_4\":{:.4},\
         \"qps_clients_16\":{:.3},\"wait_p50_ms_clients_16\":{:.4},\
         \"wait_p99_ms_clients_16\":{:.4},\"hist_wait_p50_ms_clients_16\":{:.4},\
         \"hist_wait_p99_ms_clients_16\":{:.4},\"shed_rate_clients_16\":{:.4},\
         \"sched_workers\":{},\"sched_queue_depth\":{},\"sched_peak_workers_busy\":{},\
         \"sched_rejected_busy\":{},\"sched_shed_deadline\":{},\
         \"shards_touched\":{},\
         \"candidates_scored\":{},\"psms_identical\":{},\"session_identical\":{}}}",
        workload.spec.name,
        options.dim,
        options.scale,
        options.seed,
        resident.entry_count(),
        resident.shards().len(),
        spectra.len(),
        residency_s,
        qps_full,
        qps_16,
        qps_1,
        latency_1,
        qps_session_16,
        contention_1.qps,
        contention_1.wait_p50_ms,
        contention_1.wait_p99_ms,
        contention_1.hist_wait_p50_ms,
        contention_1.hist_wait_p99_ms,
        contention_1.shed_rate,
        contention_4.qps,
        contention_4.wait_p50_ms,
        contention_4.wait_p99_ms,
        contention_4.hist_wait_p50_ms,
        contention_4.hist_wait_p99_ms,
        contention_4.shed_rate,
        contention_16.qps,
        contention_16.wait_p50_ms,
        contention_16.wait_p99_ms,
        contention_16.hist_wait_p50_ms,
        contention_16.hist_wait_p99_ms,
        contention_16.shed_rate,
        sched.workers,
        sched.queue_depth,
        sched.peak_workers_busy,
        sched.rejected_busy,
        sched.shed_deadline,
        shards_touched,
        candidates_scored,
        psms_identical,
        session_identical,
    );
}
