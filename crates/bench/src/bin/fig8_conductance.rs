//! Figure 8 — conductance relaxation of 2/4/8-level cells.
//!
//! Samples the simulated device's conductance distribution for every
//! level of 1/2/3-bit cells at the four measurement times of the paper
//! and renders ASCII histograms (the paper's panels show the same data as
//! smoothed distributions over 0–50 µS).
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig8_conductance`

use hdoms_bench::{ascii_histogram, FigureOptions};
use hdoms_rram::config::MlcConfig;
use hdoms_rram::device::DeviceModel;
use hdoms_rram::levels::LevelMap;
use hdoms_rram::times;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = FigureOptions::parse(1.0, 8192);
    let samples_per_level = 400;
    let time_points = [
        ("during programming", 0.0),
        ("after 30 min", times::AFTER_30MIN),
        ("after 60 min", times::AFTER_60MIN),
        ("after 1 day", times::AFTER_1DAY),
    ];

    for bits in 1..=3u8 {
        let config = MlcConfig::with_bits(bits);
        let device = DeviceModel::new(config);
        let levels = LevelMap::new(&config);
        println!(
            "\n================ {} levels ({} bit(s)/cell) ================",
            config.levels(),
            bits
        );
        for (label, age) in time_points {
            let mut rng = StdRng::seed_from_u64(options.seed ^ (age as u64) ^ u64::from(bits));
            let mut pooled = Vec::with_capacity(config.levels() * samples_per_level);
            for level in 0..config.levels() {
                let target = levels.target(level);
                for _ in 0..samples_per_level {
                    pooled.push(device.sample_conductance(&mut rng, target, age));
                }
            }
            println!("\n-- {label} --");
            print!("{}", ascii_histogram(&pooled, 0.0, 55.0, 22, 48));
        }
    }
    println!(
        "\nShape checks vs the paper's Fig. 8: levels are crisply separated \
         during programming, spread with time (most within the first hour), \
         intermediate levels smear more than the extremes, and the 8-level \
         cell's distributions overlap visibly after one day while the 2-level \
         cell's remain well separated."
    );
}
