//! Figure 12 / §5.3.3 — speedup and energy-efficiency comparison.
//!
//! Evaluates the calibrated latency/energy model on the paper's two
//! workload shapes and prints modelled times, energies, speedups and
//! energy-efficiency factors next to the paper's reported values.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig12_energy`

use hdoms_bench::{fmt, print_table, FigureOptions};
use hdoms_core::perf::{paper, PerfReport, WorkloadShape};

fn main() {
    let _ = FigureOptions::parse(1.0, 8192);

    for (name, shape) in [
        ("iPRG2012", WorkloadShape::iprg2012_paper()),
        ("HEK293", WorkloadShape::hek293_paper()),
    ] {
        let report = PerfReport::generate(shape);
        let speedups = report.speedups();
        let eff = report.energy_efficiency();
        let rows: Vec<Vec<String>> = report
            .rows
            .iter()
            .zip(speedups.iter().zip(&eff))
            .map(|(row, ((_, s), (_, e)))| {
                vec![
                    row.tool.clone(),
                    fmt(row.time_s, 1),
                    fmt(row.energy_j, 1),
                    format!("{}x", fmt(*s, 2)),
                    format!("{}x", fmt(*e, 2)),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 12 model ({name})"),
            &[
                "tool",
                "time (s)",
                "energy (J)",
                "our speedup over it",
                "energy eff. vs ANN-SoLo CPU",
            ],
            &rows,
        );
    }

    print_table(
        "Paper-reported factors (iPRG2012, §5.3.3 + Fig. 12)",
        &["quantity", "paper", "model (iPRG2012)"],
        &{
            let report = PerfReport::generate(WorkloadShape::iprg2012_paper());
            let speedups = report.speedups();
            let eff = report.energy_efficiency();
            vec![
                vec![
                    "speedup vs HyperOMS (GPU)".into(),
                    format!("{}x", paper::SPEEDUP_VS_HYPEROMS_GPU),
                    format!("{}x", fmt(speedups[2].1, 2)),
                ],
                vec![
                    "speedup vs ANN-SoLo (GPU)".into(),
                    format!("{}x", paper::SPEEDUP_VS_ANNSOLO_GPU),
                    format!("{}x", fmt(speedups[1].1, 2)),
                ],
                vec![
                    "speedup vs ANN-SoLo (CPU)".into(),
                    format!("{}x", paper::SPEEDUP_VS_ANNSOLO_CPU),
                    format!("{}x", fmt(speedups[0].1, 2)),
                ],
                vec![
                    "energy eff.: ANN-SoLo GPU".into(),
                    format!("{}x", paper::ENERGY_ANNSOLO_GPU),
                    format!("{}x", fmt(eff[1].1, 2)),
                ],
                vec![
                    "energy eff.: HyperOMS GPU".into(),
                    format!("{}x", paper::ENERGY_HYPEROMS_GPU),
                    format!("{}x", fmt(eff[2].1, 2)),
                ],
                vec![
                    "energy eff.: this work".into(),
                    format!("{}x", paper::ENERGY_THIS_WORK),
                    format!("{}x", fmt(eff[3].1, 2)),
                ],
            ]
        },
    );
    println!(
        "\nShape checks: the ordering (this work > HyperOMS-GPU > ANN-SoLo-GPU \
         > ANN-SoLo-CPU in speed; 2-3 orders of magnitude energy advantage) \
         holds. The HyperOMS energy factor deviates from the paper's 5.44x \
         because power x time cannot jointly reproduce the paper's speedup \
         and energy numbers under any single-device power; see EXPERIMENTS.md."
    );
}
