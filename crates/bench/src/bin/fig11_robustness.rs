//! Figure 11 — HD robustness: identifications vs injected bit error rate.
//!
//! Sweeps bit error rates of 0.15 %–20 % injected into both the encoding
//! outputs (queries) and the stored reference hypervectors, for 1/2/3-bit
//! ID precision, on both workloads. The paper's findings: identifications
//! hold up to ~10 % BER, and multi-bit ID hypervectors beat binary ones
//! at every error level.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig11_robustness`

use hdoms_bench::{print_table, FigureOptions};
use hdoms_hdc::multibit::IdPrecision;
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms_oms::search::ExactBackend;

fn main() {
    let options = FigureOptions::parse(0.04, 8192);
    let bers = [0.0015f64, 0.01, 0.05, 0.10, 0.20];

    for spec in [
        WorkloadSpec::iprg2012(options.scale),
        WorkloadSpec::hek293(options.scale / 2.0),
    ] {
        let workload = SyntheticWorkload::generate(&spec, options.seed);
        let pipeline = OmsPipeline::new(PipelineConfig::default());
        let mut rows = Vec::new();
        for precision in IdPrecision::ALL {
            eprintln!(
                "[{}] encoding library at {} dims, {:?}…",
                spec.name, options.dim, precision
            );
            let mut config = pipeline.config().exact;
            config.encoder.dim = options.dim;
            config.encoder.id_precision = precision;
            config.preprocess = pipeline.config().preprocess;
            let clean = ExactBackend::build(&workload.library, config);
            let mut row = vec![format!("ID precision {} bit", precision.bits())];
            for &ber in &bers {
                // Average over independent error draws — a single draw's
                // identification count moves by a few percent because the
                // FDR threshold reacts to individual near-boundary decoys.
                let trials = 3u64;
                let total: usize = (0..trials)
                    .map(|t| {
                        let backend = clean.with_error_rates(ber, ber, options.seed ^ (0xbe4 + t));
                        pipeline.run(&workload, &backend).identifications()
                    })
                    .sum();
                row.push((total as f64 / trials as f64).round().to_string());
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("config".to_owned())
            .chain(bers.iter().map(|b| format!("{}% BER", b * 100.0)))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Figure 11 ({}): identifications vs bit error rate (D={})",
                spec.name, options.dim
            ),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\nShape checks vs the paper: identifications are nearly flat out to \
         ~10% BER (the abstract's error-tolerance claim) and fall off \
         sharply at 20%. The paper additionally reports multi-bit ID \
         hypervectors (§4.2.2) identifying noticeably more peptides than \
         binary ones; on this synthetic workload the multi-bit advantage is \
         within a few percent (see EXPERIMENTS.md for the analysis)."
    );
}
