//! Figure 10 — Venn diagram of identified peptides across tools.
//!
//! Runs the three search tools (this work on simulated MLC RRAM,
//! ANN-SoLo, HyperOMS) over both workloads and prints the Venn region
//! sizes of their identified-peptide sets. The paper's point: the
//! majority of identifications agree across tools, validating the
//! accelerator's results.
//!
//! Run: `cargo run --release -p hdoms-bench --bin fig10_venn`
//! (add `--scale 0.02` for a bigger workload)

use hdoms_baselines::annsolo::{AnnSoloBackend, AnnSoloConfig};
use hdoms_baselines::hyperoms::{HyperOmsBackend, HyperOmsConfig};
use hdoms_bench::{fmt, print_table, FigureOptions};
use hdoms_core::accelerator::AcceleratorConfig;
use hdoms_engine::Engine;
use hdoms_index::{IndexConfig, IndexedBackendKind};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms_oms::window::PrecursorWindow;
use std::collections::BTreeSet;
use std::sync::Arc;

fn main() {
    let options = FigureOptions::parse(0.01, 8192);

    for spec in [
        WorkloadSpec::iprg2012(options.scale),
        WorkloadSpec::hek293(options.scale / 2.0),
    ] {
        let workload = SyntheticWorkload::generate(&spec, options.seed);
        let pipeline = OmsPipeline::new(PipelineConfig::default());

        eprintln!("[{}] building this-work accelerator…", spec.name);
        let mut accel_cfg = AcceleratorConfig::default();
        accel_cfg.encoder.dim = options.dim;
        let ours = Arc::new(Engine::from_library(
            &workload.library,
            IndexConfig {
                kind: IndexedBackendKind::Rram(accel_cfg),
                ..IndexConfig::default()
            },
        ));

        eprintln!("[{}] building ANN-SoLo…", spec.name);
        let annsolo = AnnSoloBackend::build(&workload.library, AnnSoloConfig::default());

        eprintln!("[{}] building HyperOMS…", spec.name);
        let hyperoms = HyperOmsBackend::build(
            &workload.library,
            HyperOmsConfig {
                dim: options.dim,
                ..HyperOmsConfig::default()
            },
        );

        eprintln!("[{}] searching…", spec.name);
        let (ours_out, _) = ours.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
        let ann_out = pipeline.run(&workload, &annsolo);
        let hyp_out = pipeline.run(&workload, &hyperoms);

        let a = ours_out.identified_peptides(&workload.library);
        let b = ann_out.identified_peptides(&workload.library);
        let c = hyp_out.identified_peptides(&workload.library);

        let abc: BTreeSet<_> = a
            .intersection(&b)
            .filter(|p| c.contains(*p))
            .cloned()
            .collect();
        let ab = a.intersection(&b).filter(|p| !c.contains(*p)).count();
        let ac = a.intersection(&c).filter(|p| !b.contains(*p)).count();
        let bc = b.intersection(&c).filter(|p| !a.contains(*p)).count();
        let only_a = a
            .iter()
            .filter(|p| !b.contains(*p) && !c.contains(*p))
            .count();
        let only_b = b
            .iter()
            .filter(|p| !a.contains(*p) && !c.contains(*p))
            .count();
        let only_c = c
            .iter()
            .filter(|p| !a.contains(*p) && !b.contains(*p))
            .count();

        print_table(
            &format!("Figure 10 ({}): identified peptides per tool", spec.name),
            &["tool", "identifications", "peptides"],
            &[
                vec![
                    "This work (RRAM)".into(),
                    ours_out.identifications().to_string(),
                    a.len().to_string(),
                ],
                vec![
                    "ANN-SoLo".into(),
                    ann_out.identifications().to_string(),
                    b.len().to_string(),
                ],
                vec![
                    "HyperOMS".into(),
                    hyp_out.identifications().to_string(),
                    c.len().to_string(),
                ],
            ],
        );
        print_table(
            &format!("Figure 10 ({}): Venn regions", spec.name),
            &["region", "peptides"],
            &[
                vec!["all three".into(), abc.len().to_string()],
                vec!["ours ∩ ANN-SoLo only".into(), ab.to_string()],
                vec!["ours ∩ HyperOMS only".into(), ac.to_string()],
                vec!["ANN-SoLo ∩ HyperOMS only".into(), bc.to_string()],
                vec!["ours only".into(), only_a.to_string()],
                vec!["ANN-SoLo only".into(), only_b.to_string()],
                vec!["HyperOMS only".into(), only_c.to_string()],
            ],
        );
        let union = a
            .union(&b)
            .cloned()
            .collect::<BTreeSet<_>>()
            .union(&c)
            .count();
        println!(
            "core agreement: {} of {} peptides ({}%) identified by all three — \
             the paper's validity argument (\"the majority of the identified \
             peptides from our work align with those identified by other tools\").",
            abc.len(),
            union,
            fmt(abc.len() as f64 / union.max(1) as f64 * 100.0, 1),
        );
    }
}
