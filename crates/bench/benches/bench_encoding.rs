//! Criterion bench: ID-Level encoding — software and in-memory, by
//! dimension, ID precision and level-vector style.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_hdc::multibit::IdPrecision;
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::{BinnedSpectrum, Preprocessor};
use hdoms_rram::array::CrossbarConfig;
use std::hint::black_box;

fn sample_spectra(n: usize) -> Vec<BinnedSpectrum> {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
    let pre = Preprocessor::default();
    let (binned, _) = pre.run_batch(&workload.queries);
    binned.into_iter().cycle().take(n).collect()
}

fn software_encoding(c: &mut Criterion) {
    let spectra = sample_spectra(8);
    let mut group = c.benchmark_group("encode_software");
    for dim in [1024usize, 2048, 4096, 8192] {
        let encoder = IdLevelEncoder::new(EncoderConfig {
            dim,
            ..EncoderConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("dim", dim), &spectra, |b, spectra| {
            b.iter(|| {
                for s in spectra {
                    black_box(encoder.encode(s));
                }
            })
        });
    }
    group.finish();
}

fn encoding_by_precision(c: &mut Criterion) {
    let spectra = sample_spectra(8);
    let mut group = c.benchmark_group("encode_precision");
    for precision in IdPrecision::ALL {
        let encoder = IdLevelEncoder::new(EncoderConfig {
            dim: 2048,
            id_precision: precision,
            ..EncoderConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("bits", precision.bits()),
            &spectra,
            |b, spectra| {
                b.iter(|| {
                    for s in spectra {
                        black_box(encoder.encode(s));
                    }
                })
            },
        );
    }
    group.finish();
}

fn in_memory_encoding(c: &mut Criterion) {
    let spectra = sample_spectra(4);
    let mut group = c.benchmark_group("encode_in_memory");
    group.sample_size(10);
    for (label, style) in [
        ("chunked128", LevelStyle::Chunked { num_chunks: 128 }),
        ("bit_serial", LevelStyle::Random),
    ] {
        let encoder = InMemoryEncoder::new(
            EncoderConfig {
                dim: 2048,
                level_style: style,
                ..EncoderConfig::default()
            },
            CrossbarConfig::default(),
            11,
        );
        group.bench_with_input(BenchmarkId::new("style", label), &spectra, |b, spectra| {
            b.iter(|| {
                for s in spectra {
                    black_box(encoder.encode(s));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    software_encoding,
    encoding_by_precision,
    in_memory_encoding
);
criterion_main!(benches);
