//! Criterion bench: Hamming similarity search — raw distance, exact
//! top-1 over candidate sets, and the simulated in-memory search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdoms_core::search::InMemorySearch;
use hdoms_hdc::search::search_best;
use hdoms_hdc::similarity::hamming_distance;
use hdoms_hdc::BinaryHypervector;
use hdoms_rram::array::CrossbarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn refs(n: usize, dim: usize) -> Vec<BinaryHypervector> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|_| BinaryHypervector::random(&mut rng, dim))
        .collect()
}

fn raw_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming_distance");
    for dim in [1024usize, 8192, 65_536] {
        let r = refs(2, dim);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("dim", dim), &r, |b, r| {
            b.iter(|| black_box(hamming_distance(&r[0], &r[1])))
        });
    }
    group.finish();
}

fn exact_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_search_top1");
    for n in [1_000usize, 10_000] {
        let r = refs(n, 8192);
        let q = r[n / 2].clone();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("refs", n), &r, |b, r| {
            b.iter(|| black_box(search_best(&q, r, 0..r.len() as u32)))
        });
    }
    group.finish();
}

fn in_memory_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("in_memory_search");
    group.sample_size(20);
    let stored: Vec<Option<BinaryHypervector>> = refs(512, 8192).into_iter().map(Some).collect();
    let q = stored[7].clone().unwrap();
    for activated in [32usize, 64, 128] {
        let search = InMemorySearch::new(
            CrossbarConfig {
                activated_rows: activated,
                ..CrossbarConfig::default()
            },
            stored.clone(),
            9,
            1,
        );
        let candidates: Vec<u32> = (0..512).collect();
        group.bench_with_input(
            BenchmarkId::new("activated_rows", activated),
            &candidates,
            |b, candidates| b.iter(|| black_box(search.search_best(&q, 0, candidates))),
        );
    }
    group.finish();
}

criterion_group!(benches, raw_hamming, exact_search, in_memory_search);
criterion_main!(benches);
