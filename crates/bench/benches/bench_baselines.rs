//! Criterion bench: baseline scoring kernels vs the HD kernel — the
//! software-side cost asymmetry behind Fig. 12.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdoms_baselines::annsolo::{AnnSoloBackend, AnnSoloConfig};
use hdoms_baselines::bruteforce::BruteForceBackend;
use hdoms_baselines::hyperoms::{HyperOmsBackend, HyperOmsConfig};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::search::{candidate_lists, SimilarityBackend};
use hdoms_oms::window::PrecursorWindow;
use std::hint::black_box;

fn backend_comparison(c: &mut Criterion) {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 9);
    let pre = Preprocessor::default();
    let (queries, _) = pre.run_batch(&workload.queries);
    let index = CandidateIndex::build(&workload.library);
    let cands = candidate_lists(&index, &PrecursorWindow::open_default(), &queries);
    let total_pairs: u64 = cands.iter().map(|c| c.len() as u64).sum();

    let annsolo = AnnSoloBackend::build(
        &workload.library,
        AnnSoloConfig {
            threads: 1,
            ..AnnSoloConfig::default()
        },
    );
    let hyperoms = HyperOmsBackend::build(
        &workload.library,
        HyperOmsConfig {
            dim: 2048,
            threads: 1,
            ..HyperOmsConfig::default()
        },
    );
    let brute = BruteForceBackend::build(&workload.library, Default::default(), 1);

    let mut group = c.benchmark_group("baseline_search_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_pairs));
    group.bench_function("annsolo_shifted_dot", |b| {
        b.iter(|| black_box(annsolo.search_batch(&queries, &cands)))
    });
    group.bench_function("hyperoms_hamming_2048", |b| {
        b.iter(|| black_box(hyperoms.search_batch(&queries, &cands)))
    });
    group.bench_function("brute_cosine", |b| {
        b.iter(|| black_box(brute.search_batch(&queries, &cands)))
    });
    group.finish();
}

criterion_group!(benches, backend_comparison);
criterion_main!(benches);
