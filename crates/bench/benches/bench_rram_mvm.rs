//! Criterion bench: crossbar programming and analog MVM by cell precision
//! and activated-row count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoms_rram::array::{CrossbarArray, CrossbarConfig};
use hdoms_rram::config::MlcConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn weights(cols: usize, pairs: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..cols)
        .map(|_| (0..pairs).map(|_| rng.gen_range(-1.0..=1.0)).collect())
        .collect()
}

fn program_array(c: &mut Criterion) {
    let w = weights(256, 128);
    let mut group = c.benchmark_group("crossbar_program");
    group.sample_size(10);
    for bits in 1..=3u8 {
        let config = CrossbarConfig {
            mlc: MlcConfig::with_bits(bits),
            ..CrossbarConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("bits", bits), &w, |b, w| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(CrossbarArray::program(config, w, &mut rng))
            })
        });
    }
    group.finish();
}

fn mvm(c: &mut Criterion) {
    let w = weights(256, 128);
    let mut rng = StdRng::seed_from_u64(3);
    let inputs: Vec<f64> = (0..128)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    let mut group = c.benchmark_group("crossbar_mvm");
    for activated in [20usize, 64, 120] {
        let config = CrossbarConfig {
            activated_rows: activated,
            ..CrossbarConfig::default()
        };
        let array = CrossbarArray::program(config, &w, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("activated_rows", activated),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let mut noise_rng = StdRng::seed_from_u64(4);
                    black_box(array.mvm(inputs, &mut noise_rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, program_array, mvm);
criterion_main!(benches);
