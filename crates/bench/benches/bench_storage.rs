//! Criterion bench: MLC hypervector storage — packing/programming and
//! relaxed read-back by cell precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoms_hdc::BinaryHypervector;
use hdoms_rram::config::MlcConfig;
use hdoms_rram::storage::HypervectorStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn storage_roundtrip(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let hvs: Vec<BinaryHypervector> = (0..16)
        .map(|_| BinaryHypervector::random(&mut rng, 8192))
        .collect();

    let mut group = c.benchmark_group("storage");
    for bits in 1..=3u8 {
        group.bench_with_input(BenchmarkId::new("program_bits", bits), &hvs, |b, hvs| {
            b.iter(|| black_box(HypervectorStore::program(MlcConfig::with_bits(bits), hvs)))
        });
        let store = HypervectorStore::program(MlcConfig::with_bits(bits), &hvs);
        group.bench_with_input(
            BenchmarkId::new("read_all_bits", bits),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut read_rng = StdRng::seed_from_u64(14);
                    black_box(store.read_all(7200.0, &mut read_rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, storage_roundtrip);
criterion_main!(benches);
