//! Index lifecycle benchmarks: cold library encoding vs warm index load,
//! and unsharded vs sharded open search over the loaded index.
//!
//! The machine-readable counterpart (JSON summary, speedup assertions)
//! lives in `src/bin/index_bench.rs`; this harness tracks the same
//! quantities under criterion for local iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::search::{candidate_lists, ExactBackendConfig, SimilarityBackend};
use hdoms_oms::window::PrecursorWindow;
use std::hint::black_box;

const DIM: usize = 2048;
const THREADS: usize = 4;

fn config() -> IndexConfig {
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = DIM;
    IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 256,
        threads: THREADS,
    }
}

fn index_lifecycle(c: &mut Criterion) {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.005), 5);
    let builder = IndexBuilder::new(config());
    let bytes = builder.from_library(&workload.library).to_bytes();

    let mut group = c.benchmark_group("index_lifecycle");
    group.sample_size(10);
    group.bench_function("cold_build", |b| {
        b.iter(|| black_box(builder.from_library(&workload.library)))
    });
    group.bench_function("warm_load", |b| {
        b.iter(|| black_box(LibraryIndex::from_bytes(&bytes, THREADS).expect("valid")))
    });
    group.finish();
}

fn index_search(c: &mut Criterion) {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.005), 5);
    let index = IndexBuilder::new(config()).from_library(&workload.library);
    let flat = index.to_exact_backend(THREADS).expect("exact kind");
    let sharded = index.sharded_backend(THREADS).expect("exact kind");

    let pre = Preprocessor::default();
    let (queries, _) = pre.run_batch(&workload.queries);
    let cand_index = CandidateIndex::from_masses(index.entries().map(|e| (e.neutral_mass, e.id)));
    let cands = candidate_lists(&cand_index, &PrecursorWindow::open_default(), &queries);

    let mut group = c.benchmark_group("index_search");
    group.sample_size(10);
    group.bench_function("unsharded", |b| {
        b.iter(|| black_box(flat.search_batch(&queries, &cands)))
    });
    group.bench_function("sharded", |b| {
        b.iter(|| black_box(sharded.search_batch(&queries, &cands)))
    });
    // The interactive case: one query at a time, where shard-parallelism
    // is the only parallelism available.
    let one_query = &queries[..1];
    let one_cands = &cands[..1];
    group.bench_function("unsharded_single_query", |b| {
        b.iter(|| black_box(flat.search_batch(one_query, one_cands)))
    });
    group.bench_function("sharded_single_query", |b| {
        b.iter(|| black_box(sharded.search_batch(one_query, one_cands)))
    });
    group.finish();
}

criterion_group!(benches, index_lifecycle, index_search);
criterion_main!(benches);
