//! Criterion bench: end-to-end pipeline stages — preprocessing, candidate
//! indexing, FDR filtering, and a full exact-backend run.

use criterion::{criterion_group, criterion_main, Criterion};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::fdr::filter_fdr;
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms_oms::psm::Psm;
use hdoms_oms::window::PrecursorWindow;
use std::hint::black_box;

fn preprocessing(c: &mut Criterion) {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 5);
    let pre = Preprocessor::default();
    c.bench_function("preprocess_batch_50", |b| {
        b.iter(|| black_box(pre.run_batch(&workload.queries)))
    });
}

fn candidate_indexing(c: &mut Criterion) {
    let mut spec = WorkloadSpec::tiny();
    spec.reference_peptides = 2_000;
    let workload = SyntheticWorkload::generate(&spec, 6);
    c.bench_function("candidate_index_build_4k", |b| {
        b.iter(|| black_box(CandidateIndex::build(&workload.library)))
    });
    let index = CandidateIndex::build(&workload.library);
    let window = PrecursorWindow::open_default();
    c.bench_function("candidate_lookup_open", |b| {
        b.iter(|| black_box(index.candidates(&window, 1500.0)))
    });
}

fn fdr_filtering(c: &mut Criterion) {
    let psms: Vec<Psm> = (0..10_000)
        .map(|i| Psm {
            query_id: i,
            reference_id: i,
            score: 1.0 - f64::from(i) * 1e-4,
            is_decoy: i % 9 == 4,
            precursor_delta: 0.0,
        })
        .collect();
    c.bench_function("fdr_filter_10k", |b| {
        b.iter(|| black_box(filter_fdr(&psms, 0.01)))
    });
}

fn full_pipeline(c: &mut Criterion) {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("run_exact_tiny_2048", |b| {
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        b.iter(|| black_box(pipeline.run_exact(&workload)))
    });
    group.finish();
}

criterion_group!(
    benches,
    preprocessing,
    candidate_indexing,
    fdr_filtering,
    full_pipeline
);
criterion_main!(benches);
