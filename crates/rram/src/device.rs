//! The per-cell conductance behaviour model.
//!
//! A programmed RRAM cell does not hold its conductance: the filament
//! relaxes over time ("conductance relaxation", Fig. 1b / Fig. 8 of the
//! paper). The model here captures the four effects the paper's chip
//! measurements exhibit:
//!
//! 1. **Residual programming spread** — program-verify leaves a small
//!    deviation around the target even "during programming".
//! 2. **Log-time relaxation** — the spread grows like `log10(1 + t/τ)`;
//!    most of the change happens in the first minutes (the paper notes
//!    collecting data after 1 day "does not significantly matter" compared
//!    to 30–60 min).
//! 3. **Level-dependent instability** — fully-formed (high-g) and
//!    fully-reset (low-g) filaments are stable; intermediate states are
//!    not. This is why an 8-level cell has much worse storage error than a
//!    2-level cell at the *same* physical noise (Fig. 7).
//! 4. **Heavy tails** — relaxation deviations are Laplace-like rather than
//!    Gaussian; rare large jumps dominate the error rate of widely-spaced
//!    levels (without heavy tails the 2-bit error rate of Fig. 7 would be
//!    orders of magnitude below the measured ~3 %).
//!
//! Plus a small **defect rate**: cells that read a random level regardless
//! of programming, setting the error floor of the 1-bit curve.

use crate::config::MlcConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples observed conductances for programmed cells under relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    config: MlcConfig,
}

impl DeviceModel {
    /// Create the model for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MlcConfig::validate`].
    pub fn new(config: MlcConfig) -> DeviceModel {
        config.validate();
        DeviceModel { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &MlcConfig {
        &self.config
    }

    /// The relaxation time factor `log10(1 + t/τ)`.
    pub fn time_factor(&self, age_s: f64) -> f64 {
        (1.0 + age_s.max(0.0) / self.config.relax_tau_s).log10()
    }

    /// Level instability in `[0, 1]`: 0 at the extreme conductances,
    /// 1 at `g_max/2`.
    pub fn midness(&self, target_g_us: f64) -> f64 {
        let t = (target_g_us / self.config.g_max_us).clamp(0.0, 1.0);
        4.0 * t * (1.0 - t)
    }

    /// The Laplace scale (µS) of the conductance deviation for a cell
    /// programmed to `target_g_us` and observed `age_s` seconds later.
    pub fn lambda(&self, target_g_us: f64, age_s: f64) -> f64 {
        let stability =
            self.config.stability_floor + self.config.stability_span * self.midness(target_g_us);
        (self.config.lambda_program_us + self.config.lambda_relax_us * self.time_factor(age_s))
            * stability
    }

    /// Mean downward drift (µS) at `age_s` for a cell at `target_g_us`.
    pub fn drift(&self, target_g_us: f64, age_s: f64) -> f64 {
        self.config.drift_us * self.time_factor(age_s) * self.midness(target_g_us)
    }

    /// Sample the observed conductance of one cell programmed to
    /// `target_g_us`, `age_s` seconds after programming.
    ///
    /// Defective cells (probability `defect_rate`) read a uniformly random
    /// conductance in `[0, g_max]`.
    pub fn sample_conductance<R: Rng>(&self, rng: &mut R, target_g_us: f64, age_s: f64) -> f64 {
        if self.config.defect_rate > 0.0 && rng.gen_bool(self.config.defect_rate) {
            return rng.gen_range(0.0..=self.config.g_max_us);
        }
        let lambda = self.lambda(target_g_us, age_s);
        let noise = if lambda > 0.0 {
            sample_laplace(rng, lambda)
        } else {
            0.0
        };
        let g = target_g_us - self.drift(target_g_us, age_s) + noise;
        // Conductance is physically bounded: a cell cannot conduct
        // negatively and cannot exceed the fully-SET state by much.
        g.clamp(0.0, self.config.g_max_us * 1.1)
    }

    /// Sample a batch of conductances (one per target) at the same age.
    pub fn sample_batch<R: Rng>(&self, rng: &mut R, targets: &[f64], age_s: f64) -> Vec<f64> {
        targets
            .iter()
            .map(|&t| self.sample_conductance(rng, t, age_s))
            .collect()
    }
}

/// Sample a zero-mean Laplace variate with scale `lambda` via inverse CDF.
fn sample_laplace<R: Rng>(rng: &mut R, lambda: f64) -> f64 {
    // u ∈ (-1/2, 1/2); x = -λ·sign(u)·ln(1 - 2|u|)
    let u: f64 = rng.gen_range(-0.5 + f64::EPSILON..0.5);
    -lambda * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> DeviceModel {
        DeviceModel::new(MlcConfig::with_bits(3))
    }

    #[test]
    fn time_factor_monotone() {
        let m = model();
        let mut last = -1.0;
        for &t in &[0.0, 1.0, 60.0, 1800.0, 3600.0, 86_400.0] {
            let f = m.time_factor(t);
            assert!(f > last, "time factor must grow with age");
            last = f;
        }
        assert_eq!(m.time_factor(0.0), 0.0);
    }

    #[test]
    fn midness_peaks_at_half() {
        let m = model();
        assert_eq!(m.midness(0.0), 0.0);
        assert_eq!(m.midness(50.0), 0.0);
        assert!((m.midness(25.0) - 1.0).abs() < 1e-12);
        assert!(m.midness(10.0) > 0.0 && m.midness(10.0) < 1.0);
    }

    #[test]
    fn lambda_larger_for_mid_levels_and_older_cells() {
        let m = model();
        assert!(m.lambda(25.0, 3600.0) > m.lambda(0.0, 3600.0));
        assert!(m.lambda(25.0, 86_400.0) > m.lambda(25.0, 1.0));
    }

    #[test]
    fn ideal_device_is_exact() {
        let m = DeviceModel::new(MlcConfig::ideal(3));
        let mut rng = StdRng::seed_from_u64(1);
        for &g in &[0.0, 7.14, 25.0, 50.0] {
            for &t in &[0.0, 3600.0, 86_400.0] {
                assert_eq!(m.sample_conductance(&mut rng, g, t), g);
            }
        }
    }

    #[test]
    fn sampled_conductances_bounded() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let g = m.sample_conductance(&mut rng, 25.0, 86_400.0);
            assert!((0.0..=55.0).contains(&g), "g = {g}");
        }
    }

    #[test]
    fn spread_grows_with_age() {
        let m = model();
        let spread = |age: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..4000)
                .map(|_| m.sample_conductance(&mut rng, 25.0, age))
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
        };
        let early = spread(1.0, 3);
        let late = spread(86_400.0, 3);
        assert!(
            late > early * 1.3,
            "late spread {late} should exceed early spread {early}"
        );
    }

    #[test]
    fn extreme_levels_tighter_than_mid() {
        let m = model();
        let spread_at = |target: f64| {
            let mut rng = StdRng::seed_from_u64(4);
            let samples: Vec<f64> = (0..4000)
                .map(|_| m.sample_conductance(&mut rng, target, 3600.0))
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
        };
        // The SET extreme is clamped from above which also tightens it, so
        // compare the RESET extreme.
        assert!(spread_at(0.0) < spread_at(25.0));
    }

    #[test]
    fn laplace_sampler_statistics() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = 2.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, lambda)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Laplace variance is 2λ².
        assert!((var - 8.0).abs() < 0.5, "variance {var}");
    }

    #[test]
    fn defects_set_error_floor() {
        let mut config = MlcConfig::ideal(1);
        config.defect_rate = 0.5;
        let m = DeviceModel::new(config);
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..2000)
            .map(|_| m.sample_conductance(&mut rng, 50.0, 0.0))
            .collect();
        // Half the cells should scatter away from the 50 µS target.
        let off_target = samples.iter().filter(|&&g| (g - 50.0).abs() > 1.0).count();
        assert!(
            (off_target as f64 / 2000.0 - 0.49).abs() < 0.1,
            "off-target fraction {}",
            off_target as f64 / 2000.0
        );
    }

    #[test]
    fn batch_matches_individual_draws() {
        let m = model();
        let targets = vec![0.0, 25.0, 50.0];
        let a = m.sample_batch(&mut StdRng::seed_from_u64(7), &targets, 60.0);
        let b = m.sample_batch(&mut StdRng::seed_from_u64(7), &targets, 60.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
