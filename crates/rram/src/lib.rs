//! Behavioural multi-level-cell (MLC) RRAM simulator.
//!
//! The paper's hardware platform is a fabricated 130 nm RRAM chip (3 M
//! cells, [Wan et al., Nature 2022]) that this crate reproduces at the
//! behavioural level — everything the algorithm stack observes from the
//! chip is modelled:
//!
//! * **per-cell conductance behaviour** ([`device`]): programming noise,
//!   log-time conductance *relaxation* with level-dependent instability
//!   (middle levels drift the most — why more bits per cell means more
//!   errors, Fig. 7/8), heavy-tailed (Laplace) deviations, and a small
//!   defect rate;
//! * **level maps** ([`levels`]): the `2^n` conductance targets of an
//!   n-bit cell, nearest-level decoding, and natural-binary symbol↔bit
//!   conversion;
//! * **crossbar compute** ([`mod@array`]): differential weight mapping
//!   (Eq. 2/3), matrix-vector multiplication with open-circuit voltage
//!   sensing (Eq. 4/5), activated-row batching and ADC quantisation —
//!   the error-vs-activated-rows behaviour of Fig. 9;
//! * **dense hypervector storage** ([`storage`]): the non-differential
//!   n-bit packing of §4.3 used for Fig. 7;
//! * **chip-level accounting** ([`chip`]): capacity and area bookkeeping
//!   behind the paper's 3× density claim.
//!
//! The model is calibrated so the regenerated figures match the paper's
//! measured magnitudes and orderings; see `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use hdoms_hdc::BinaryHypervector;
//! use hdoms_rram::config::MlcConfig;
//! use hdoms_rram::storage::HypervectorStore;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let hv = BinaryHypervector::random(&mut rng, 1024);
//! let store = HypervectorStore::program(MlcConfig::with_bits(3), &[hv.clone()]);
//! let (read_back, stats) = store.read_all(3600.0, &mut rng);
//! assert_eq!(read_back[0].dim(), hv.dim());
//! assert!(stats.bit_error_rate() < 0.25);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod array;
pub mod chip;
pub mod config;
pub mod device;
pub mod levels;
pub mod storage;

pub use array::{CrossbarArray, CrossbarConfig};
pub use config::MlcConfig;
pub use device::DeviceModel;
pub use levels::LevelMap;
pub use storage::HypervectorStore;

/// Canonical measurement times used by the paper's Figures 7 and 8.
pub mod times {
    /// "After 1 s": right after programming.
    pub const AFTER_1S: f64 = 1.0;
    /// 30 minutes after programming.
    pub const AFTER_30MIN: f64 = 1_800.0;
    /// 60 minutes after programming.
    pub const AFTER_60MIN: f64 = 3_600.0;
    /// One day after programming.
    pub const AFTER_1DAY: f64 = 86_400.0;
    /// The "at least 2 hours" settling the paper applies before compute
    /// experiments (§5.2.1).
    pub const COMPUTE_AGE: f64 = 7_200.0;
}
