//! MLC RRAM device configuration.

use serde::{Deserialize, Serialize};

/// Parameters of the multi-level-cell RRAM device model.
///
/// Conductances are in microsiemens (µS) to match Figure 8 of the paper
/// (0–50 µS axis). The noise model is calibrated so that the regenerated
/// Figure 7 (storage bit error rate over time for 1/2/3 bits per cell)
/// matches the paper's chip measurements in magnitude and ordering; see
/// `device.rs` for the model itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlcConfig {
    /// Bits stored per cell (1, 2 or 3 → 2/4/8 conductance levels).
    pub bits_per_cell: u8,
    /// Maximum (fully-SET) conductance in µS.
    pub g_max_us: f64,
    /// Laplace scale of the conductance deviation right after programming
    /// (µS). Program-verify loops leave this residual spread.
    pub lambda_program_us: f64,
    /// Growth of the Laplace scale per decade of elapsed time (µS) — the
    /// conductance-relaxation term dominating Figures 7/8.
    pub lambda_relax_us: f64,
    /// Relaxation time constant in seconds; deviations grow like
    /// `log10(1 + t/τ)`.
    pub relax_tau_s: f64,
    /// Mean downward drift per decade of time (µS), peaked at
    /// mid-conductance levels.
    pub drift_us: f64,
    /// Noise multiplier for the most stable (extreme) levels. Total
    /// level-stability multiplier is
    /// `stability_floor + stability_span * midness` where `midness ∈ [0,1]`
    /// peaks at `g_max/2`.
    pub stability_floor: f64,
    /// Additional noise multiplier applied at mid-conductance levels (the
    /// least stable states of a filamentary RRAM cell).
    pub stability_span: f64,
    /// Probability that a cell is defective and reads a uniformly random
    /// level regardless of programming (stuck-at / random-telegraph
    /// victims). Sets the error floor visible on the 1-bit curve of Fig. 7.
    pub defect_rate: f64,
}

impl MlcConfig {
    /// The calibrated model with `bits` bits per cell (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 3` — the chip in the paper stores at
    /// most 3 bits per cell.
    pub fn with_bits(bits: u8) -> MlcConfig {
        assert!((1..=3).contains(&bits), "bits per cell must be 1, 2 or 3");
        MlcConfig {
            bits_per_cell: bits,
            g_max_us: 50.0,
            lambda_program_us: 1.5,
            lambda_relax_us: 0.30,
            relax_tau_s: 60.0,
            drift_us: 0.6,
            stability_floor: 0.6,
            stability_span: 0.8,
            defect_rate: 0.0015,
        }
    }

    /// An idealised device: no noise, no relaxation, no defects. Useful
    /// for separating algorithmic error from device error in tests and
    /// ablations.
    pub fn ideal(bits: u8) -> MlcConfig {
        MlcConfig {
            lambda_program_us: 0.0,
            lambda_relax_us: 0.0,
            drift_us: 0.0,
            defect_rate: 0.0,
            ..MlcConfig::with_bits(bits)
        }
    }

    /// Number of conductance levels (`2^bits_per_cell`).
    pub fn levels(&self) -> usize {
        1usize << self.bits_per_cell
    }

    /// Validate the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is out of its physical range (non-positive
    /// `g_max`, negative noise scales, `defect_rate` outside `[0, 1]`, or
    /// unsupported `bits_per_cell`).
    pub fn validate(&self) {
        assert!(
            (1..=3).contains(&self.bits_per_cell),
            "bits per cell must be 1, 2 or 3"
        );
        assert!(self.g_max_us > 0.0, "g_max must be positive");
        assert!(
            self.lambda_program_us >= 0.0 && self.lambda_relax_us >= 0.0 && self.drift_us >= 0.0,
            "noise scales must be non-negative"
        );
        assert!(self.relax_tau_s > 0.0, "relaxation tau must be positive");
        assert!(
            (0.0..=1.0).contains(&self.defect_rate),
            "defect rate must be in [0, 1]"
        );
        assert!(
            self.stability_floor >= 0.0 && self.stability_span >= 0.0,
            "stability multipliers must be non-negative"
        );
    }
}

impl Default for MlcConfig {
    /// The paper's headline configuration: 3 bits per cell.
    fn default() -> MlcConfig {
        MlcConfig::with_bits(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_bits_levels() {
        assert_eq!(MlcConfig::with_bits(1).levels(), 2);
        assert_eq!(MlcConfig::with_bits(2).levels(), 4);
        assert_eq!(MlcConfig::with_bits(3).levels(), 8);
    }

    #[test]
    #[should_panic(expected = "bits per cell must be 1, 2 or 3")]
    fn rejects_zero_bits() {
        let _ = MlcConfig::with_bits(0);
    }

    #[test]
    #[should_panic(expected = "bits per cell must be 1, 2 or 3")]
    fn rejects_four_bits() {
        let _ = MlcConfig::with_bits(4);
    }

    #[test]
    fn ideal_is_noiseless() {
        let c = MlcConfig::ideal(2);
        assert_eq!(c.lambda_program_us, 0.0);
        assert_eq!(c.lambda_relax_us, 0.0);
        assert_eq!(c.defect_rate, 0.0);
        c.validate();
    }

    #[test]
    fn default_is_three_bits() {
        assert_eq!(MlcConfig::default().bits_per_cell, 3);
    }

    #[test]
    fn validate_accepts_calibrated_configs() {
        for bits in 1..=3 {
            MlcConfig::with_bits(bits).validate();
        }
    }

    #[test]
    #[should_panic(expected = "defect rate")]
    fn validate_rejects_bad_defect_rate() {
        let mut c = MlcConfig::with_bits(1);
        c.defect_rate = 1.5;
        c.validate();
    }
}
