//! Chip-level capacity and area accounting.
//!
//! The paper's density claims rest on two published numbers:
//!
//! * a 22 nm SLC RRAM macro is ~3× denser than high-density SRAM
//!   (Chou et al., VLSI 2020 — reference 8 of the paper), and
//! * storing `n` bits per cell multiplies capacity per area by `n`
//!   (the paper's own 3× claim for its 3-bit cells, §5.2.1).
//!
//! This module turns those into queryable bookkeeping for a chip made of
//! crossbar tiles, so the benches can print the capacity side of the
//! evaluation alongside the error rates.

use crate::config::MlcConfig;
use serde::{Deserialize, Serialize};

/// Density of SLC RRAM relative to high-density SRAM in the same node
/// (reference 8 of the paper).
pub const SLC_RRAM_VS_SRAM_DENSITY: f64 = 3.0;

/// Area of one 1T1R RRAM cell in the paper's 130 nm test chip, µm².
/// (Order-of-magnitude literature value for 130 nm 1T1R; the *relative*
/// numbers below are what the evaluation uses.)
pub const CELL_AREA_130NM_UM2: f64 = 1.2;

/// A chip built from identical crossbar tiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Device configuration (bits per cell).
    pub mlc: MlcConfig,
    /// Number of crossbar tiles.
    pub tiles: usize,
    /// Rows per tile.
    pub rows: usize,
    /// Columns per tile.
    pub cols: usize,
}

impl ChipSpec {
    /// The paper's test chip: 3 million cells (§5.1.1), modelled as
    /// 48 tiles of 256×256 cells.
    pub fn paper_chip(mlc: MlcConfig) -> ChipSpec {
        ChipSpec {
            mlc,
            tiles: 48,
            rows: 256,
            cols: 256,
        }
    }

    /// Total cell count.
    pub fn cells(&self) -> u64 {
        (self.tiles * self.rows * self.cols) as u64
    }

    /// Storage capacity in bits when used as a dense (non-differential)
    /// store (§4.3).
    pub fn storage_bits(&self) -> u64 {
        self.cells() * u64::from(self.mlc.bits_per_cell)
    }

    /// Storage capacity in bits when the cells hold differential compute
    /// weights (two cells per binary weight).
    pub fn compute_weight_bits(&self) -> u64 {
        self.cells() / 2
    }

    /// Total cell area in µm² (130 nm cell).
    pub fn area_um2(&self) -> f64 {
        self.cells() as f64 * CELL_AREA_130NM_UM2
    }

    /// Storage density in bits/µm².
    pub fn storage_density(&self) -> f64 {
        self.storage_bits() as f64 / self.area_um2()
    }

    /// Density improvement over an SLC configuration of the same chip —
    /// the paper's "3× better storage capacity per area".
    pub fn density_vs_slc(&self) -> f64 {
        f64::from(self.mlc.bits_per_cell)
    }

    /// Density improvement over SRAM of the same node class, combining the
    /// SLC-RRAM-vs-SRAM factor with the MLC multiplier.
    pub fn density_vs_sram(&self) -> f64 {
        SLC_RRAM_VS_SRAM_DENSITY * self.density_vs_slc()
    }

    /// How many hypervectors of dimension `dim` fit in dense storage.
    pub fn hypervector_capacity(&self, dim: usize) -> u64 {
        assert!(dim > 0, "dimension must be positive");
        let cells_per_hv = dim.div_ceil(self.mlc.bits_per_cell as usize) as u64;
        self.cells() / cells_per_hv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_has_three_million_cells() {
        let chip = ChipSpec::paper_chip(MlcConfig::with_bits(3));
        assert_eq!(chip.cells(), 3_145_728); // 48 × 256 × 256 ≈ 3 M
    }

    #[test]
    fn storage_scales_with_bits_per_cell() {
        let slc = ChipSpec::paper_chip(MlcConfig::with_bits(1));
        let mlc = ChipSpec::paper_chip(MlcConfig::with_bits(3));
        assert_eq!(mlc.storage_bits(), 3 * slc.storage_bits());
        assert!((mlc.density_vs_slc() - 3.0).abs() < 1e-12);
        assert!((mlc.density_vs_sram() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn hypervector_capacity_example() {
        // 8192-dim HVs at 3 bits/cell need 2731 cells each.
        let chip = ChipSpec::paper_chip(MlcConfig::with_bits(3));
        assert_eq!(chip.hypervector_capacity(8192), 3_145_728 / 2731);
        // SLC stores 3× fewer.
        let slc = ChipSpec::paper_chip(MlcConfig::with_bits(1));
        assert!(chip.hypervector_capacity(8192) > 2 * slc.hypervector_capacity(8192));
    }

    #[test]
    fn compute_storage_halves_for_differential() {
        let chip = ChipSpec::paper_chip(MlcConfig::with_bits(1));
        assert_eq!(chip.compute_weight_bits(), chip.cells() / 2);
    }

    #[test]
    fn densities_positive() {
        let chip = ChipSpec::paper_chip(MlcConfig::with_bits(2));
        assert!(chip.area_um2() > 0.0);
        assert!(chip.storage_density() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn hypervector_capacity_validates() {
        let _ = ChipSpec::paper_chip(MlcConfig::with_bits(1)).hypervector_capacity(0);
    }
}
