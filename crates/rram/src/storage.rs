//! Dense (non-differential) hypervector storage in MLC cells — §4.3.
//!
//! To maximise capacity, hypervectors that are only *stored* (not used as
//! in-array compute weights) are packed `n` bits per cell: the `D`-bit
//! binary hypervector is reshaped into `D/n` symbols, each mapped to one of
//! the cell's `2^n` conductance levels (`g = h' / h'_max · g_max`).
//! Reading decodes each cell back to the nearest level. Storage density
//! scales with `n` — the paper's 3× capacity claim — at the price of the
//! relaxation-induced bit errors quantified in Figure 7.

use crate::config::MlcConfig;
use crate::device::DeviceModel;
use crate::levels::LevelMap;
use hdoms_hdc::BinaryHypervector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Aggregate statistics from reading a store back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Total data bits stored.
    pub bits_total: u64,
    /// Bits that read back incorrectly.
    pub bit_errors: u64,
    /// Total cells used.
    pub cells_used: u64,
    /// Cells whose symbol decoded incorrectly.
    pub symbol_errors: u64,
}

impl StorageStats {
    /// Fraction of data bits that flipped (the y-axis of Figure 7).
    pub fn bit_error_rate(&self) -> f64 {
        if self.bits_total == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_total as f64
        }
    }

    /// Fraction of cells whose symbol decoded incorrectly.
    pub fn symbol_error_rate(&self) -> f64 {
        if self.cells_used == 0 {
            0.0
        } else {
            self.symbol_errors as f64 / self.cells_used as f64
        }
    }
}

/// A bank of MLC cells holding a batch of equally-sized hypervectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypervectorStore {
    config: MlcConfig,
    level_map: LevelMap,
    dim: usize,
    /// Programmed symbols, one `Vec<u8>` per hypervector (`dim/n` symbols,
    /// the last one zero-padded when `n` does not divide `dim`).
    symbols: Vec<Vec<u8>>,
}

impl HypervectorStore {
    /// Pack and program `hypervectors` into MLC cells.
    ///
    /// Bits are consumed most-significant-first per symbol; when
    /// `bits_per_cell` does not divide the dimension, the final symbol is
    /// padded with zero bits (extra capacity, no information).
    ///
    /// # Panics
    ///
    /// Panics if `hypervectors` is empty or their dimensions differ.
    pub fn program(config: MlcConfig, hypervectors: &[BinaryHypervector]) -> HypervectorStore {
        assert!(!hypervectors.is_empty(), "nothing to store");
        let dim = hypervectors[0].dim();
        assert!(
            hypervectors.iter().all(|h| h.dim() == dim),
            "all stored hypervectors must share a dimension"
        );
        let level_map = LevelMap::new(&config);
        let n = config.bits_per_cell as usize;
        let symbols = hypervectors
            .iter()
            .map(|hv| {
                let mut out = Vec::with_capacity(dim.div_ceil(n));
                let mut i = 0;
                while i < dim {
                    let mut sym = 0usize;
                    for b in 0..n {
                        let bit = if i + b < dim { hv.bit(i + b) } else { false };
                        sym = (sym << 1) | usize::from(bit);
                    }
                    out.push(sym as u8);
                    i += n;
                }
                out
            })
            .collect();
        HypervectorStore {
            config,
            level_map,
            dim,
            symbols,
        }
    }

    /// Number of stored hypervectors.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the store is empty (never true after `program`).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Dimension of the stored hypervectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cells used per hypervector (`ceil(dim / bits_per_cell)`).
    pub fn cells_per_hypervector(&self) -> usize {
        self.dim.div_ceil(self.config.bits_per_cell as usize)
    }

    /// Read one hypervector back `age_s` seconds after programming,
    /// sampling the device model through `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read_one<R: Rng>(&self, index: usize, age_s: f64, rng: &mut R) -> BinaryHypervector {
        let device = DeviceModel::new(self.config);
        self.read_symbols(&device, &self.symbols[index], age_s, rng)
            .0
    }

    /// Read every stored hypervector back `age_s` seconds after
    /// programming, returning the decoded vectors and aggregate error
    /// statistics against the originally programmed data.
    pub fn read_all<R: Rng>(
        &self,
        age_s: f64,
        rng: &mut R,
    ) -> (Vec<BinaryHypervector>, StorageStats) {
        let device = DeviceModel::new(self.config);
        let mut stats = StorageStats::default();
        let mut out = Vec::with_capacity(self.symbols.len());
        for programmed in &self.symbols {
            let (hv, errs) = self.read_symbols(&device, programmed, age_s, rng);
            stats.bits_total += self.dim as u64;
            stats.bit_errors += errs.0;
            stats.cells_used += programmed.len() as u64;
            stats.symbol_errors += errs.1;
            out.push(hv);
        }
        (out, stats)
    }

    /// Decode a symbol row; returns the hypervector and
    /// (bit errors, symbol errors) vs the programmed symbols.
    fn read_symbols<R: Rng>(
        &self,
        device: &DeviceModel,
        programmed: &[u8],
        age_s: f64,
        rng: &mut R,
    ) -> (BinaryHypervector, (u64, u64)) {
        let n = self.config.bits_per_cell as usize;
        let mut hv = BinaryHypervector::zeros(self.dim);
        let mut bit_errors = 0u64;
        let mut symbol_errors = 0u64;
        for (cell, &sym) in programmed.iter().enumerate() {
            let target = self.level_map.target(sym as usize);
            let observed = device.sample_conductance(rng, target, age_s);
            let decoded = self.level_map.decode(observed);
            if decoded != sym as usize {
                symbol_errors += 1;
                // Count only bits inside the real dimension range (the
                // final symbol may contain padding).
                let base = cell * n;
                let diff = decoded ^ sym as usize;
                for b in 0..n {
                    let bit_idx = base + (n - 1 - b);
                    if bit_idx < self.dim && (diff >> b) & 1 == 1 {
                        bit_errors += 1;
                    }
                }
            }
            // Write decoded bits into the hypervector.
            let base = cell * n;
            for b in 0..n {
                let bit_idx = base + b;
                if bit_idx < self.dim {
                    let bit = (decoded >> (n - 1 - b)) & 1 == 1;
                    hv.set(bit_idx, bit);
                }
            }
        }
        (hv, (bit_errors, symbol_errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_hvs(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| BinaryHypervector::random(&mut rng, dim))
            .collect()
    }

    #[test]
    fn ideal_device_roundtrips_exactly() {
        for bits in 1..=3u8 {
            let hvs = random_hvs(4, 1000, 7);
            let store = HypervectorStore::program(MlcConfig::ideal(bits), &hvs);
            let mut rng = StdRng::seed_from_u64(1);
            let (read, stats) = store.read_all(86_400.0, &mut rng);
            assert_eq!(read, hvs, "{bits} bits per cell");
            assert_eq!(stats.bit_errors, 0);
            assert_eq!(stats.bit_error_rate(), 0.0);
        }
    }

    #[test]
    fn cells_per_hypervector_scales_with_bits() {
        let hvs = random_hvs(1, 8192, 8);
        let s1 = HypervectorStore::program(MlcConfig::with_bits(1), &hvs);
        let s2 = HypervectorStore::program(MlcConfig::with_bits(2), &hvs);
        let s3 = HypervectorStore::program(MlcConfig::with_bits(3), &hvs);
        assert_eq!(s1.cells_per_hypervector(), 8192);
        assert_eq!(s2.cells_per_hypervector(), 4096);
        assert_eq!(s3.cells_per_hypervector(), 2731); // ceil(8192/3)
    }

    #[test]
    fn error_rate_orders_by_bits_per_cell() {
        // The heart of Fig. 7: more bits per cell → higher storage BER.
        let hvs = random_hvs(8, 4096, 9);
        let mut rates = Vec::new();
        for bits in 1..=3u8 {
            let store = HypervectorStore::program(MlcConfig::with_bits(bits), &hvs);
            let mut rng = StdRng::seed_from_u64(42);
            let (_, stats) = store.read_all(86_400.0, &mut rng);
            rates.push(stats.bit_error_rate());
        }
        assert!(
            rates[0] < rates[1] && rates[1] < rates[2],
            "rates {rates:?}"
        );
        // Magnitudes in the measured ballpark (Fig. 7 at one day:
        // ≈0.2 % / 3–5 % / 11–14 %).
        assert!(rates[0] < 0.01, "1 bit/cell rate {}", rates[0]);
        assert!(
            (0.005..0.08).contains(&rates[1]),
            "2 bits rate {}",
            rates[1]
        );
        assert!((0.05..0.20).contains(&rates[2]), "3 bits rate {}", rates[2]);
    }

    #[test]
    fn error_rate_grows_with_age() {
        let hvs = random_hvs(8, 4096, 10);
        let store = HypervectorStore::program(MlcConfig::with_bits(3), &hvs);
        let rate_at = |age: f64| {
            let mut rng = StdRng::seed_from_u64(5);
            store.read_all(age, &mut rng).1.bit_error_rate()
        };
        assert!(rate_at(1.0) < rate_at(86_400.0));
    }

    #[test]
    fn non_divisible_dimension_padded() {
        // dim 100 with 3 bits/cell → 34 cells, 2 padding bits.
        let hvs = random_hvs(2, 100, 11);
        let store = HypervectorStore::program(MlcConfig::ideal(3), &hvs);
        assert_eq!(store.cells_per_hypervector(), 34);
        let mut rng = StdRng::seed_from_u64(1);
        let (read, stats) = store.read_all(0.0, &mut rng);
        assert_eq!(read, hvs);
        assert_eq!(stats.bits_total, 200);
    }

    #[test]
    fn read_one_matches_dimension() {
        let hvs = random_hvs(3, 512, 12);
        let store = HypervectorStore::program(MlcConfig::with_bits(2), &hvs);
        let mut rng = StdRng::seed_from_u64(2);
        let hv = store.read_one(1, 3600.0, &mut rng);
        assert_eq!(hv.dim(), 512);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn mixed_dimensions_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let hvs = vec![
            BinaryHypervector::random(&mut rng, 64),
            BinaryHypervector::random(&mut rng, 128),
        ];
        let _ = HypervectorStore::program(MlcConfig::with_bits(1), &hvs);
    }

    #[test]
    #[should_panic(expected = "nothing to store")]
    fn empty_input_rejected() {
        let _ = HypervectorStore::program(MlcConfig::with_bits(1), &[]);
    }

    #[test]
    fn stats_rates_consistent() {
        let hvs = random_hvs(4, 2048, 14);
        let store = HypervectorStore::program(MlcConfig::with_bits(3), &hvs);
        let mut rng = StdRng::seed_from_u64(3);
        let (read, stats) = store.read_all(86_400.0, &mut rng);
        // Recount bit errors externally and compare.
        let mut recount = 0u64;
        for (orig, got) in hvs.iter().zip(&read) {
            recount += u64::from(hdoms_hdc::hamming_distance(orig, got));
        }
        assert_eq!(recount, stats.bit_errors);
        assert!(stats.symbol_errors <= stats.bit_errors);
    }
}
