//! Crossbar in-memory MVM with differential weights and voltage sensing.
//!
//! Weights are stored as *differential pairs* (two cells in adjacent rows
//! of one column, Eq. 2/3 of the paper):
//!
//! ```text
//! g⁺ = ½ (1 + W/W_max) g_max        g⁻ = ½ (1 − W/W_max) g_max
//! ```
//!
//! Inputs arrive as differential bit-line voltages `V_ref ± V_pulse·Xᵢ` and
//! the source-line settles to (Eq. 5):
//!
//! ```text
//! V_SL = V_ref + Σᵢ Xᵢ (g⁺ᵢ − g⁻ᵢ) / (N g_max) · V_pulse
//! ```
//!
//! which is linear in the MAC value. The simulator reproduces the error
//! sources the paper measures in Fig. 9:
//!
//! * conductance deviations from programming noise + relaxation
//!   ([`crate::device`]), whose impact grows with the number of levels the
//!   cells use (1/2/3-bit curves);
//! * ADC quantisation: each sensing cycle digitises the *normalised* MAC of
//!   one activated-row group, so driving more rows per cycle widens the
//!   per-LSB span and loses low-order MAC bits (error grows with activated
//!   rows — the x-axis of Fig. 9);
//! * a fixed sensing noise on `V_SL` (kT/C and comparator offset).

use crate::config::MlcConfig;
use crate::device::DeviceModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Crossbar geometry and analog front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Device model for the cells.
    pub mlc: MlcConfig,
    /// Physical rows (two rows form one differential weight pair).
    pub rows: usize,
    /// Columns (one independent MAC output per column per cycle).
    pub cols: usize,
    /// Physical rows driven concurrently per sensing cycle (the paper's
    /// chip sustains up to 64 with 8-level cells, §5.2.2). Must be even.
    pub activated_rows: usize,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// Std-dev of the sensing noise on the normalised source-line voltage
    /// (in units where the full MAC range is `[-1, 1]`).
    pub sense_sigma: f64,
    /// IR-drop / settling error coefficient. Driving more rows pushes more
    /// current through the shared source line, so conductance deviations
    /// aggregate *coherently* across the activated rows instead of
    /// averaging out: the per-cycle error contributes
    /// `ir_drop_factor × σ_δ` to the normalised voltage (σ_δ being the
    /// array's per-pair conductance deviation), i.e. linearly in the
    /// activated-row count once de-normalised — the dominant
    /// error-vs-rows slope of Fig. 9.
    pub ir_drop_factor: f64,
    /// Cell age at compute time, seconds after programming. The paper
    /// waits at least two hours (§5.2.1).
    pub age_s: f64,
}

impl Default for CrossbarConfig {
    fn default() -> CrossbarConfig {
        CrossbarConfig {
            mlc: MlcConfig::default(),
            rows: 256,
            cols: 256,
            activated_rows: 64,
            adc_bits: 6,
            sense_sigma: 0.006,
            ir_drop_factor: 0.9,
            age_s: crate::times::COMPUTE_AGE,
        }
    }
}

impl CrossbarConfig {
    /// Weight pairs addressable per column (`rows / 2`).
    pub fn pair_capacity(&self) -> usize {
        self.rows / 2
    }

    /// Weight pairs driven per sensing cycle (`activated_rows / 2`).
    pub fn pairs_per_cycle(&self) -> usize {
        self.activated_rows / 2
    }

    /// Validate the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an odd/zero row count, `activated_rows` not in
    /// `2..=rows` or odd, zero columns, or an ADC outside 1–12 bits.
    pub fn validate(&self) {
        self.mlc.validate();
        assert!(
            self.rows >= 2 && self.rows.is_multiple_of(2),
            "rows must be even and ≥ 2"
        );
        assert!(self.cols >= 1, "need at least one column");
        assert!(
            self.activated_rows >= 2
                && self.activated_rows.is_multiple_of(2)
                && self.activated_rows <= self.rows,
            "activated_rows must be even and in 2..=rows"
        );
        assert!(
            (1..=12).contains(&self.adc_bits),
            "ADC resolution must be 1..=12 bits"
        );
        assert!(self.sense_sigma >= 0.0, "sense noise must be non-negative");
        assert!(
            self.ir_drop_factor >= 0.0,
            "IR-drop factor must be non-negative"
        );
        assert!(self.age_s >= 0.0, "age must be non-negative");
    }
}

/// A programmed crossbar tile: `pairs × cols` differential weights with
/// their relaxed (observed) conductances frozen at programming+settling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArray {
    config: CrossbarConfig,
    pairs: usize,
    cols: usize,
    /// Quantised ideal weights in `[-1, 1]`, flattened `[col][pair]`.
    quantized: Vec<f64>,
    /// Observed conductances after relaxation, flattened `[col][pair]`.
    g_plus: Vec<f64>,
    g_minus: Vec<f64>,
    /// RMS normalised per-pair conductance deviation of this array — the
    /// σ_δ that scales the IR-drop error term.
    sigma_delta: f64,
}

impl CrossbarArray {
    /// Quantise a normalised weight `w ∈ [-1, 1]` to the `2^n` values a
    /// differential pair of n-bit cells can represent exactly.
    ///
    /// With 1-bit cells this is the sign function — binary reference
    /// hypervectors are stored losslessly at any precision.
    pub fn quantize_weight(mlc: &MlcConfig, w: f64) -> f64 {
        let levels = mlc.levels() as f64;
        let clamped = w.clamp(-1.0, 1.0);
        let code = ((clamped + 1.0) / 2.0 * (levels - 1.0)).round();
        code / (levels - 1.0) * 2.0 - 1.0
    }

    /// Program `weights[col][pair]` (normalised to `[-1, 1]`) into the
    /// array: quantise, map to differential conductances, and sample the
    /// relaxed conductances at `config.age_s` through `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid, `weights` is empty or ragged, has
    /// more columns than the array, or more pairs than `rows / 2`.
    pub fn program<R: Rng>(
        config: CrossbarConfig,
        weights: &[Vec<f64>],
        rng: &mut R,
    ) -> CrossbarArray {
        config.validate();
        assert!(!weights.is_empty(), "no weights to program");
        assert!(
            weights.len() <= config.cols,
            "{} weight columns exceed array width {}",
            weights.len(),
            config.cols
        );
        let pairs = weights[0].len();
        assert!(pairs >= 1, "weight columns must be non-empty");
        assert!(
            weights.iter().all(|c| c.len() == pairs),
            "all weight columns must have equal length"
        );
        assert!(
            pairs <= config.pair_capacity(),
            "{} weight pairs exceed row capacity {}",
            pairs,
            config.pair_capacity()
        );

        let device = DeviceModel::new(config.mlc);
        let g_max = config.mlc.g_max_us;
        let cols = weights.len();
        let mut quantized = Vec::with_capacity(cols * pairs);
        let mut g_plus = Vec::with_capacity(cols * pairs);
        let mut g_minus = Vec::with_capacity(cols * pairs);
        let mut dev_sq = 0.0f64;
        for col in weights {
            for &w in col {
                assert!(
                    (-1.0..=1.0).contains(&w),
                    "weight {w} outside the normalised range [-1, 1]"
                );
                let q = Self::quantize_weight(&config.mlc, w);
                let target_plus = 0.5 * (1.0 + q) * g_max;
                let target_minus = 0.5 * (1.0 - q) * g_max;
                quantized.push(q);
                let gp = device.sample_conductance(rng, target_plus, config.age_s);
                let gm = device.sample_conductance(rng, target_minus, config.age_s);
                let delta = ((gp - target_plus) - (gm - target_minus)) / g_max;
                dev_sq += delta * delta;
                g_plus.push(gp);
                g_minus.push(gm);
            }
        }
        let sigma_delta = (dev_sq / (cols * pairs) as f64).sqrt();
        CrossbarArray {
            config,
            pairs,
            cols,
            quantized,
            g_plus,
            g_minus,
            sigma_delta,
        }
    }

    /// RMS normalised per-pair conductance deviation of the programmed
    /// array (0 on an ideal device).
    pub fn sigma_delta(&self) -> f64 {
        self.sigma_delta
    }

    /// The array configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Number of weight pairs per column.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Number of programmed columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sensing cycles needed for one full MVM
    /// (`ceil(pairs / pairs_per_cycle)`).
    pub fn cycles_per_mvm(&self) -> usize {
        self.pairs.div_ceil(self.config.pairs_per_cycle())
    }

    /// Analog MVM: `inputs` (one value in `[-1, 1]` per weight pair, ±1
    /// for binary hypervectors) against every programmed column.
    ///
    /// Returns per-column MAC estimates in normalised weight units — the
    /// ideal output would be `Σᵢ xᵢ·wᵢ` with `wᵢ ∈ [-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pairs` or any input is outside
    /// `[-1, 1]`.
    pub fn mvm<R: Rng>(&self, inputs: &[f64], rng: &mut R) -> Vec<f64> {
        assert_eq!(
            self.pairs,
            inputs.len(),
            "input length must equal pair count"
        );
        assert!(
            inputs.iter().all(|x| (-1.0..=1.0).contains(x)),
            "inputs must be normalised to [-1, 1]"
        );
        let group = self.config.pairs_per_cycle();
        let g_max = self.config.mlc.g_max_us;
        let adc_levels = (1usize << self.config.adc_bits) as f64;
        let mut out = vec![0.0f64; self.cols];
        for (col, acc) in out.iter_mut().enumerate() {
            let base = col * self.pairs;
            let mut start = 0;
            while start < self.pairs {
                let end = (start + group).min(self.pairs);
                let n = (end - start) as f64;
                // Eq. 5: normalised source-line voltage for this group.
                let mut v = 0.0;
                for (input, idx) in inputs[start..end].iter().zip(base + start..base + end) {
                    v += input * (self.g_plus[idx] - self.g_minus[idx]);
                }
                v /= n * g_max;
                if self.config.sense_sigma > 0.0 {
                    v += sample_normal(rng, self.config.sense_sigma);
                }
                let ir_sigma = self.config.ir_drop_factor * self.sigma_delta;
                if ir_sigma > 0.0 {
                    v += sample_normal(rng, ir_sigma);
                }
                // ADC over the full-scale normalised range [-1, 1].
                let clamped = v.clamp(-1.0, 1.0);
                let code = ((clamped + 1.0) / 2.0 * (adc_levels - 1.0)).round();
                let v_hat = code / (adc_levels - 1.0) * 2.0 - 1.0;
                *acc += v_hat * n;
                start = end;
            }
        }
        out
    }

    /// The MVM the hardware is approximating, computed on the *quantised*
    /// weights with no analog noise. Comparing `mvm` against this isolates
    /// analog error from weight-quantisation error.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pairs`.
    pub fn ideal_mvm(&self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.pairs,
            inputs.len(),
            "input length must equal pair count"
        );
        (0..self.cols)
            .map(|col| {
                let base = col * self.pairs;
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| x * self.quantized[base + i])
                    .sum()
            })
            .collect()
    }
}

/// Box–Muller standard normal scaled by `sigma`.
fn sample_normal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    sigma * (-2.0 * u.ln()).sqrt() * v.cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal_config(activated_rows: usize) -> CrossbarConfig {
        CrossbarConfig {
            mlc: MlcConfig::ideal(1),
            rows: 256,
            cols: 16,
            activated_rows,
            adc_bits: 12,
            sense_sigma: 0.0,
            ir_drop_factor: 0.0,
            age_s: 0.0,
        }
    }

    fn random_binary_weights(cols: usize, pairs: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cols)
            .map(|_| {
                (0..pairs)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ideal_array_recovers_exact_binary_mac() {
        let weights = random_binary_weights(8, 128, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let array = CrossbarArray::program(ideal_config(64), &weights, &mut rng);
        let inputs: Vec<f64> = random_binary_weights(1, 128, 3).remove(0);
        let got = array.mvm(&inputs, &mut rng);
        let want = array.ideal_mvm(&inputs);
        for (g, w) in got.iter().zip(&want) {
            // With a 12-bit ADC over 32-pair groups the residual is far
            // below 1 MAC unit, so rounding recovers the exact integer.
            assert_eq!(g.round(), w.round(), "got {g}, want {w}");
        }
    }

    #[test]
    fn quantize_weight_binary_is_sign() {
        let mlc = MlcConfig::with_bits(1);
        assert_eq!(CrossbarArray::quantize_weight(&mlc, 0.7), 1.0);
        assert_eq!(CrossbarArray::quantize_weight(&mlc, -0.2), -1.0);
        assert_eq!(CrossbarArray::quantize_weight(&mlc, 1.0), 1.0);
    }

    #[test]
    fn quantize_weight_3bit_grid() {
        let mlc = MlcConfig::with_bits(3);
        // Representable values are k/7*2-1 for k = 0..7.
        let q = CrossbarArray::quantize_weight(&mlc, 0.0);
        assert!((q - 1.0 / 7.0).abs() < 1e-12 || (q + 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(CrossbarArray::quantize_weight(&mlc, 1.0), 1.0);
        assert_eq!(CrossbarArray::quantize_weight(&mlc, -1.0), -1.0);
    }

    #[test]
    fn cycles_per_mvm_counts_groups() {
        let weights = random_binary_weights(4, 100, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let array = CrossbarArray::program(ideal_config(64), &weights, &mut rng);
        // 100 pairs, 32 pairs per cycle → 4 cycles.
        assert_eq!(array.cycles_per_mvm(), 4);
    }

    #[test]
    fn error_grows_with_activated_rows() {
        // Fig. 9 trend: more activated rows per sensing cycle → coarser
        // ADC resolution per MAC unit → larger error.
        let weights = random_binary_weights(16, 128, 6);
        let inputs: Vec<f64> = random_binary_weights(1, 128, 7).remove(0);
        let rmse_at = |activated: usize| {
            let config = CrossbarConfig {
                mlc: MlcConfig::with_bits(3),
                rows: 256,
                cols: 16,
                activated_rows: activated,
                adc_bits: 6,
                sense_sigma: 0.006,
                ir_drop_factor: 0.9,
                age_s: crate::times::COMPUTE_AGE,
            };
            let mut rng = StdRng::seed_from_u64(8);
            let array = CrossbarArray::program(config, &weights, &mut rng);
            let got = array.mvm(&inputs, &mut rng);
            let want = array.ideal_mvm(&inputs);
            let mse: f64 = got
                .iter()
                .zip(&want)
                .map(|(g, w)| (g - w).powi(2))
                .sum::<f64>()
                / got.len() as f64;
            mse.sqrt()
        };
        let low = rmse_at(20);
        let high = rmse_at(120);
        assert!(
            high > low,
            "RMSE must grow with activated rows: {low} vs {high}"
        );
    }

    #[test]
    fn noisier_cells_with_more_levels() {
        // Fig. 9 trend: at the same geometry, 3-bit cells err more than
        // 1-bit cells when the weights exercise intermediate levels.
        let mut rng_w = StdRng::seed_from_u64(9);
        let weights: Vec<Vec<f64>> = (0..16)
            .map(|_| (0..128).map(|_| rng_w.gen_range(-1.0..=1.0)).collect())
            .collect();
        let inputs: Vec<f64> = random_binary_weights(1, 128, 10).remove(0);
        let rmse_for = |bits: u8| {
            let config = CrossbarConfig {
                mlc: MlcConfig::with_bits(bits),
                rows: 256,
                cols: 16,
                activated_rows: 64,
                adc_bits: 6,
                sense_sigma: 0.006,
                ir_drop_factor: 0.9,
                age_s: crate::times::COMPUTE_AGE,
            };
            let mut rng = StdRng::seed_from_u64(11);
            let array = CrossbarArray::program(config, &weights, &mut rng);
            let got = array.mvm(&inputs, &mut rng);
            let want = array.ideal_mvm(&inputs);
            (got.iter()
                .zip(&want)
                .map(|(g, w)| (g - w).powi(2))
                .sum::<f64>()
                / got.len() as f64)
                .sqrt()
        };
        assert!(rmse_for(3) > rmse_for(1), "3-bit cells should be noisier");
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn mvm_checks_input_length() {
        let weights = random_binary_weights(2, 16, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let array = CrossbarArray::program(ideal_config(32), &weights, &mut rng);
        let _ = array.mvm(&[1.0; 8], &mut rng);
    }

    #[test]
    #[should_panic(expected = "exceed row capacity")]
    fn program_checks_capacity() {
        let weights = random_binary_weights(1, 200, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let _ = CrossbarArray::program(ideal_config(64), &weights, &mut rng);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn program_rejects_ragged_weights() {
        let weights = vec![vec![1.0; 8], vec![1.0; 9]];
        let mut rng = StdRng::seed_from_u64(16);
        let _ = CrossbarArray::program(ideal_config(8), &weights, &mut rng);
    }

    #[test]
    #[should_panic(expected = "activated_rows")]
    fn config_rejects_odd_activation() {
        let config = CrossbarConfig {
            activated_rows: 63,
            ..CrossbarConfig::default()
        };
        config.validate();
    }

    #[test]
    fn mvm_deterministic_per_seed() {
        let weights = random_binary_weights(4, 64, 17);
        let config = CrossbarConfig::default();
        let inputs: Vec<f64> = random_binary_weights(1, 64, 18).remove(0);
        let run = || {
            let mut rng = StdRng::seed_from_u64(19);
            let array = CrossbarArray::program(config, &weights, &mut rng);
            array.mvm(&inputs, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
