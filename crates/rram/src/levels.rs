//! Conductance level maps: targets, decoding and symbol/bit conversion.

use crate::config::MlcConfig;
use serde::{Deserialize, Serialize};

/// The conductance level map of an n-bit cell: `2^n` evenly spaced targets
/// from 0 to `g_max`, decoded back by nearest-target matching (equivalent
/// to midpoint thresholds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMap {
    bits: u8,
    targets: Vec<f64>,
}

impl LevelMap {
    /// Build the level map for `config`.
    pub fn new(config: &MlcConfig) -> LevelMap {
        config.validate();
        let n = config.levels();
        let targets = (0..n)
            .map(|k| k as f64 / (n - 1) as f64 * config.g_max_us)
            .collect();
        LevelMap {
            bits: config.bits_per_cell,
            targets,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.targets.len()
    }

    /// Bits per symbol.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Target conductance (µS) of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn target(&self, level: usize) -> f64 {
        self.targets[level]
    }

    /// All target conductances in level order.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Decode an observed conductance to the nearest level.
    pub fn decode(&self, g_us: f64) -> usize {
        // Targets are evenly spaced; rounding is exact nearest-neighbour.
        let n = self.targets.len();
        let spacing = self.targets[1] - self.targets[0];
        let idx = (g_us / spacing).round();
        idx.clamp(0.0, (n - 1) as f64) as usize
    }

    /// Split a symbol into its natural-binary bits, most significant
    /// first. E.g. for 3 bits, symbol 5 → `[true, false, true]`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= levels`.
    pub fn symbol_to_bits(&self, symbol: usize) -> Vec<bool> {
        assert!(symbol < self.levels(), "symbol {symbol} out of range");
        (0..self.bits)
            .rev()
            .map(|b| (symbol >> b) & 1 == 1)
            .collect()
    }

    /// Assemble bits (most significant first) into a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != bits_per_cell`.
    pub fn bits_to_symbol(&self, bits: &[bool]) -> usize {
        assert_eq!(bits.len(), self.bits as usize, "wrong number of bits");
        bits.iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }

    /// Number of differing bits between two symbols' natural-binary codes
    /// (the unit Figure 7 reports errors in).
    pub fn bit_errors_between(&self, a: usize, b: usize) -> u32 {
        ((a ^ b) as u32).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_evenly_spaced_to_gmax() {
        let lm = LevelMap::new(&MlcConfig::with_bits(3));
        assert_eq!(lm.levels(), 8);
        assert_eq!(lm.target(0), 0.0);
        assert!((lm.target(7) - 50.0).abs() < 1e-12);
        let spacing = lm.target(1) - lm.target(0);
        for w in lm.targets().windows(2) {
            assert!((w[1] - w[0] - spacing).abs() < 1e-9);
        }
    }

    #[test]
    fn decode_roundtrip_on_targets() {
        for bits in 1..=3u8 {
            let lm = LevelMap::new(&MlcConfig::with_bits(bits));
            for level in 0..lm.levels() {
                assert_eq!(lm.decode(lm.target(level)), level);
            }
        }
    }

    #[test]
    fn decode_uses_midpoints() {
        let lm = LevelMap::new(&MlcConfig::with_bits(2));
        // spacing 50/3 ≈ 16.67; just below/above the 0-1 midpoint 8.33
        assert_eq!(lm.decode(8.0), 0);
        assert_eq!(lm.decode(8.7), 1);
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let lm = LevelMap::new(&MlcConfig::with_bits(3));
        assert_eq!(lm.decode(-5.0), 0);
        assert_eq!(lm.decode(500.0), 7);
    }

    #[test]
    fn symbol_bits_roundtrip() {
        let lm = LevelMap::new(&MlcConfig::with_bits(3));
        for s in 0..8 {
            assert_eq!(lm.bits_to_symbol(&lm.symbol_to_bits(s)), s);
        }
    }

    #[test]
    fn symbol_to_bits_msb_first() {
        let lm = LevelMap::new(&MlcConfig::with_bits(3));
        assert_eq!(lm.symbol_to_bits(5), vec![true, false, true]);
        assert_eq!(lm.symbol_to_bits(1), vec![false, false, true]);
    }

    #[test]
    fn bit_errors_between_examples() {
        let lm = LevelMap::new(&MlcConfig::with_bits(3));
        assert_eq!(lm.bit_errors_between(3, 4), 3); // 011 vs 100
        assert_eq!(lm.bit_errors_between(6, 7), 1); // 110 vs 111
        assert_eq!(lm.bit_errors_between(2, 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn symbol_to_bits_bounds() {
        let lm = LevelMap::new(&MlcConfig::with_bits(2));
        let _ = lm.symbol_to_bits(4);
    }
}
