//! Closed-form error analysis of the device model.
//!
//! The storage error rates of Fig. 7 follow from the Laplace relaxation
//! model analytically: a cell programmed to level `k` mis-decodes when
//! its deviation crosses the half-spacing to a neighbouring level, which
//! for a Laplace distribution has probability `½·exp(-Δ/λ)` per side.
//! This module evaluates that prediction — drift, defects and clamping
//! included to first order — so the Monte-Carlo simulator can be checked
//! against theory, and so users can size cell precision for a target
//! error budget *without* running simulations.

use crate::config::MlcConfig;
use crate::device::DeviceModel;
use crate::levels::LevelMap;
use serde::{Deserialize, Serialize};

/// Analytical storage-error prediction for one configuration and age.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageErrorPrediction {
    /// Probability that a random symbol decodes to the wrong level.
    pub symbol_error_rate: f64,
    /// Probability that a random data bit flips (natural-binary mapping,
    /// first-order: symbol errors land on adjacent levels).
    pub bit_error_rate: f64,
}

/// Predict the storage error of `config` at `age_s` seconds after
/// programming, assuming uniformly distributed stored symbols.
///
/// Assumptions (all first-order, see the module docs): errors land on the
/// *adjacent* level (true for `Δ/λ ≳ 2`, the design regime), drift shifts
/// the mean toward the lower neighbour, defective cells decode uniformly.
pub fn predict_storage_error(config: &MlcConfig, age_s: f64) -> StorageErrorPrediction {
    config.validate();
    let device = DeviceModel::new(*config);
    let map = LevelMap::new(config);
    let n = map.levels();
    let spacing = if n > 1 {
        map.target(1) - map.target(0)
    } else {
        config.g_max_us
    };
    let half = spacing / 2.0;

    let mut symbol_error = 0.0f64;
    let mut bit_error_bits = 0.0f64;
    let bits = f64::from(config.bits_per_cell);
    for level in 0..n {
        let g = map.target(level);
        let lambda = device.lambda(g, age_s);
        let drift = device.drift(g, age_s);
        // Laplace tail: P(X > t) = ½ exp(-t/λ) for t ≥ 0. Drift moves the
        // distribution down by `drift`, helping downward crossings and
        // hindering upward ones.
        let tail = |t: f64| {
            if lambda <= 0.0 {
                if t <= 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else if t >= 0.0 {
                0.5 * (-t / lambda).exp()
            } else {
                1.0 - 0.5 * (t / lambda).exp()
            }
        };
        let p_down = if level > 0 { tail(half - drift) } else { 0.0 };
        let p_up = if level + 1 < n {
            tail(half + drift)
        } else {
            0.0
        };
        let p_sym = (p_down + p_up).min(1.0);
        symbol_error += p_sym / n as f64;
        // Adjacent-level errors flip the bits where the two codes differ.
        let down_bits = if level > 0 {
            f64::from(map.bit_errors_between(level, level - 1))
        } else {
            0.0
        };
        let up_bits = if level + 1 < n {
            f64::from(map.bit_errors_between(level, level + 1))
        } else {
            0.0
        };
        bit_error_bits += (p_down * down_bits + p_up * up_bits) / n as f64;
    }

    // Defects decode a uniformly random level: the wrong symbol with
    // probability (n-1)/n, and each code bit is then uniform, flipping
    // with probability ½.
    let defect = config.defect_rate;
    let symbol_error_rate = (1.0 - defect) * symbol_error + defect * (n as f64 - 1.0) / n as f64;
    let bit_error_rate = ((1.0 - defect) * bit_error_bits / bits + defect * 0.5).min(1.0);

    StorageErrorPrediction {
        symbol_error_rate: symbol_error_rate.min(1.0),
        bit_error_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HypervectorStore;
    use hdoms_hdc::BinaryHypervector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prediction_matches_simulation() {
        // The headline validation: theory vs Monte-Carlo within a relative
        // tolerance across all precisions and ages.
        let mut rng = StdRng::seed_from_u64(71);
        let hvs: Vec<BinaryHypervector> = (0..24)
            .map(|_| BinaryHypervector::random(&mut rng, 8192))
            .collect();
        for bits in 1..=3u8 {
            let config = MlcConfig::with_bits(bits);
            let store = HypervectorStore::program(config, &hvs);
            for &age in &[1.0, 3_600.0, 86_400.0] {
                let mut read_rng = StdRng::seed_from_u64(72 ^ age as u64);
                let (_, stats) = store.read_all(age, &mut read_rng);
                let simulated = stats.bit_error_rate();
                let predicted = predict_storage_error(&config, age).bit_error_rate;
                let tolerance = (predicted * 0.35).max(0.002);
                assert!(
                    (simulated - predicted).abs() < tolerance,
                    "{bits} bits @ {age}s: simulated {simulated:.4} vs predicted {predicted:.4}"
                );
            }
        }
    }

    #[test]
    fn prediction_monotone_in_age_and_bits() {
        let p = |bits: u8, age: f64| {
            predict_storage_error(&MlcConfig::with_bits(bits), age).bit_error_rate
        };
        assert!(p(3, 86_400.0) > p(3, 1.0));
        assert!(p(3, 3_600.0) > p(2, 3_600.0));
        assert!(p(2, 3_600.0) > p(1, 3_600.0));
    }

    #[test]
    fn ideal_device_predicts_zero() {
        let p = predict_storage_error(&MlcConfig::ideal(3), 86_400.0);
        assert_eq!(p.symbol_error_rate, 0.0);
        assert_eq!(p.bit_error_rate, 0.0);
    }

    #[test]
    fn defects_set_the_floor() {
        let mut config = MlcConfig::ideal(1);
        config.defect_rate = 0.01;
        let p = predict_storage_error(&config, 0.0);
        // Half of defective 1-bit cells land on the wrong level, and a
        // defective cell's bit is uniform.
        assert!((p.symbol_error_rate - 0.005).abs() < 1e-9);
        assert!((p.bit_error_rate - 0.005).abs() < 1e-9);
    }

    #[test]
    fn bit_errors_bounded_by_symbol_errors() {
        for bits in 1..=3u8 {
            let config = MlcConfig::with_bits(bits);
            let p = predict_storage_error(&config, 86_400.0);
            // Each mis-decoded symbol flips between 1 and `bits` bits.
            assert!(p.bit_error_rate * f64::from(bits) >= p.symbol_error_rate * 0.9);
            assert!(p.bit_error_rate <= p.symbol_error_rate * 1.1);
        }
    }
}
