//! Property-based tests for the MLC RRAM simulator.

use hdoms_hdc::BinaryHypervector;
use hdoms_rram::array::{CrossbarArray, CrossbarConfig};
use hdoms_rram::config::MlcConfig;
use hdoms_rram::levels::LevelMap;
use hdoms_rram::storage::HypervectorStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weight quantisation is idempotent, sign-preserving, range-bounded
    /// and monotone.
    #[test]
    fn quantize_weight_properties(w1 in -1.0f64..=1.0, w2 in -1.0f64..=1.0, bits in 1u8..=3) {
        let mlc = MlcConfig::with_bits(bits);
        let q1 = CrossbarArray::quantize_weight(&mlc, w1);
        prop_assert!((-1.0..=1.0).contains(&q1));
        prop_assert_eq!(CrossbarArray::quantize_weight(&mlc, q1), q1, "idempotent");
        // Monotone: order of quantised values follows order of inputs.
        let q2 = CrossbarArray::quantize_weight(&mlc, w2);
        if w1 < w2 {
            prop_assert!(q1 <= q2);
        }
    }

    /// Level decode inverts encode under any deviation smaller than half
    /// a level spacing.
    #[test]
    fn decode_tolerates_half_spacing(bits in 1u8..=3, level_seed in any::<u64>(), frac in -0.49f64..0.49) {
        let config = MlcConfig::with_bits(bits);
        let map = LevelMap::new(&config);
        let level = (level_seed % map.levels() as u64) as usize;
        let spacing = map.target(1) - map.target(0);
        let g = map.target(level) + frac * spacing;
        prop_assert_eq!(map.decode(g), level);
    }

    /// Ideal storage round-trips arbitrary hypervector dimensions,
    /// including ones not divisible by the symbol width.
    #[test]
    fn ideal_storage_roundtrip(dim in 1usize..300, bits in 1u8..=3, seed in any::<u64>()) {
        let hv = BinaryHypervector::random(&mut StdRng::seed_from_u64(seed), dim);
        let store = HypervectorStore::program(MlcConfig::ideal(bits), std::slice::from_ref(&hv));
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let (read, stats) = store.read_all(86_400.0, &mut rng);
        prop_assert_eq!(&read[0], &hv);
        prop_assert_eq!(stats.bit_errors, 0);
        prop_assert_eq!(stats.bits_total, dim as u64);
    }

    /// An ideal crossbar recovers the exact integer MAC for arbitrary
    /// binary weights and inputs at any legal activation count.
    #[test]
    fn ideal_crossbar_exact(
        seed in any::<u64>(),
        pairs_pow in 3u32..7, // 8..64 pairs
        activated_pairs_pow in 1u32..6,
    ) {
        let pairs = 1usize << pairs_pow;
        let activated = 2 * (1usize << activated_pairs_pow.min(pairs_pow));
        let config = CrossbarConfig {
            mlc: MlcConfig::ideal(1),
            rows: 2 * pairs.max(64),
            cols: 4,
            activated_rows: activated,
            adc_bits: 12,
            sense_sigma: 0.0,
            ir_drop_factor: 0.0,
            age_s: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let weights: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..pairs).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect())
            .collect();
        let inputs: Vec<f64> = (0..pairs)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let array = CrossbarArray::program(config, &weights, &mut rng);
        prop_assert_eq!(array.sigma_delta(), 0.0);
        let got = array.mvm(&inputs, &mut rng);
        let want = array.ideal_mvm(&inputs);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.round() as i64, w.round() as i64);
        }
    }

    /// Storage error statistics are internally consistent for noisy
    /// devices: bit errors bounded by bits stored, symbol errors by cells.
    #[test]
    fn storage_stats_consistent(seed in any::<u64>(), bits in 1u8..=3) {
        let hv = BinaryHypervector::random(&mut StdRng::seed_from_u64(seed), 512);
        let store = HypervectorStore::program(MlcConfig::with_bits(bits), &[hv]);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let (_, stats) = store.read_all(86_400.0, &mut rng);
        prop_assert!(stats.bit_errors <= stats.bits_total);
        prop_assert!(stats.symbol_errors <= stats.cells_used);
        prop_assert!(stats.bit_errors <= stats.symbol_errors * u64::from(bits));
        prop_assert!(stats.symbol_errors <= stats.bit_errors, "a symbol error flips ≥1 bit");
    }
}
