//! The four subcommands.

use crate::library_io::{read_library, write_library};
use crate::opts::Flags;
use hdoms_baselines::annsolo::{AnnSoloBackend, AnnSoloConfig};
use hdoms_baselines::hyperoms::{HyperOmsBackend, HyperOmsConfig};
use hdoms_ms::dataset::{QueryTruth, SyntheticWorkload, WorkloadSpec};
use hdoms_ms::mgf::{read_mgf, write_mgf};
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig, PipelineOutcome};
use hdoms_oms::profile::{common_catalogue, DeltaMassProfile};
use hdoms_oms::psm::Psm;
use hdoms_oms::window::PrecursorWindow;
use hdoms_rram::chip::ChipSpec;
use hdoms_rram::config::MlcConfig;
use std::fs;

/// `hdoms generate`: synthesise a workload, export query + library MGF.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["out-queries", "out-library", "preset", "scale", "seed"])?;
    let out_queries = flags.require("out-queries")?;
    let out_library = flags.require("out-library")?;
    let scale: f64 = flags.get_or("scale", 0.01)?;
    let seed: u64 = flags.get_or("seed", 0xF1605)?;
    let spec = match flags.get("preset").unwrap_or("iprg2012") {
        "iprg2012" => WorkloadSpec::iprg2012(scale),
        "hek293" => WorkloadSpec::hek293(scale),
        "tiny" => WorkloadSpec::tiny(),
        other => return Err(format!("unknown preset {other:?}")),
    };
    let workload = SyntheticWorkload::generate(&spec, seed);

    let mut queries_file = Vec::new();
    write_mgf(&mut queries_file, &workload.queries).map_err(|e| e.to_string())?;
    fs::write(out_queries, queries_file).map_err(|e| e.to_string())?;

    let mut library_file = Vec::new();
    write_library(&mut library_file, &workload.library).map_err(|e| e.to_string())?;
    fs::write(out_library, library_file).map_err(|e| e.to_string())?;

    println!(
        "wrote {} query spectra to {out_queries} and {} library spectra \
         ({} decoys) to {out_library}  [{}]",
        workload.queries.len(),
        workload.library.len(),
        workload.library.decoy_count(),
        spec.name,
    );
    Ok(())
}

/// `hdoms search`: MGF queries vs annotated-MGF library → PSM table.
pub fn search(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "queries", "library", "out", "backend", "window", "fdr", "dim", "seed",
    ])?;
    let queries_path = flags.require("queries")?;
    let library_path = flags.require("library")?;
    let out_path = flags.require("out")?;
    let fdr: f64 = flags.get_or("fdr", 0.01)?;
    let dim: usize = flags.get_or("dim", 8192)?;
    let backend_name = flags.get("backend").unwrap_or("exact").to_owned();
    let window = match flags.get("window").unwrap_or("open") {
        "open" => PrecursorWindow::open_default(),
        "standard" => PrecursorWindow::standard_default(),
        other => return Err(format!("unknown window {other:?} (open|standard)")),
    };

    let query_bytes = fs::read(queries_path).map_err(|e| e.to_string())?;
    let queries: Vec<_> = read_mgf(query_bytes.as_slice())
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|m| m.spectrum)
        .collect();
    let library_bytes = fs::read(library_path).map_err(|e| e.to_string())?;
    let library = read_library(&library_bytes)?;
    if queries.is_empty() || library.is_empty() {
        return Err("empty queries or library".to_owned());
    }

    // Wrap the parsed data as a workload; truth is unknown for real data.
    let truth = vec![QueryTruth::Unmatchable; queries.len()];
    let spec = WorkloadSpec {
        name: format!("cli:{queries_path}"),
        reference_peptides: library.len() / 2,
        queries: queries.len(),
        modified_fraction: 0.0,
        unmatchable_fraction: 0.0,
        peptide_len: (0, 0),
        library_charge: 2,
        noise: hdoms_ms::noise::NoiseModel::none(),
        fragment: hdoms_ms::fragment::FragmentConfig::default(),
    };
    let workload = SyntheticWorkload {
        spec,
        library,
        queries,
        truth,
    };

    let mut config = PipelineConfig::default();
    config.window = window;
    config.fdr_level = fdr;
    config.exact.encoder.dim = dim;
    let pipeline = OmsPipeline::new(config);
    let outcome = match backend_name.as_str() {
        "exact" => pipeline.run_exact(&workload),
        "annsolo" => {
            let backend = AnnSoloBackend::build(&workload.library, AnnSoloConfig::default());
            pipeline.run(&workload, &backend)
        }
        "hyperoms" => {
            let backend = HyperOmsBackend::build(
                &workload.library,
                HyperOmsConfig {
                    dim,
                    ..HyperOmsConfig::default()
                },
            );
            pipeline.run(&workload, &backend)
        }
        other => return Err(format!("unknown backend {other:?} (exact|annsolo|hyperoms)")),
    };

    fs::write(out_path, render_psm_table(&workload, &outcome)).map_err(|e| e.to_string())?;
    println!(
        "{}: {} of {} queries identified at {:.1}% FDR (threshold score {:.4}); \
         table written to {out_path}",
        outcome.backend_name,
        outcome.identifications(),
        outcome.total_queries,
        fdr * 100.0,
        outcome.threshold_score,
    );
    Ok(())
}

/// Render the PSM table (all best hits, with an `accepted` column).
fn render_psm_table(workload: &SyntheticWorkload, outcome: &PipelineOutcome) -> String {
    let accepted = outcome.accepted_query_ids();
    let mut out = String::from(
        "query_id\treference_id\tpeptide\tscore\tis_decoy\tprecursor_delta_da\taccepted\n",
    );
    for psm in &outcome.psms {
        let peptide = workload
            .library
            .get(psm.reference_id)
            .map(|e| e.peptide.to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "{}\t{}\t{}\t{:.6}\t{}\t{:.4}\t{}\n",
            psm.query_id,
            psm.reference_id,
            peptide,
            psm.score,
            u8::from(psm.is_decoy),
            psm.precursor_delta,
            u8::from(accepted.contains(&psm.query_id) && psm.is_target()),
        ));
    }
    out
}

/// `hdoms profile`: delta-mass profile of an accepted-PSM table.
pub fn profile(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["psms", "bin-width", "min-count"])?;
    let path = flags.require("psms")?;
    let bin_width: f64 = flags.get_or("bin-width", 0.01)?;
    let min_count: usize = flags.get_or("min-count", 3)?;
    let table = fs::read_to_string(path).map_err(|e| e.to_string())?;
    let psms = parse_psm_table(&table)?;
    let accepted: Vec<Psm> = psms.into_iter().filter(|(_, acc)| *acc).map(|(p, _)| p).collect();
    if accepted.is_empty() {
        return Err("no accepted PSMs in the table".to_owned());
    }
    let profile = DeltaMassProfile::from_psms(&accepted, bin_width);
    let catalogue = common_catalogue();
    println!("{} accepted PSMs; delta-mass peaks (≥{min_count}):", profile.total());
    println!("{:>12}  {:>6}  annotation", "delta (Da)", "PSMs");
    for (peak, name) in profile.annotate(min_count, &catalogue, 3.0 * bin_width) {
        println!(
            "{:>12.4}  {:>6}  {}",
            peak.delta_da,
            peak.count,
            name.unwrap_or("(unexplained)")
        );
    }
    Ok(())
}

/// Parse the PSM table written by [`search`]; returns (psm, accepted).
fn parse_psm_table(table: &str) -> Result<Vec<(Psm, bool)>, String> {
    let mut out = Vec::new();
    for (i, line) in table.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!("line {}: expected 7 columns, got {}", i + 1, fields.len()));
        }
        let parse = |f: &str, what: &str| -> Result<f64, String> {
            f.parse()
                .map_err(|_| format!("line {}: bad {what} {f:?}", i + 1))
        };
        out.push((
            Psm {
                query_id: parse(fields[0], "query id")? as u32,
                reference_id: parse(fields[1], "reference id")? as u32,
                score: parse(fields[3], "score")?,
                is_decoy: fields[4] == "1",
                precursor_delta: parse(fields[5], "delta")?,
            },
            fields[6] == "1",
        ));
    }
    Ok(out)
}

/// `hdoms chip`: capacity/latency planning for a library on MLC RRAM.
pub fn chip(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["bits", "dim", "refs", "activated-rows"])?;
    let bits: u8 = flags.get_or("bits", 3)?;
    let dim: u64 = flags.get_or("dim", 8192)?;
    let refs: u64 = flags.get_or("refs", 1_000_000)?;
    let activated: u64 = flags.get_or("activated-rows", 64)?;
    if !(1..=3).contains(&bits) {
        return Err("--bits must be 1, 2 or 3".to_owned());
    }

    let chip = ChipSpec::paper_chip(MlcConfig::with_bits(bits));
    let mapping = hdoms_core::mapping::LibraryMapping::plan_on_chip(&chip, refs, dim, activated);
    println!("chip: {} tiles of {}x{} cells, {} bits/cell", chip.tiles, chip.rows, chip.cols, bits);
    println!(
        "dense storage: {} hypervectors of {dim} bits ({}x the 1-bit capacity)",
        chip.hypervector_capacity(dim as usize),
        chip.density_vs_slc(),
    );
    println!(
        "search fabric for {refs} references: {} tiles ({} chips), utilisation {:.1}%",
        mapping.tiles(),
        mapping.chips_needed(chip.tiles as u64),
        mapping.utilisation() * 100.0,
    );
    println!(
        "one query scores the whole resident library in {} sensing cycles \
         ({} activated rows/cycle) — independent of library size",
        mapping.cycles_per_query(),
        activated,
    );
    let model = hdoms_core::perf::RramModel {
        activated_rows: activated as f64,
        parallel_tiles: mapping.tiles() as f64,
        ..hdoms_core::perf::RramModel::default()
    };
    let shape = hdoms_core::perf::WorkloadShape {
        queries: 16_000.0,
        references: refs as f64,
        mean_candidates: refs as f64 * 0.1,
        mean_peaks: 100.0,
        dim: dim as f64,
        chunks: 128.0,
    };
    println!(
        "16k-query open search on this fabric: {:.3} ms, {:.2} J (model of §5.3.3)",
        model.time_s(&shape) * 1e3,
        model.energy_j(&shape),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psm_table_roundtrip() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        let outcome = pipeline.run_exact(&workload);
        let table = render_psm_table(&workload, &outcome);
        let parsed = parse_psm_table(&table).unwrap();
        assert_eq!(parsed.len(), outcome.psms.len());
        let accepted = parsed.iter().filter(|(_, a)| *a).count();
        assert_eq!(accepted, outcome.identifications());
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let table = "header\n1\t2\t3\n";
        assert!(parse_psm_table(table).is_err());
    }
}
