//! The subcommands.

use crate::library_io::{read_library, write_library};
use crate::opts::Flags;
use hdoms_baselines::annsolo::{AnnSoloBackend, AnnSoloConfig};
use hdoms_baselines::hyperoms::HyperOmsConfig;
use hdoms_core::accelerator::AcceleratorConfig;
use hdoms_engine::{Engine, ReferenceMeta};
use hdoms_index::{
    IndexBuilder, IndexConfig, IndexReader, IndexedBackendKind, LibraryIndex, StreamingConfig,
    StreamingIndexBuilder,
};
use hdoms_ms::dataset::{ScaledLibrary, ScaledLibrarySpec, SyntheticWorkload, WorkloadSpec};
use hdoms_ms::library::SpectralLibrary;
use hdoms_ms::mgf::{read_mgf, write_mgf};
use hdoms_ms::spectrum::Spectrum;
use hdoms_obs::log::{Level, Logger};
use hdoms_oms::pipeline::PipelineOutcome;
use hdoms_oms::profile::{common_catalogue, DeltaMassProfile};
use hdoms_oms::psm::{parse_table, render_table, Psm};
use hdoms_oms::search::ExactBackendConfig;
use hdoms_oms::window::PrecursorWindow;
use hdoms_prefilter::PrefilterConfig;
use hdoms_rram::chip::ChipSpec;
use hdoms_rram::config::MlcConfig;
use hdoms_serve::net::{serve_listener, serve_stdio, Client};
use hdoms_serve::protocol::{QueryRequest, QuerySpectrum, Request, Response, WindowKind};
use hdoms_serve::scheduler::Tier;
use hdoms_serve::server::Server;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// `hdoms generate`: synthesise a workload, export query + library MGF.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["out-queries", "out-library", "preset", "scale", "seed"])?;
    let out_queries = flags.require("out-queries")?;
    let out_library = flags.require("out-library")?;
    let scale: f64 = flags.get_or("scale", 0.01)?;
    let seed: u64 = flags.get_or("seed", 0xF1605)?;
    let spec = match flags.get("preset").unwrap_or("iprg2012") {
        "iprg2012" => WorkloadSpec::iprg2012(scale),
        "hek293" => WorkloadSpec::hek293(scale),
        "tiny" => WorkloadSpec::tiny(),
        other => return Err(format!("unknown preset {other:?}")),
    };
    let workload = SyntheticWorkload::generate(&spec, seed);

    let mut queries_file = Vec::new();
    write_mgf(&mut queries_file, &workload.queries).map_err(|e| e.to_string())?;
    fs::write(out_queries, queries_file).map_err(|e| e.to_string())?;

    let mut library_file = Vec::new();
    write_library(&mut library_file, &workload.library).map_err(|e| e.to_string())?;
    fs::write(out_library, library_file).map_err(|e| e.to_string())?;

    println!(
        "wrote {} query spectra to {out_queries} and {} library spectra \
         ({} decoys) to {out_library}  [{}]",
        workload.queries.len(),
        workload.library.len(),
        workload.library.decoy_count(),
        spec.name,
    );
    Ok(())
}

/// Read query spectra from an MGF file.
fn read_queries(path: &str) -> Result<Vec<Spectrum>, String> {
    let bytes = fs::read(path).map_err(|e| e.to_string())?;
    let queries: Vec<Spectrum> = read_mgf(bytes.as_slice())
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|m| m.spectrum)
        .collect();
    if queries.is_empty() {
        return Err(format!("no query spectra in {path}"));
    }
    Ok(queries)
}

/// Read an annotated library MGF.
fn read_library_file(path: &str) -> Result<SpectralLibrary, String> {
    let bytes = fs::read(path).map_err(|e| e.to_string())?;
    let library = read_library(&bytes)?;
    if library.is_empty() {
        return Err(format!("no library spectra in {path}"));
    }
    Ok(library)
}

/// What `search`/`compare` run a query batch against.
#[allow(clippy::large_enum_variant)] // one instance per invocation
enum SearchTarget<'a> {
    /// A raw library: the engine is built cold before searching.
    Cold(&'a SpectralLibrary),
    /// A prebuilt index, moved into the engine (no metadata copy).
    Warm(LibraryIndex),
}

/// Wire the one engine every search path runs through: cold builds
/// (`exact`/`hyperoms`/`rram` encode the library and shard it;
/// `annsolo` plugs its backend in directly) and warm index loads
/// (sharded by default, flat with `--sharded false`).
fn engine_for(
    spec: &str,
    target: SearchTarget<'_>,
    dim: usize,
    sharded: bool,
    threads: usize,
) -> Result<Engine, String> {
    let engine = match target {
        SearchTarget::Cold(library) => {
            let kind = match spec {
                "exact" => {
                    let mut config = ExactBackendConfig::default();
                    config.encoder.dim = dim;
                    IndexedBackendKind::Exact(config)
                }
                "hyperoms" => IndexedBackendKind::HyperOms(HyperOmsConfig {
                    dim,
                    ..HyperOmsConfig::default()
                }),
                "rram" => {
                    let mut config = AcceleratorConfig::default();
                    config.encoder.dim = dim;
                    IndexedBackendKind::Rram(config)
                }
                "annsolo" => {
                    let config = AnnSoloConfig {
                        threads,
                        ..AnnSoloConfig::default()
                    };
                    let backend = AnnSoloBackend::build(library, config);
                    return Ok(Engine::from_backend(
                        Box::new(backend),
                        config.preprocess,
                        ReferenceMeta::from_library(library),
                        threads,
                    ));
                }
                other => {
                    return Err(format!(
                        "backend {other:?} needs a prebuilt index \
                         (exact|annsolo|hyperoms|rram run cold)"
                    ))
                }
            };
            Engine::from_library(
                library,
                IndexConfig {
                    kind,
                    threads,
                    ..IndexConfig::default()
                },
            )
        }
        SearchTarget::Warm(index) => {
            if sharded {
                Engine::from_index(index, threads).map_err(|e| e.to_string())?
            } else {
                Engine::from_index_flat(index, threads).map_err(|e| e.to_string())?
            }
        }
    };
    Ok(engine)
}

fn parse_window(flags: &Flags) -> Result<PrecursorWindow, String> {
    match flags.get("window").unwrap_or("open") {
        "open" => Ok(PrecursorWindow::open_default()),
        "standard" => Ok(PrecursorWindow::standard_default()),
        other => Err(format!("unknown window {other:?} (open|standard)")),
    }
}

/// `hdoms search`: MGF queries vs an annotated-MGF library (cold build)
/// or a prebuilt `.hdx` index (warm load) → PSM table.
pub fn search(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "queries",
        "library",
        "index",
        "out",
        "backend",
        "window",
        "fdr",
        "dim",
        "seed",
        "sharded",
        "threads",
        "prefilter",
    ])?;
    let queries_path = flags.require("queries")?;
    let out_path = flags.require("out")?;
    let fdr: f64 = flags.get_or("fdr", 0.01)?;
    let dim: usize = flags.get_or("dim", 8192)?;
    let sharded: bool = flags.get_or("sharded", true)?;
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;
    let window = parse_window(&flags)?;
    let backend_name = flags.get("backend").unwrap_or("exact").to_owned();
    let prefilter = PrefilterConfig::parse(flags.get("prefilter").unwrap_or("off"))?;

    let queries = read_queries(queries_path)?;
    let loaded_library;
    let target = match (flags.get("index"), flags.get("library")) {
        (Some(_), _) if flags.get("backend").is_some() => {
            return Err(
                "--backend applies to cold searches; a prebuilt --index already fixes \
                 its backend (use --sharded true|false to pick the search mode)"
                    .to_owned(),
            )
        }
        (Some(index_path), _) => {
            // Mapped by default: the index file is searched in place
            // from one backing buffer (v1 files fall back to copying).
            let loaded_index = IndexReader::with_threads(threads)
                .open_mapped_with(Path::new(index_path))
                .map_err(|e| e.to_string())?;
            SearchTarget::Warm(loaded_index)
        }
        (None, Some(library_path)) => {
            loaded_library = read_library_file(library_path)?;
            SearchTarget::Cold(&loaded_library)
        }
        (None, None) => return Err("search needs --library or --index".to_owned()),
    };

    let mut engine = engine_for(&backend_name, target, dim, sharded, threads)?;
    engine
        .set_prefilter(prefilter)
        .map_err(|e| format!("--prefilter {}: {e}", prefilter.render()))?;
    let engine = Arc::new(engine);
    let (outcome, _) = engine.search(&queries, window, fdr);

    fs::write(out_path, render_table(engine.peptides(), &outcome)).map_err(|e| e.to_string())?;
    println!(
        "{}: {} of {} queries identified at {:.1}% FDR (threshold score {:.4}); \
         table written to {out_path}",
        outcome.backend_name,
        outcome.identifications(),
        outcome.total_queries,
        fdr * 100.0,
        outcome.threshold_score,
    );
    Ok(())
}

/// `hdoms index`: build / info / append on persistent library indexes.
pub fn index(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("index needs a subcommand: build | info | append".to_owned());
    };
    match sub.as_str() {
        "build" => index_build(rest),
        "info" => index_info(rest),
        "append" => index_append(rest),
        other => Err(format!(
            "unknown index subcommand {other:?} (build|info|append)"
        )),
    }
}

/// The indexable backend kinds (`annsolo` has no persistent encoding and
/// stays cold-build only).
fn backend_kind(spec: &str, dim: usize) -> Result<IndexedBackendKind, String> {
    match spec {
        "exact" => {
            let mut config = ExactBackendConfig::default();
            config.encoder.dim = dim;
            Ok(IndexedBackendKind::Exact(config))
        }
        "hyperoms" => Ok(IndexedBackendKind::HyperOms(HyperOmsConfig {
            dim,
            ..HyperOmsConfig::default()
        })),
        "rram" => {
            let mut config = AcceleratorConfig::default();
            config.encoder.dim = dim;
            Ok(IndexedBackendKind::Rram(config))
        }
        other => Err(format!("unknown backend {other:?} (exact|hyperoms|rram)")),
    }
}

/// Above this estimated hypervector payload, `index build --stream auto`
/// switches to the spill-based streaming builder: the in-memory path
/// holds the payload at least twice (reference table + serialised
/// image), which at a GiB of payload means multiple GiB of peak heap.
const STREAM_AUTO_PAYLOAD_BYTES: u64 = 1 << 30;

fn index_build(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "library",
        "out",
        "backend",
        "dim",
        "shard-size",
        "threads",
        "stream",
        "spill-threshold",
    ])?;
    let library_path = flags.require("library")?;
    let out_path = flags.require("out")?;
    let dim: usize = flags.get_or("dim", 8192)?;
    let shard_size: usize = flags.get_or("shard-size", 1024)?;
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;
    let stream_flag = flags.get("stream").unwrap_or("auto");
    let spill_threshold: usize = flags.get_or("spill-threshold", 8192)?;
    if shard_size == 0 {
        return Err("--shard-size must be positive".to_owned());
    }
    if spill_threshold == 0 {
        return Err("--spill-threshold must be positive".to_owned());
    }

    let kind = backend_kind(flags.get("backend").unwrap_or("exact"), dim)?;
    let library = read_library_file(library_path)?;

    // Guardrail: pick the streaming builder by default once the encoded
    // payload is large enough that holding it (twice) in memory hurts.
    let estimated_payload = (library.len() * dim.div_ceil(64) * 8) as u64;
    let streaming = match stream_flag {
        "on" => true,
        "off" => false,
        "auto" => estimated_payload > STREAM_AUTO_PAYLOAD_BYTES,
        other => return Err(format!("invalid --stream {other:?} (auto|on|off)")),
    };
    Logger::stderr(Level::Info, false)
        .info("index.build")
        .str("mode", if streaming { "streaming" } else { "in-memory" })
        .str("stream", stream_flag)
        .u64("entries", library.len() as u64)
        .u64("estimated_payload_bytes", estimated_payload)
        .u64("spill_threshold", spill_threshold as u64)
        .emit();

    let start = std::time::Instant::now();
    if streaming {
        let config = StreamingConfig {
            index: IndexConfig {
                kind,
                entries_per_shard: shard_size,
                threads,
            },
            spill_threshold,
        };
        let report =
            StreamingIndexBuilder::build_from_library(config, Path::new(out_path), &library)
                .map_err(|e| e.to_string())?;
        println!(
            "indexed {} references ({} rejected) into {} shards in {:.2} s \
             (streaming, {} bytes spilled) → {out_path}",
            report.build_stats.references_stored,
            report.build_stats.references_rejected,
            report.shard_count,
            start.elapsed().as_secs_f64(),
            report.spilled_bytes,
        );
        return Ok(());
    }
    let index = IndexBuilder::new(IndexConfig {
        kind,
        entries_per_shard: shard_size,
        threads,
    })
    .from_library(&library);
    let build_s = start.elapsed().as_secs_f64();
    index
        .write(Path::new(out_path))
        .map_err(|e| e.to_string())?;
    println!(
        "indexed {} references ({} rejected) into {} shards in {:.2} s → {out_path}",
        index.build_stats().references_stored,
        index.build_stats().references_rejected,
        index.shards().len(),
        build_s,
    );
    Ok(())
}

/// `hdoms synth`: scale a synthetic library preset by an augmentation
/// factor and stream it straight into a `.hdx` index — entries are
/// generated, encoded, and spilled on the fly, so the library is never
/// materialised and the scale is bounded by disk, not RAM.
pub fn synth(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "out",
        "preset",
        "scale",
        "factor",
        "seed",
        "backend",
        "dim",
        "shard-size",
        "threads",
        "spill-threshold",
    ])?;
    let out_path = flags.require("out")?;
    let scale: f64 = flags.get_or("scale", 0.01)?;
    let factor: usize = flags.get_or("factor", 1)?;
    let seed: u64 = flags.get_or("seed", 0xF1605)?;
    let dim: usize = flags.get_or("dim", 8192)?;
    let shard_size: usize = flags.get_or("shard-size", 1024)?;
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;
    let spill_threshold: usize = flags.get_or("spill-threshold", 8192)?;
    if factor == 0 {
        return Err("--factor must be positive".to_owned());
    }
    if shard_size == 0 {
        return Err("--shard-size must be positive".to_owned());
    }
    if spill_threshold == 0 {
        return Err("--spill-threshold must be positive".to_owned());
    }
    let base = match flags.get("preset").unwrap_or("tiny") {
        "iprg2012" => WorkloadSpec::iprg2012(scale),
        "hek293" => WorkloadSpec::hek293(scale),
        "tiny" => WorkloadSpec::tiny(),
        other => return Err(format!("unknown preset {other:?}")),
    };
    let kind = backend_kind(flags.get("backend").unwrap_or("exact"), dim)?;
    let entries = 2usize
        .checked_mul(base.reference_peptides)
        .and_then(|n| n.checked_mul(factor))
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or_else(|| {
            format!(
                "scaled library exceeds the u32 id space \
                 (2 × {} peptides × factor {factor})",
                base.reference_peptides
            )
        })?;

    Logger::stderr(Level::Info, false)
        .info("synth.build")
        .str("preset", &base.name)
        .u64("factor", factor as u64)
        .u64("entries", entries as u64)
        .u64("dim", dim as u64)
        .u64("spill_threshold", spill_threshold as u64)
        .emit();

    let scaled = ScaledLibrary::new(ScaledLibrarySpec { base, factor, seed });
    let config = StreamingConfig {
        index: IndexConfig {
            kind,
            entries_per_shard: shard_size,
            threads,
        },
        spill_threshold,
    };
    let start = std::time::Instant::now();
    let report = StreamingIndexBuilder::build_from_iter(config, Path::new(out_path), scaled.iter())
        .map_err(|e| e.to_string())?;
    println!(
        "synthesised {} references (factor {factor}, {} stored, {} rejected) \
         into {} shards in {:.2} s → {out_path}",
        report.entry_count,
        report.build_stats.references_stored,
        report.build_stats.references_rejected,
        report.shard_count,
        start.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn index_info(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["index"])?;
    let index_path = flags.require("index")?;
    let bytes = fs::metadata(index_path).map_err(|e| e.to_string())?.len();
    let index = IndexReader::open(Path::new(index_path)).map_err(|e| e.to_string())?;
    let stats = index.build_stats();
    println!("index {index_path} ({bytes} bytes)");
    println!(
        "  backend {}  dim {}  entries {}  shards {}",
        index.kind().name(),
        index.dim(),
        index.entry_count(),
        index.shards().len(),
    );
    println!(
        "  stored {}  rejected {}  mean encode BER {:.4}",
        stats.references_stored, stats.references_rejected, stats.mean_encode_ber,
    );
    if let Some(mlc) = index.mlc_state() {
        println!(
            "  MLC state: {} differential weight pairs, σ_δ {:.4}",
            mlc.w_eff.len(),
            mlc.sigma_delta,
        );
    }
    for (i, shard) in index.shards().iter().enumerate() {
        let (lo, hi) = match (shard.mass_lo(), shard.mass_hi()) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => (f64::NAN, f64::NAN),
        };
        println!(
            "  shard {i:>3}: {:>6} entries, {lo:>9.2} – {hi:>9.2} Da",
            shard.entries.len(),
        );
    }
    Ok(())
}

fn index_append(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["index", "library", "out", "threads"])?;
    let index_path = flags.require("index")?;
    let library_path = flags.require("library")?;
    let out_path = flags.get("out").unwrap_or(index_path).to_owned();
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;

    let mut index = IndexReader::with_threads(threads)
        .open_with(Path::new(index_path))
        .map_err(|e| e.to_string())?;
    let extra = read_library_file(library_path)?;
    let before = index.entry_count();
    index.append_entries(extra.entries(), threads);
    index
        .write(Path::new(&out_path))
        .map_err(|e| e.to_string())?;
    println!(
        "appended {} references ({} → {}) across {} shards → {out_path}",
        extra.len(),
        before,
        index.entry_count(),
        index.shards().len(),
    );
    Ok(())
}

/// `hdoms compare`: run two backends over the same queries and report
/// agreement — e.g. a cold `exact` build vs a warm `index` load.
pub fn compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "queries",
        "library",
        "index",
        "backend-a",
        "backend-b",
        "window",
        "fdr",
        "dim",
        "threads",
    ])?;
    let queries_path = flags.require("queries")?;
    let spec_a = flags.require("backend-a")?.to_owned();
    let spec_b = flags.require("backend-b")?.to_owned();
    let fdr: f64 = flags.get_or("fdr", 0.01)?;
    let dim: usize = flags.get_or("dim", 8192)?;
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;
    let window = parse_window(&flags)?;

    let queries = read_queries(queries_path)?;
    let library = flags.get("library").map(read_library_file).transpose()?;
    let loaded_index = flags
        .get("index")
        .map(|p| {
            IndexReader::with_threads(threads)
                .open_mapped_with(Path::new(p))
                .map_err(|e| e.to_string())
        })
        .transpose()?;

    let run_spec = |spec: &str| -> Result<PipelineOutcome, String> {
        let (target, backend_name, sharded) = match spec {
            "index" | "index-sharded" => {
                let Some(index) = &loaded_index else {
                    return Err(format!("backend spec {spec:?} needs --index"));
                };
                // Clone here (not in engine_for): both compare specs may
                // target the same loaded index.
                (
                    SearchTarget::Warm(index.clone()),
                    index.kind().name().to_owned(),
                    spec == "index-sharded",
                )
            }
            cold => {
                let Some(library) = &library else {
                    return Err(format!("backend spec {cold:?} needs --library"));
                };
                (SearchTarget::Cold(library), cold.to_owned(), false)
            }
        };
        let engine = Arc::new(engine_for(&backend_name, target, dim, sharded, threads)?);
        let (outcome, _) = engine.search(&queries, window, fdr);
        Ok(outcome)
    };

    let a = run_spec(&spec_a)?;
    let b = run_spec(&spec_b)?;

    let accepted_a = a.accepted_query_ids();
    let accepted_b = b.accepted_query_ids();
    let both = accepted_a.intersection(&accepted_b).count();
    let union = accepted_a.union(&accepted_b).count();
    let identical_psms = a.psms == b.psms;
    println!(
        "A [{}] {} identifications",
        a.backend_name,
        a.identifications()
    );
    println!(
        "B [{}] {} identifications",
        b.backend_name,
        b.identifications()
    );
    println!(
        "agreement: {both} accepted by both, {} only A, {} only B (Jaccard {:.3})",
        accepted_a.len() - both,
        accepted_b.len() - both,
        if union == 0 {
            1.0
        } else {
            both as f64 / union as f64
        },
    );
    println!("psm tables identical: {identical_psms}");
    Ok(())
}

/// `hdoms profile`: delta-mass profile of an accepted-PSM table.
pub fn profile(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["psms", "bin-width", "min-count"])?;
    let path = flags.require("psms")?;
    let bin_width: f64 = flags.get_or("bin-width", 0.01)?;
    let min_count: usize = flags.get_or("min-count", 3)?;
    let table = fs::read_to_string(path).map_err(|e| e.to_string())?;
    let psms = parse_table(&table)?;
    let accepted: Vec<Psm> = psms
        .into_iter()
        .filter(|(_, acc)| *acc)
        .map(|(p, _)| p)
        .collect();
    if accepted.is_empty() {
        return Err("no accepted PSMs in the table".to_owned());
    }
    let profile = DeltaMassProfile::from_psms(&accepted, bin_width);
    let catalogue = common_catalogue();
    println!(
        "{} accepted PSMs; delta-mass peaks (≥{min_count}):",
        profile.total()
    );
    println!("{:>12}  {:>6}  annotation", "delta (Da)", "PSMs");
    for (peak, name) in profile.annotate(min_count, &catalogue, 3.0 * bin_width) {
        println!(
            "{:>12.4}  {:>6}  {}",
            peak.delta_da,
            peak.count,
            name.unwrap_or("(unexplained)")
        );
    }
    Ok(())
}

/// `hdoms serve`: load `.hdx` indexes once, keep their backends resident,
/// and answer query batches over TCP or stdio until killed.
///
/// Concurrent batches queue through the shared scheduler:
/// `--workers` bounds total in-flight search parallelism (default: the
/// machine), `--queue-depth` bounds waiting batches before submissions
/// are rejected with the structured `busy` error, and `--deadline-ms`
/// sheds batches that wait longer than the soft deadline (0 = never).
/// Tiered serving: `--interactive-weight` sets how many interactive
/// admissions each batch admission is worth under contention,
/// `--interactive-queue-depth` bounds the interactive queue separately,
/// `--coalesce-window-ms` merges interactive queries with identical
/// parameters into one engine batch, and `--memory-budget` bounds the
/// bytes of mapped shard hypervectors kept resident (cold shards are
/// evicted and refault on demand). See `docs/SCHEDULER.md` for tuning.
///
/// Observability: `--metrics <host:port>` binds a Prometheus-style text
/// exposition endpoint over the server's metrics registry;
/// `--log-level off|error|warn|info|debug` filters the structured log
/// on stderr (default `info`), and `--log-json true` switches it from
/// text lines to JSON lines. See `docs/OBSERVABILITY.md`.
pub fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "index",
        "listen",
        "stdio",
        "threads",
        "workers",
        "queue-depth",
        "deadline-ms",
        "interactive-weight",
        "interactive-queue-depth",
        "coalesce-window-ms",
        "memory-budget",
        "metrics",
        "log-level",
        "log-json",
        "prefilter",
    ])?;
    let threads: usize = flags.get_or("threads", hdoms_hdc::parallel::default_threads())?;
    let workers: usize = flags.get_or("workers", threads)?;
    let queue_depth: usize =
        flags.get_or("queue-depth", hdoms_serve::scheduler::DEFAULT_QUEUE_DEPTH)?;
    let deadline_ms: u64 = flags.get_or("deadline-ms", 0)?;
    let interactive_weight: usize = flags.get_or(
        "interactive-weight",
        hdoms_serve::scheduler::DEFAULT_INTERACTIVE_WEIGHT,
    )?;
    // The interactive queue matches the batch queue bound unless bounded
    // separately.
    let interactive_queue_depth: usize = flags.get_or("interactive-queue-depth", queue_depth)?;
    let coalesce_window_ms: u64 = flags.get_or("coalesce-window-ms", 0)?;
    let memory_budget: u64 = flags.get_or("memory-budget", 0)?;
    let stdio: bool = flags.get_or("stdio", false)?;
    let listen = flags.get("listen");
    let metrics_addr = flags.get("metrics");
    let log_json: bool = flags.get_or("log-json", false)?;
    let prefilter = PrefilterConfig::parse(flags.get("prefilter").unwrap_or("off"))?;
    let log_level = {
        let spelling = flags.get("log-level").unwrap_or("info");
        Level::parse(spelling)
            .ok_or_else(|| format!("unknown log level {spelling:?} (off|error|warn|info|debug)"))?
    };
    let specs = flags.get_all("index");
    if specs.is_empty() {
        return Err("serve needs at least one --index <name>=<path.hdx>".to_owned());
    }
    match (listen, stdio) {
        (Some(_), true) => return Err("--listen and --stdio are exclusive".to_owned()),
        (None, false) => return Err("serve needs --listen <host:port> or --stdio true".to_owned()),
        _ => {}
    }

    let logger = Logger::stderr(log_level, log_json);
    let mut server = Server::with_scheduler(
        threads,
        hdoms_serve::scheduler::SchedulerConfig {
            workers,
            queue_depth,
            deadline_ms,
            interactive_weight,
            interactive_queue_depth,
        },
    );
    server.set_logger(logger.clone());
    server.set_prefilter(prefilter);
    server.set_coalesce_window_ms(coalesce_window_ms);
    server.set_memory_budget(memory_budget);
    logger
        .info("serve.scheduler")
        .u64("workers", workers as u64)
        .u64("queue_depth", queue_depth as u64)
        .u64("deadline_ms", deadline_ms)
        .u64("interactive_weight", interactive_weight as u64)
        .u64("interactive_queue_depth", interactive_queue_depth as u64)
        .u64("coalesce_window_ms", coalesce_window_ms)
        .u64("memory_budget", memory_budget)
        .emit();
    if !prefilter.is_off() {
        logger
            .info("serve.prefilter")
            .str("config", prefilter.render())
            .emit();
    }
    for spec in specs {
        let Some((name, path)) = spec.split_once('=') else {
            return Err(format!("--index takes <name>=<path.hdx>, got {spec:?}"));
        };
        // Resident indexes are mapped: one backing buffer per file,
        // searched in place for the lifetime of the server.
        let index = IndexReader::with_threads(threads)
            .open_mapped_with(Path::new(path))
            .map_err(|e| format!("loading {path}: {e}"))?;
        server.add_index(name, index).map_err(|e| e.to_string())?;
        let resident = server.summaries().pop().expect("just added");
        logger
            .info("serve.resident")
            .str("name", name)
            .str("backend", resident.backend)
            .u64("entries", resident.entries as u64)
            .u64("shards", resident.shards as u64)
            .u64("dim", resident.dim as u64)
            .emit();
    }

    if let Some(addr) = metrics_addr {
        let bound = hdoms_obs::export::spawn_exposition(addr, Arc::clone(server.registry()))
            .map_err(|e| format!("bind metrics {addr}: {e}"))?;
        logger
            .info("serve.metrics")
            .str("addr", bound.to_string())
            .emit();
    }

    if stdio {
        logger
            .info("serve.start")
            .str("transport", "stdio")
            .str("kernel", hdoms_hdc::kernels::active().name())
            .u64("indexes", server.summaries().len() as u64)
            .emit();
        return serve_stdio(&server).map_err(|e| e.to_string());
    }
    let addr = listen.expect("checked above");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    logger
        .info("serve.start")
        .str("transport", "tcp")
        .str(
            "addr",
            listener
                .local_addr()
                .map_err(|e| e.to_string())?
                .to_string(),
        )
        .str("kernel", hdoms_hdc::kernels::active().name())
        .u64("indexes", server.summaries().len() as u64)
        .emit();
    serve_listener(Arc::new(server), listener).map_err(|e| e.to_string())
}

/// `hdoms query`: send MGF queries to a running `hdoms serve` and write
/// the returned PSM table (byte-identical to a local `search --index`).
///
/// With `--session true` the batches stream through one server-side
/// session and FDR is filtered **once over all of them** at finalize —
/// so any `--batch-size` reproduces the local single-run table. Without
/// it each batch is filtered alone (the per-batch compatibility mode).
/// `--tier interactive` requests the priority class (and, per batch,
/// eligibility for server-side coalescing); `--prefilter` overrides the
/// server's default cascade per batch, or for the whole session when
/// combined with `--session true`.
pub fn query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&[
        "addr",
        "queries",
        "index",
        "out",
        "window",
        "fdr",
        "tier",
        "batch-size",
        "session",
        "prefilter",
    ])?;
    let addr = flags.require("addr")?;
    let queries_path = flags.require("queries")?;
    let index_name = flags.require("index")?;
    let out_path = flags.require("out")?;
    let fdr: f64 = flags.get_or("fdr", 0.01)?;
    let batch_size: usize = flags.get_or("batch-size", 0)?;
    let use_session: bool = flags.get_or("session", false)?;
    let tier = Tier::parse(flags.get("tier").unwrap_or("batch"))?;
    let prefilter = flags
        .get("prefilter")
        .map(PrefilterConfig::parse)
        .transpose()?;
    let window = WindowKind::parse(flags.get("window").unwrap_or("open"))?;

    let queries = read_queries(queries_path)?;
    let spectra: Vec<QuerySpectrum> = queries.iter().map(QuerySpectrum::from_spectrum).collect();
    let batches: Vec<&[QuerySpectrum]> = if batch_size == 0 {
        vec![&spectra[..]]
    } else {
        spectra.chunks(batch_size).collect()
    };

    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let fail = |response: Response| -> String {
        match response {
            Response::Error { code, message } => match code.name() {
                Some(code) => format!("server [{code}]: {message}"),
                None => format!("server: {message}"),
            },
            other => format!("unexpected response {other:?}"),
        }
    };

    let (rows, latency_ms, identifications, shards_touched, candidates_scored, backend);
    if use_session {
        // One server-side session: submit every batch, filter once.
        let session = match client.request(&Request::SessionOpen {
            index: index_name.to_owned(),
            window,
            tier,
            prefilter,
        })? {
            Response::SessionOpened { session, .. } => session,
            other => return Err(fail(other)),
        };
        // On any mid-stream failure, close the session (best effort) so
        // the server's session slot is not leaked before propagating.
        let abort = |client: &mut Client, message: String| {
            let _ = client.request(&Request::SessionClose { session });
            message
        };
        for batch in &batches {
            match client.request(&Request::SessionSubmit {
                session,
                spectra: batch.to_vec(),
            }) {
                Ok(Response::Receipt(_)) => {}
                Ok(other) => return Err(abort(&mut client, fail(other))),
                Err(message) => return Err(abort(&mut client, message)),
            }
        }
        let result = match client.request(&Request::SessionFinalize { session, fdr }) {
            Ok(Response::Result(result)) => result,
            Ok(other) => return Err(abort(&mut client, fail(other))),
            Err(message) => return Err(abort(&mut client, message)),
        };
        rows = result.rows;
        latency_ms = result.stats.latency_ms;
        identifications = result.stats.identifications;
        shards_touched = result.stats.shards_touched;
        candidates_scored = result.stats.candidates_scored;
        backend = result.stats.backend;
    } else {
        // Per-batch mode: each batch answered (and FDR-filtered) alone.
        let mut all_rows = Vec::new();
        let mut totals = (0.0f64, 0usize, 0usize, 0usize, String::new());
        for batch in &batches {
            let result = match client.request(&Request::Query(QueryRequest {
                index: index_name.to_owned(),
                window,
                fdr,
                tier,
                prefilter,
                spectra: batch.to_vec(),
            }))? {
                Response::Result(result) => result,
                other => return Err(fail(other)),
            };
            totals.0 += result.stats.latency_ms;
            totals.1 += result.stats.identifications;
            totals.2 += result.stats.shards_touched;
            totals.3 += result.stats.candidates_scored;
            totals.4 = result.stats.backend.clone();
            all_rows.extend(result.rows);
        }
        (
            rows,
            latency_ms,
            identifications,
            shards_touched,
            candidates_scored,
            backend,
        ) = (all_rows, totals.0, totals.1, totals.2, totals.3, totals.4);
    }

    fs::write(out_path, hdoms_oms::psm::render_table_rows(&rows)).map_err(|e| e.to_string())?;
    println!(
        "{backend} @ {addr} [{index_name}]: {identifications} of {} queries identified \
         at {:.1}% FDR in {} batch(es){}; {latency_ms:.1} ms server time, \
         {shards_touched} shard visits, {candidates_scored} candidates scored; \
         table written to {out_path}",
        queries.len(),
        fdr * 100.0,
        batches.len(),
        if use_session { " [one session]" } else { "" },
    );
    if batches.len() > 1 && !use_session {
        eprintln!(
            "note: FDR filtering is per batch; for a table identical to a local \
             `search --index`, send one batch (--batch-size 0) or stream them \
             through one session (--session true)"
        );
    }
    Ok(())
}

/// `hdoms chip`: capacity/latency planning for a library on MLC RRAM.
pub fn chip(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.check_known(&["bits", "dim", "refs", "activated-rows"])?;
    let bits: u8 = flags.get_or("bits", 3)?;
    let dim: u64 = flags.get_or("dim", 8192)?;
    let refs: u64 = flags.get_or("refs", 1_000_000)?;
    let activated: u64 = flags.get_or("activated-rows", 64)?;
    if !(1..=3).contains(&bits) {
        return Err("--bits must be 1, 2 or 3".to_owned());
    }

    let chip = ChipSpec::paper_chip(MlcConfig::with_bits(bits));
    let mapping = hdoms_core::mapping::LibraryMapping::plan_on_chip(&chip, refs, dim, activated);
    println!(
        "chip: {} tiles of {}x{} cells, {} bits/cell",
        chip.tiles, chip.rows, chip.cols, bits
    );
    println!(
        "dense storage: {} hypervectors of {dim} bits ({}x the 1-bit capacity)",
        chip.hypervector_capacity(dim as usize),
        chip.density_vs_slc(),
    );
    println!(
        "search fabric for {refs} references: {} tiles ({} chips), utilisation {:.1}%",
        mapping.tiles(),
        mapping.chips_needed(chip.tiles as u64),
        mapping.utilisation() * 100.0,
    );
    println!(
        "one query scores the whole resident library in {} sensing cycles \
         ({} activated rows/cycle) — independent of library size",
        mapping.cycles_per_query(),
        activated,
    );
    let model = hdoms_core::perf::RramModel {
        activated_rows: activated as f64,
        parallel_tiles: mapping.tiles() as f64,
        ..hdoms_core::perf::RramModel::default()
    };
    let shape = hdoms_core::perf::WorkloadShape {
        queries: 16_000.0,
        references: refs as f64,
        mean_candidates: refs as f64 * 0.1,
        mean_peaks: 100.0,
        dim: dim as f64,
        chunks: 128.0,
    };
    println!(
        "16k-query open search on this fabric: {:.3} ms, {:.2} J (model of §5.3.3)",
        model.time_s(&shape) * 1e3,
        model.energy_j(&shape),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};

    #[test]
    fn psm_table_roundtrip() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
        let pipeline = OmsPipeline::new(PipelineConfig::fast_test());
        let outcome = pipeline.run_exact(&workload);
        let peptides: Vec<String> = workload
            .library
            .iter()
            .map(|e| e.peptide.to_string())
            .collect();
        let table = render_table(&peptides, &outcome);
        let parsed = parse_table(&table).unwrap();
        assert_eq!(parsed.len(), outcome.psms.len());
        let accepted = parsed.iter().filter(|(_, a)| *a).count();
        assert_eq!(accepted, outcome.identifications());
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let table = "header\n1\t2\t3\n";
        assert!(parse_table(table).is_err());
    }
}
