//! `hdoms` — command-line open modification search.
//!
//! Subcommands:
//!
//! * `generate` — build a synthetic workload and export it as MGF files
//!   (queries + library with peptide/decoy annotations in the titles).
//! * `search` — run an open (or standard) search of query MGF against a
//!   library MGF with a chosen backend, writing a PSM table.
//! * `profile` — delta-mass profile of a PSM table.
//! * `chip` — plan a library deployment on MLC RRAM tiles and print the
//!   capacity/latency/energy summary.
//!
//! Run `hdoms help` (or any subcommand with `--help`) for usage.

mod commands;
mod library_io;
mod opts;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", opts::USAGE);
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "search" => commands::search(rest),
        "profile" => commands::profile(rest),
        "chip" => commands::chip(rest),
        "help" | "--help" | "-h" => {
            println!("{}", opts::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", opts::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
    }
}
