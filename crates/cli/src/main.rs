//! `hdoms` — command-line open modification search.
//!
//! Subcommands:
//!
//! * `generate` — build a synthetic workload and export it as MGF files
//!   (queries + library with peptide/decoy annotations in the titles).
//! * `synth` — scale a synthetic library preset by an augmentation
//!   factor and stream it directly into a `.hdx` index (never
//!   materialised, so library size is bounded by disk, not RAM).
//! * `index` — build, inspect or append to a persistent encoded library
//!   index (`.hdx`), so searches skip the one-time library encoding.
//! * `search` — run an open (or standard) search of query MGF against a
//!   library MGF — or a prebuilt `--index` — with a chosen backend,
//!   writing a PSM table.
//! * `compare` — run two backends over the same queries and report how
//!   their identifications agree (e.g. cold build vs warm index).
//! * `serve` — long-lived server: load `.hdx` indexes once, keep their
//!   backends resident, answer query batches over TCP or stdio.
//! * `query` — client for `serve`: send MGF queries to a running server
//!   and write the returned PSM table.
//! * `profile` — delta-mass profile of a PSM table.
//! * `chip` — plan a library deployment on MLC RRAM tiles and print the
//!   capacity/latency/energy summary.
//!
//! Run `hdoms help` (or any subcommand with `--help`) for usage.

mod commands;
mod library_io;
mod opts;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", opts::USAGE);
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "synth" => commands::synth(rest),
        "index" => commands::index(rest),
        "search" => commands::search(rest),
        "compare" => commands::compare(rest),
        "serve" => commands::serve(rest),
        "query" => commands::query(rest),
        "profile" => commands::profile(rest),
        "chip" => commands::chip(rest),
        "help" | "--help" | "-h" => {
            println!("{}", opts::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", opts::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
    }
}
