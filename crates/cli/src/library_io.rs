//! Annotated-MGF persistence for libraries and workloads.
//!
//! Plain MGF carries no peptide identities or target/decoy labels, so the
//! `generate` command embeds them in the `TITLE` line:
//!
//! ```text
//! TITLE=ref_42 peptide=ACDEFGHIK decoy=0
//! ```
//!
//! and `search` parses them back into a [`SpectralLibrary`]. Query files
//! are standard MGF and interoperate with any other tool.

use hdoms_ms::library::{LibraryEntry, SpectralLibrary};
use hdoms_ms::mgf::{read_mgf, MgfSpectrum};
use hdoms_ms::peptide::Peptide;
use hdoms_ms::spectrum::{Spectrum, SpectrumOrigin};
use std::io::Write;

/// Write a library as annotated MGF.
pub fn write_library<W: Write>(mut writer: W, library: &SpectralLibrary) -> std::io::Result<()> {
    for entry in library {
        let s = &entry.spectrum;
        writeln!(writer, "BEGIN IONS")?;
        writeln!(
            writer,
            "TITLE=ref_{} peptide={} decoy={}",
            s.id,
            entry.peptide,
            u8::from(entry.is_decoy)
        )?;
        writeln!(writer, "PEPMASS={:.6}", s.precursor_mz)?;
        writeln!(writer, "CHARGE={}+", s.precursor_charge)?;
        for p in s.peaks() {
            writeln!(writer, "{:.5} {:.3}", p.mz, p.intensity)?;
        }
        writeln!(writer, "END IONS")?;
    }
    Ok(())
}

/// Parse an annotated-MGF library back into a [`SpectralLibrary`].
///
/// # Errors
///
/// Returns a message when the MGF is malformed or a title lacks the
/// peptide/decoy annotations.
pub fn read_library(bytes: &[u8]) -> Result<SpectralLibrary, String> {
    let parsed = read_mgf(bytes).map_err(|e| e.to_string())?;
    let mut library = SpectralLibrary::new();
    for (index, MgfSpectrum { spectrum, title }) in parsed.into_iter().enumerate() {
        let title = title.ok_or_else(|| format!("library block {index} has no TITLE"))?;
        let mut peptide: Option<Peptide> = None;
        let mut decoy: Option<bool> = None;
        for token in title.split_whitespace() {
            if let Some(seq) = token.strip_prefix("peptide=") {
                // Strip any inline modification annotation (e.g. "[+79.97]").
                let clean: String = {
                    let mut inside = false;
                    seq.chars()
                        .filter(|c| {
                            match c {
                                '[' => inside = true,
                                ']' => inside = false,
                                _ => return !inside,
                            }
                            false
                        })
                        .collect()
                };
                peptide = Some(
                    Peptide::parse(&clean)
                        .map_err(|e| format!("library block {index}: bad peptide {seq:?}: {e}"))?,
                );
            } else if let Some(flag) = token.strip_prefix("decoy=") {
                decoy = Some(flag == "1");
            }
        }
        let peptide =
            peptide.ok_or_else(|| format!("library block {index} title lacks peptide="))?;
        let is_decoy = decoy.ok_or_else(|| format!("library block {index} title lacks decoy="))?;
        let origin = if is_decoy {
            SpectrumOrigin::Decoy
        } else {
            SpectrumOrigin::Target
        };
        let spectrum = Spectrum::new(
            index as u32,
            spectrum.precursor_mz,
            spectrum.precursor_charge,
            spectrum.peaks().to_vec(),
            origin,
        );
        library.push(LibraryEntry {
            spectrum,
            peptide,
            is_decoy,
        });
    }
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};

    #[test]
    fn library_roundtrip() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 3);
        let mut buffer = Vec::new();
        write_library(&mut buffer, &workload.library).unwrap();
        let read = read_library(&buffer).unwrap();
        assert_eq!(read.len(), workload.library.len());
        assert_eq!(read.decoy_count(), workload.library.decoy_count());
        for (orig, got) in workload.library.iter().zip(read.iter()) {
            assert_eq!(orig.is_decoy, got.is_decoy);
            assert_eq!(
                orig.peptide.residues(),
                got.peptide.residues(),
                "peptide must round-trip"
            );
            assert_eq!(orig.spectrum.peak_count(), got.spectrum.peak_count());
        }
    }

    #[test]
    fn missing_annotations_are_rejected() {
        let plain = "BEGIN IONS\nTITLE=nope\nPEPMASS=500.0\n100.0 1.0\nEND IONS\n";
        let err = read_library(plain.as_bytes()).unwrap_err();
        assert!(err.contains("peptide="), "{err}");
    }

    #[test]
    fn modified_peptide_title_is_parsed() {
        let text = "BEGIN IONS\nTITLE=ref_0 peptide=AC[+57.0215]DK decoy=0\n\
                    PEPMASS=500.0\nCHARGE=2+\n100.0 1.0\nEND IONS\n";
        let library = read_library(text.as_bytes()).unwrap();
        assert_eq!(library.get(0).unwrap().peptide.to_string(), "ACDK");
    }
}
