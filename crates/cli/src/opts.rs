//! Minimal flag parsing (the sanctioned dependency set has no clap).

/// Top-level usage text.
pub const USAGE: &str = "\
hdoms — open modification spectral library search (DAC 2024 reproduction)

USAGE:
  hdoms generate --out-queries <q.mgf> --out-library <lib.mgf>
                 [--preset iprg2012|hek293|tiny] [--scale <f64>] [--seed <u64>]
  hdoms synth    --out <lib.hdx> [--preset tiny|iprg2012|hek293]
                 [--scale <f64>] [--factor <usize>] [--seed <u64>]
                 [--backend exact|hyperoms|rram] [--dim <usize>]
                 [--shard-size <usize>] [--threads <usize>]
                 [--spill-threshold <usize>]
                 (scales a synthetic preset by --factor via deterministic
                  peak permutation + intensity augmentation and streams
                  it straight into an index — the library is generated,
                  encoded and spilled on the fly, never held in RAM.
                  See docs/SCALE.md)
  hdoms index build  --library <lib.mgf> --out <lib.hdx>
                     [--backend exact|hyperoms|rram] [--dim <usize>]
                     [--shard-size <usize>] [--threads <usize>]
                     [--stream auto|on|off] [--spill-threshold <usize>]
                     (--stream auto, the default, picks the bounded-memory
                      streaming builder once the estimated hypervector
                      payload exceeds 1 GiB; both builders emit the
                      identical image. See docs/SCALE.md)
  hdoms index info   --index <lib.hdx>
  hdoms index append --index <lib.hdx> --library <more.mgf> [--out <new.hdx>]
                     [--threads <usize>]
  hdoms search   --queries <q.mgf> (--library <lib.mgf> | --index <lib.hdx>)
                 --out <psms.tsv>
                 [--backend exact|annsolo|hyperoms|rram] [--window open|standard]
                 [--fdr <f64>] [--dim <usize>] [--seed <u64>]
                 [--sharded true|false] [--threads <usize>]
                 [--prefilter off|k=<usize>]
                 (--prefilter k=N narrows each precursor window to the
                  top-N sketch-scored candidates before the exact scan;
                  needs a sharded index. See docs/PREFILTER.md)
  hdoms compare  --queries <q.mgf> --backend-a <spec> --backend-b <spec>
                 [--library <lib.mgf>] [--index <lib.hdx>]
                 [--window open|standard] [--fdr <f64>] [--dim <usize>]
                 (spec: exact|annsolo|hyperoms|rram|index|index-sharded)
  hdoms serve    --index <name>=<lib.hdx> [--index <name2>=<more.hdx> ...]
                 (--listen <host:port> | --stdio true) [--threads <usize>]
                 [--workers <usize>] [--queue-depth <usize>]
                 [--deadline-ms <u64>] [--interactive-weight <usize>]
                 [--interactive-queue-depth <usize>]
                 [--coalesce-window-ms <u64>] [--memory-budget <bytes>]
                 [--metrics <host:port>]
                 [--log-level off|error|warn|info|debug] [--log-json true]
                 [--prefilter off|k=<usize>]
                 (--workers bounds total in-flight search parallelism,
                  --queue-depth bounds waiting batches before `busy`
                  rejections, --deadline-ms sheds batches that queue
                  too long. Tiered serving: --interactive-weight grants
                  that many interactive admissions per batch admission,
                  --interactive-queue-depth bounds the interactive queue
                  separately, --coalesce-window-ms merges interactive
                  queries with identical parameters into one engine
                  batch, --memory-budget caps resident mapped-shard
                  bytes with shard-LRU eviction; see docs/SCHEDULER.md.
                  --metrics exposes the registry Prometheus-style;
                  --log-level/--log-json tune the structured stderr log;
                  see docs/OBSERVABILITY.md. --prefilter sets the
                  default sketch cascade for every resident index; see
                  docs/PREFILTER.md)
  hdoms query    --addr <host:port> --queries <q.mgf> --index <name>
                 --out <psms.tsv> [--window open|standard] [--fdr <f64>]
                 [--tier interactive|batch] [--batch-size <usize>]
                 [--session true] [--prefilter off|k=<usize>]
                 (--session streams batches through one server-side
                  session: FDR is filtered once across all of them;
                  --tier picks the priority class batches are admitted
                  under; --prefilter overrides the server default per
                  batch, or for the whole session with --session true)
  hdoms profile  --psms <psms.tsv> [--bin-width <f64>] [--min-count <usize>]
  hdoms chip     [--bits 1|2|3] [--dim <usize>] [--refs <u64>]
                 [--activated-rows <usize>]
  hdoms help";

/// A parsed `--key value` flag list.
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parse `--key value` pairs; rejects stray positionals and dangling
    /// flags.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = &args[i];
            if !key.starts_with("--") {
                return Err(format!("unexpected argument {key:?}"));
            }
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag {key} needs a value"));
            };
            pairs.push((key[2..].to_owned(), value.clone()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    /// The raw string value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable `key`, in order (e.g. `serve`
    /// takes `--index name=path` once per resident index).
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// A required flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{key}")),
        }
    }

    /// Reject flags outside the allowed set (typos must not silently run
    /// a default configuration).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let flags = Flags::parse(&args(&["--scale", "0.5", "--seed", "9"])).unwrap();
        assert_eq!(flags.get("scale"), Some("0.5"));
        assert_eq!(flags.get_or("seed", 0u64).unwrap(), 9);
        assert_eq!(flags.get_or("dim", 8192usize).unwrap(), 8192);
    }

    #[test]
    fn rejects_positionals_and_dangling() {
        assert!(Flags::parse(&args(&["stray"])).is_err());
        assert!(Flags::parse(&args(&["--scale"])).is_err());
    }

    #[test]
    fn repeated_flags_collect_in_order() {
        let flags = Flags::parse(&args(&["--index", "a=1.hdx", "--index", "b=2.hdx"])).unwrap();
        assert_eq!(flags.get_all("index"), vec!["a=1.hdx", "b=2.hdx"]);
        assert_eq!(flags.get("index"), Some("a=1.hdx"));
        assert!(flags.get_all("missing").is_empty());
    }

    #[test]
    fn require_and_unknown() {
        let flags = Flags::parse(&args(&["--a", "1"])).unwrap();
        assert!(flags.require("a").is_ok());
        assert!(flags.require("b").is_err());
        assert!(flags.check_known(&["a"]).is_ok());
        assert!(flags.check_known(&["b"]).is_err());
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let flags = Flags::parse(&args(&["--seed", "banana"])).unwrap();
        assert!(flags.get_or("seed", 0u64).is_err());
    }
}
