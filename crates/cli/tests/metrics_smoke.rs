//! End-to-end smoke of the metrics pipeline, exactly as CI runs it:
//! spawn the real `hdoms` binary serving a tiny index over stdio with
//! `--metrics 127.0.0.1:0` and the JSON log, learn the bound exposition
//! address from the structured `serve.metrics` startup event, run one
//! query batch, scrape the endpoint over raw TCP, and assert the
//! Prometheus text carries a non-zero `hdoms_query_batches_total` plus
//! all four per-stage pipeline histograms.

use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_serve::protocol::{QuerySpectrum, Request, Response, WindowKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, Command, Stdio};

const THREADS: usize = 4;
const DIM: usize = 2048;

struct MeteredServer {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
    metrics_addr: String,
}

impl MeteredServer {
    fn spawn(index_path: &std::path::Path) -> MeteredServer {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hdoms"))
            .args([
                "serve",
                "--stdio",
                "true",
                "--threads",
                &THREADS.to_string(),
                "--index",
                &format!("smoke={}", index_path.display()),
                // Port 0: the OS picks; the serve.metrics event reports it.
                "--metrics",
                "127.0.0.1:0",
                "--log-json",
                "true",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn hdoms serve --stdio --metrics");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

        // The startup log on stderr is JSON lines; the serve.metrics
        // event carries the bound exposition address.
        let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
        let mut metrics_addr = String::new();
        let mut line = String::new();
        while metrics_addr.is_empty() {
            line.clear();
            let n = stderr.read_line(&mut line).expect("read server stderr");
            assert!(
                n > 0,
                "server exited before announcing its metrics endpoint"
            );
            if let Some(rest) = line.split("\"event\":\"serve.metrics\"").nth(1) {
                let addr = rest
                    .split("\"addr\":\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .expect("serve.metrics event carries an addr field");
                metrics_addr = addr.to_owned();
            }
        }
        MeteredServer {
            child,
            stdin,
            stdout,
            metrics_addr,
        }
    }

    fn request(&mut self, request: &Request) -> Response {
        let line = request.encode();
        self.stdin
            .write_all(line.as_bytes())
            .and_then(|()| self.stdin.write_all(b"\n"))
            .and_then(|()| self.stdin.flush())
            .expect("write request to server stdin");
        let mut answer = String::new();
        let n = self
            .stdout
            .read_line(&mut answer)
            .expect("read response from server stdout");
        assert!(n > 0, "server closed stdout while answering {line}");
        Response::decode(answer.trim_end()).expect("decodable response")
    }

    fn scrape(&self) -> String {
        let mut stream = TcpStream::connect(&self.metrics_addr).expect("connect to exposition");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("send scrape request");
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("read exposition response");
        response
    }
}

impl Drop for MeteredServer {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The value of a plain `name value` sample line in the exposition text.
fn sample(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("exposition is missing the {name} sample"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name} sample"))
}

#[test]
fn scraped_exposition_reports_the_served_batch() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 41414);
    let mut config = IndexConfig {
        entries_per_shard: 64,
        threads: THREADS,
        ..IndexConfig::default()
    };
    if let IndexedBackendKind::Exact(exact) = &mut config.kind {
        exact.encoder.dim = DIM;
    }
    let index = IndexBuilder::new(config).from_library(&workload.library);
    let index_path =
        std::env::temp_dir().join(format!("hdoms-metrics-smoke-{}.hdx", std::process::id()));
    index.write(&index_path).expect("persist smoke index");

    let mut server = MeteredServer::spawn(&index_path);

    // A scrape before any work: series exist, counters are zero.
    let cold = server.scrape();
    assert!(
        cold.starts_with("HTTP/1.0 200 OK"),
        "scrape answered {cold:?}"
    );
    assert!(
        cold.contains("text/plain; version=0.0.4"),
        "exposition content type missing"
    );
    assert_eq!(sample(&cold, "hdoms_query_batches_total"), 0.0);

    // One served batch over stdio.
    let spectra: Vec<QuerySpectrum> = workload
        .queries
        .iter()
        .map(QuerySpectrum::from_spectrum)
        .collect();
    let queries = spectra.len();
    let Response::Result(result) =
        server.request(&Request::Query(hdoms_serve::protocol::QueryRequest {
            index: "smoke".to_owned(),
            window: WindowKind::Open,
            fdr: 0.01,
            tier: Default::default(),
            prefilter: None,
            spectra,
        }))
    else {
        panic!("expected a query result");
    };
    assert!(result.stats.identifications > 0);

    // The scrape after it: the batch is visible, with every pipeline
    // stage accounted for.
    let warm = server.scrape();
    assert_eq!(sample(&warm, "hdoms_query_batches_total"), 1.0);
    assert_eq!(sample(&warm, "hdoms_queries_total"), queries as f64);
    for stage in ["encode", "candidates", "score", "finalize"] {
        let name = format!("hdoms_stage_{stage}_ms");
        assert!(
            warm.contains(&format!("# TYPE {name} histogram")),
            "exposition is missing the {name} histogram"
        );
        assert_eq!(
            sample(&warm, &format!("{name}_count")),
            1.0,
            "{name} missed the batch"
        );
    }
    assert_eq!(sample(&warm, "hdoms_batch_latency_ms_count"), 1.0);

    std::fs::remove_file(&index_path).ok();
}
