//! End-to-end smoke of the served session protocol, exactly as CI runs
//! it: build a tiny index, spawn the real `hdoms` binary serving it
//! over **stdio**, open a session, submit two batches, finalize, and
//! diff the returned PSM table against the local engine run. Also
//! exercises the per-batch `query` verb (one batch must equal the local
//! run too) so the compatibility path stays guarded.

use hdoms_engine::Engine;
use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::psm::{render_table, render_table_rows};
use hdoms_oms::window::PrecursorWindow;
use hdoms_serve::protocol::{QuerySpectrum, Request, Response, WindowKind};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;

const THREADS: usize = 4;
const DIM: usize = 2048;

struct StdioServer {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl StdioServer {
    fn spawn(index_path: &std::path::Path) -> StdioServer {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hdoms"))
            .args([
                "serve",
                "--stdio",
                "true",
                "--threads",
                &THREADS.to_string(),
                "--index",
                &format!("smoke={}", index_path.display()),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hdoms serve --stdio");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        StdioServer {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, request: &Request) -> Response {
        let line = request.encode();
        self.stdin
            .write_all(line.as_bytes())
            .and_then(|()| self.stdin.write_all(b"\n"))
            .and_then(|()| self.stdin.flush())
            .expect("write request to server stdin");
        let mut answer = String::new();
        let n = self
            .stdout
            .read_line(&mut answer)
            .expect("read response from server stdout");
        assert!(n > 0, "server closed stdout while answering {line}");
        Response::decode(answer.trim_end()).expect("decodable response")
    }
}

impl Drop for StdioServer {
    fn drop(&mut self) {
        // Closing stdin ends the stdio session; reap the child.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn served_stdio_session_matches_local_run() {
    // 1. A tiny workload and its persisted index.
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 31337);
    let mut config = IndexConfig {
        entries_per_shard: 64,
        threads: THREADS,
        ..IndexConfig::default()
    };
    if let IndexedBackendKind::Exact(exact) = &mut config.kind {
        exact.encoder.dim = DIM;
    }
    let index = IndexBuilder::new(config).from_library(&workload.library);
    let index_path =
        std::env::temp_dir().join(format!("hdoms-session-smoke-{}.hdx", std::process::id()));
    index.write(&index_path).expect("persist smoke index");

    // 2. The local ground truth: one engine run over all queries.
    let engine = Arc::new(Engine::from_index(index, THREADS).expect("warm engine"));
    let (outcome, _) = engine.search(&workload.queries, PrecursorWindow::open_default(), 0.01);
    let local_table = render_table(engine.peptides(), &outcome);

    // 3. A real served process over stdio.
    let mut server = StdioServer::spawn(&index_path);
    let spectra: Vec<QuerySpectrum> = workload
        .queries
        .iter()
        .map(QuerySpectrum::from_spectrum)
        .collect();

    // 4. Open a session, submit two batches, finalize.
    let Response::SessionOpened { session, .. } = server.request(&Request::SessionOpen {
        index: "smoke".to_owned(),
        window: WindowKind::Open,
        tier: Default::default(),
        prefilter: None,
    }) else {
        panic!("expected a session id");
    };
    let half = spectra.len() / 2;
    for (i, batch) in [&spectra[..half], &spectra[half..]].into_iter().enumerate() {
        let Response::Receipt(receipt) = server.request(&Request::SessionSubmit {
            session,
            spectra: batch.to_vec(),
        }) else {
            panic!("expected a receipt");
        };
        assert_eq!(receipt.batch, i + 1);
        assert_eq!(receipt.queries, batch.len());
    }
    let Response::Result(pooled) = server.request(&Request::SessionFinalize { session, fdr: 0.01 })
    else {
        panic!("expected the pooled result");
    };

    // 5. The diff that matters: two served batches + one finalize must
    //    reproduce the local single-run table byte-for-byte.
    assert_eq!(
        render_table_rows(&pooled.rows),
        local_table,
        "served 2-batch session table differs from the local run"
    );
    assert_eq!(pooled.stats.queries, workload.queries.len());
    assert!(pooled.stats.identifications > 0);

    // 6. The per-batch `query` verb (old behaviour) still matches the
    //    local run when everything goes in one batch.
    let Response::Result(single) =
        server.request(&Request::Query(hdoms_serve::protocol::QueryRequest {
            index: "smoke".to_owned(),
            window: WindowKind::Open,
            fdr: 0.01,
            tier: Default::default(),
            prefilter: None,
            spectra,
        }))
    else {
        panic!("expected a query result");
    };
    assert_eq!(render_table_rows(&single.rows), local_table);

    std::fs::remove_file(&index_path).ok();
}
