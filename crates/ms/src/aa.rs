//! Amino-acid residues and their monoisotopic masses.
//!
//! The twenty proteinogenic amino acids with standard monoisotopic residue
//! masses (the mass a residue contributes inside a peptide chain, i.e. the
//! free amino-acid mass minus one water).

use serde::{Deserialize, Serialize};

/// One of the twenty proteinogenic amino-acid residues.
///
/// Leucine and isoleucine are distinct variants even though their masses are
/// identical; search tools conventionally treat them as indistinguishable at
/// the spectrum level, which falls out naturally from equal masses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AminoAcid {
    Gly,
    Ala,
    Ser,
    Pro,
    Val,
    Thr,
    Cys,
    Leu,
    Ile,
    Asn,
    Asp,
    Gln,
    Lys,
    Glu,
    Met,
    His,
    Phe,
    Arg,
    Tyr,
    Trp,
}

impl AminoAcid {
    /// All twenty residues in a fixed order (useful for sampling).
    pub const ALL: [AminoAcid; 20] = [
        AminoAcid::Gly,
        AminoAcid::Ala,
        AminoAcid::Ser,
        AminoAcid::Pro,
        AminoAcid::Val,
        AminoAcid::Thr,
        AminoAcid::Cys,
        AminoAcid::Leu,
        AminoAcid::Ile,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Gln,
        AminoAcid::Lys,
        AminoAcid::Glu,
        AminoAcid::Met,
        AminoAcid::His,
        AminoAcid::Phe,
        AminoAcid::Arg,
        AminoAcid::Tyr,
        AminoAcid::Trp,
    ];

    /// Monoisotopic residue mass in daltons.
    ///
    /// ```
    /// use hdoms_ms::aa::AminoAcid;
    /// assert!((AminoAcid::Gly.monoisotopic_mass() - 57.02146).abs() < 1e-4);
    /// ```
    pub fn monoisotopic_mass(self) -> f64 {
        match self {
            AminoAcid::Gly => 57.021_463_72,
            AminoAcid::Ala => 71.037_113_79,
            AminoAcid::Ser => 87.032_028_41,
            AminoAcid::Pro => 97.052_763_87,
            AminoAcid::Val => 99.068_413_94,
            AminoAcid::Thr => 101.047_678_5,
            AminoAcid::Cys => 103.009_184_5,
            AminoAcid::Leu => 113.084_064_0,
            AminoAcid::Ile => 113.084_064_0,
            AminoAcid::Asn => 114.042_927_4,
            AminoAcid::Asp => 115.026_943_2,
            AminoAcid::Gln => 128.058_577_5,
            AminoAcid::Lys => 128.094_963_2,
            AminoAcid::Glu => 129.042_593_3,
            AminoAcid::Met => 131.040_484_6,
            AminoAcid::His => 137.058_911_9,
            AminoAcid::Phe => 147.068_413_9,
            AminoAcid::Arg => 156.101_111_0,
            AminoAcid::Tyr => 163.063_328_5,
            AminoAcid::Trp => 186.079_312_9,
        }
    }

    /// Single-letter IUPAC code.
    pub fn code(self) -> char {
        match self {
            AminoAcid::Gly => 'G',
            AminoAcid::Ala => 'A',
            AminoAcid::Ser => 'S',
            AminoAcid::Pro => 'P',
            AminoAcid::Val => 'V',
            AminoAcid::Thr => 'T',
            AminoAcid::Cys => 'C',
            AminoAcid::Leu => 'L',
            AminoAcid::Ile => 'I',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Gln => 'Q',
            AminoAcid::Lys => 'K',
            AminoAcid::Glu => 'E',
            AminoAcid::Met => 'M',
            AminoAcid::His => 'H',
            AminoAcid::Phe => 'F',
            AminoAcid::Arg => 'R',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Trp => 'W',
        }
    }

    /// Parse a single-letter IUPAC code.
    ///
    /// Returns `None` for characters that are not one of the twenty
    /// proteinogenic residues (case-sensitive, upper case expected).
    ///
    /// ```
    /// use hdoms_ms::aa::AminoAcid;
    /// assert_eq!(AminoAcid::from_code('K'), Some(AminoAcid::Lys));
    /// assert_eq!(AminoAcid::from_code('x'), None);
    /// ```
    pub fn from_code(code: char) -> Option<AminoAcid> {
        Some(match code {
            'G' => AminoAcid::Gly,
            'A' => AminoAcid::Ala,
            'S' => AminoAcid::Ser,
            'P' => AminoAcid::Pro,
            'V' => AminoAcid::Val,
            'T' => AminoAcid::Thr,
            'C' => AminoAcid::Cys,
            'L' => AminoAcid::Leu,
            'I' => AminoAcid::Ile,
            'N' => AminoAcid::Asn,
            'D' => AminoAcid::Asp,
            'Q' => AminoAcid::Gln,
            'K' => AminoAcid::Lys,
            'E' => AminoAcid::Glu,
            'M' => AminoAcid::Met,
            'H' => AminoAcid::His,
            'F' => AminoAcid::Phe,
            'R' => AminoAcid::Arg,
            'Y' => AminoAcid::Tyr,
            'W' => AminoAcid::Trp,
            _ => return None,
        })
    }

    /// Whether trypsin cleaves C-terminal to this residue (K or R).
    pub fn is_tryptic_site(self) -> bool {
        matches!(self, AminoAcid::Lys | AminoAcid::Arg)
    }
}

impl std::fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_twenty_distinct_residues() {
        let mut set = std::collections::BTreeSet::new();
        for aa in AminoAcid::ALL {
            set.insert(aa);
        }
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn code_roundtrip() {
        for aa in AminoAcid::ALL {
            assert_eq!(AminoAcid::from_code(aa.code()), Some(aa));
        }
    }

    #[test]
    fn leucine_isoleucine_isobaric() {
        assert_eq!(
            AminoAcid::Leu.monoisotopic_mass(),
            AminoAcid::Ile.monoisotopic_mass()
        );
    }

    #[test]
    fn masses_are_positive_and_ordered_sanely() {
        for aa in AminoAcid::ALL {
            let m = aa.monoisotopic_mass();
            assert!(m > 50.0 && m < 200.0, "{aa:?} mass {m} out of range");
        }
        // Glycine is the lightest, tryptophan the heaviest.
        let min = AminoAcid::ALL
            .iter()
            .min_by(|a, b| a.monoisotopic_mass().total_cmp(&b.monoisotopic_mass()))
            .copied()
            .unwrap();
        let max = AminoAcid::ALL
            .iter()
            .max_by(|a, b| a.monoisotopic_mass().total_cmp(&b.monoisotopic_mass()))
            .copied()
            .unwrap();
        assert_eq!(min, AminoAcid::Gly);
        assert_eq!(max, AminoAcid::Trp);
    }

    #[test]
    fn tryptic_sites() {
        assert!(AminoAcid::Lys.is_tryptic_site());
        assert!(AminoAcid::Arg.is_tryptic_site());
        assert!(!AminoAcid::Gly.is_tryptic_site());
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(AminoAcid::Trp.to_string(), "W");
    }
}
