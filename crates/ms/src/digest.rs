//! In-silico tryptic digestion: protein sequences → peptide libraries.
//!
//! Real spectral libraries are built by digesting a proteome with trypsin
//! (cleaving C-terminal to K/R except before proline) and keeping
//! peptides in the instrument's practical mass range. This module
//! provides that path — both for user-supplied protein sequences and for
//! a synthetic proteome generator — as the realistic alternative to
//! drawing random peptides directly.

use crate::aa::AminoAcid;
use crate::peptide::Peptide;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// A protein: a named amino-acid sequence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Protein {
    /// Accession / name.
    pub name: String,
    /// The residue sequence.
    pub sequence: Vec<AminoAcid>,
}

impl Protein {
    /// Parse a protein from single-letter codes.
    ///
    /// # Errors
    ///
    /// Returns the residue parse error of [`Peptide::parse`] semantics.
    pub fn parse(name: &str, sequence: &str) -> Result<Protein, crate::peptide::ParsePeptideError> {
        let peptide = Peptide::parse(sequence)?;
        Ok(Protein {
            name: name.to_owned(),
            sequence: peptide.residues().to_vec(),
        })
    }

    /// Generate a random protein of `len` residues with uniform
    /// composition (synthetic proteome building block).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn random<R: Rng>(rng: &mut R, name: String, len: usize) -> Protein {
        assert!(len > 0, "protein must have at least one residue");
        let sequence = (0..len)
            .map(|_| *AminoAcid::ALL.as_slice().choose(rng).expect("non-empty"))
            .collect();
        Protein { name, sequence }
    }
}

/// Digestion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DigestConfig {
    /// Maximum missed cleavage sites left inside a peptide (0–2 typical).
    pub missed_cleavages: usize,
    /// Minimum peptide length kept.
    pub min_len: usize,
    /// Maximum peptide length kept.
    pub max_len: usize,
    /// Suppress cleavage when the following residue is proline (the
    /// classical trypsin rule).
    pub proline_rule: bool,
}

impl Default for DigestConfig {
    fn default() -> DigestConfig {
        DigestConfig {
            missed_cleavages: 1,
            min_len: 7,
            max_len: 30,
            proline_rule: true,
        }
    }
}

/// Tryptic digestion of one protein into peptides.
///
/// Cleaves C-terminal to K/R (optionally not before proline), then emits
/// every run of up to `missed_cleavages + 1` consecutive fragments whose
/// combined length is within bounds, in N→C order.
///
/// ```
/// use hdoms_ms::digest::{digest, DigestConfig, Protein};
/// let p = Protein::parse("demo", "MAGICKELVISRPEACEK").unwrap();
/// let peptides = digest(&p, &DigestConfig { missed_cleavages: 0, min_len: 5, max_len: 30, proline_rule: true });
/// // "MAGICK" and "ELVISRPEACEK" (the R|P bond is protected).
/// assert_eq!(peptides.len(), 2);
/// ```
pub fn digest(protein: &Protein, config: &DigestConfig) -> Vec<Peptide> {
    let seq = &protein.sequence;
    if seq.is_empty() {
        return Vec::new();
    }
    // Fragment boundaries: cleavage after index i when seq[i] is K/R and
    // (no proline rule or seq[i+1] != P).
    let mut fragments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for i in 0..seq.len() {
        let cleave = seq[i].is_tryptic_site()
            && (i + 1 == seq.len() || !config.proline_rule || seq[i + 1] != AminoAcid::Pro);
        if cleave {
            fragments.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < seq.len() {
        fragments.push((start, seq.len()));
    }

    let mut peptides = Vec::new();
    for first in 0..fragments.len() {
        for missed in 0..=config.missed_cleavages {
            let Some(&(_, end)) = fragments.get(first + missed) else {
                break;
            };
            let begin = fragments[first].0;
            let len = end - begin;
            if len >= config.min_len && len <= config.max_len {
                peptides.push(Peptide::new(seq[begin..end].to_vec()));
            }
        }
    }
    peptides
}

/// Digest a whole proteome, deduplicating identical sequences (shared
/// peptides are the norm in real proteomes).
pub fn digest_proteome(proteins: &[Protein], config: &DigestConfig) -> Vec<Peptide> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for protein in proteins {
        for peptide in digest(protein, config) {
            if seen.insert(peptide.to_string()) {
                out.push(peptide);
            }
        }
    }
    out
}

/// Generate a synthetic proteome and digest it: `proteins` random
/// proteins of length drawn from `protein_len`, digested with `config`.
/// Deterministic in `rng`.
pub fn synthetic_proteome_peptides<R: Rng>(
    rng: &mut R,
    proteins: usize,
    protein_len: std::ops::RangeInclusive<usize>,
    config: &DigestConfig,
) -> Vec<Peptide> {
    let all: Vec<Protein> = (0..proteins)
        .map(|i| {
            let len = rng.gen_range(protein_len.clone());
            Protein::random(rng, format!("SYN{i:05}"), len)
        })
        .collect();
    digest_proteome(&all, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(missed: usize) -> DigestConfig {
        DigestConfig {
            missed_cleavages: missed,
            min_len: 2,
            max_len: 100,
            proline_rule: true,
        }
    }

    #[test]
    fn cleaves_after_k_and_r() {
        let p = Protein::parse("t", "AAKGGGRCCC").unwrap();
        let peptides = digest(&p, &config(0));
        let seqs: Vec<String> = peptides.iter().map(|p| p.to_string()).collect();
        assert_eq!(seqs, vec!["AAK", "GGGR", "CCC"]);
    }

    #[test]
    fn proline_protects_the_bond() {
        let p = Protein::parse("t", "AAKPGGGR").unwrap();
        let with_rule = digest(&p, &config(0));
        assert_eq!(with_rule.len(), 1);
        assert_eq!(with_rule[0].to_string(), "AAKPGGGR");
        let no_rule = digest(
            &p,
            &DigestConfig {
                proline_rule: false,
                ..config(0)
            },
        );
        assert_eq!(no_rule.len(), 2);
    }

    #[test]
    fn missed_cleavages_add_longer_peptides() {
        let p = Protein::parse("t", "AAKGGGRCCC").unwrap();
        let peptides = digest(&p, &config(1));
        let seqs: Vec<String> = peptides.iter().map(|p| p.to_string()).collect();
        assert!(seqs.contains(&"AAKGGGR".to_owned()));
        assert!(seqs.contains(&"GGGRCCC".to_owned()));
        assert_eq!(seqs.len(), 5);
    }

    #[test]
    fn length_bounds_respected() {
        let p = Protein::parse("t", "AAKGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGRCK").unwrap();
        let cfg = DigestConfig {
            missed_cleavages: 2,
            min_len: 4,
            max_len: 10,
            proline_rule: true,
        };
        for peptide in digest(&p, &cfg) {
            assert!(peptide.len() >= 4 && peptide.len() <= 10);
        }
    }

    #[test]
    fn terminal_fragment_without_kr_is_kept() {
        let p = Protein::parse("t", "AAKCCC").unwrap();
        let seqs: Vec<String> = digest(&p, &config(0))
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert!(seqs.contains(&"CCC".to_owned()));
    }

    #[test]
    fn proteome_deduplicates() {
        let a = Protein::parse("a", "AAKGGGR").unwrap();
        let b = Protein::parse("b", "AAKCCCR").unwrap();
        let peptides = digest_proteome(&[a, b], &config(0));
        let aak = peptides.iter().filter(|p| p.to_string() == "AAK").count();
        assert_eq!(aak, 1, "shared peptide must appear once");
    }

    #[test]
    fn synthetic_proteome_yields_plausible_peptides() {
        let mut rng = StdRng::seed_from_u64(5);
        let peptides =
            synthetic_proteome_peptides(&mut rng, 50, 200..=400, &DigestConfig::default());
        assert!(peptides.len() > 200, "got {}", peptides.len());
        for p in peptides.iter().take(100) {
            assert!(p.len() >= 7 && p.len() <= 30);
        }
        // Determinism.
        let mut rng2 = StdRng::seed_from_u64(5);
        let again = synthetic_proteome_peptides(&mut rng2, 50, 200..=400, &DigestConfig::default());
        assert_eq!(peptides, again);
    }

    #[test]
    fn digest_masses_sum_to_protein_mass() {
        // With zero missed cleavages the fragments partition the protein:
        // residue masses must sum up (each fragment adds one water).
        let p = Protein::parse("t", "AAKGGGRCCCKDDD").unwrap();
        let peptides = digest(
            &p,
            &DigestConfig {
                missed_cleavages: 0,
                min_len: 1,
                max_len: 100,
                proline_rule: true,
            },
        );
        let protein_residue_mass: f64 = p.sequence.iter().map(|aa| aa.monoisotopic_mass()).sum();
        let fragment_residue_mass: f64 = peptides
            .iter()
            .map(|pep| pep.monoisotopic_mass() - crate::WATER_MASS)
            .sum();
        assert!((protein_residue_mass - fragment_residue_mass).abs() < 1e-9);
    }
}
