//! Mass spectrometry substrate for the HD-OMS accelerator reproduction.
//!
//! This crate provides everything the search stack needs from the
//! mass-spectrometry domain:
//!
//! * amino-acid and peptide mass arithmetic ([`aa`], [`peptide`]),
//! * post-translational modifications ([`modification`]),
//! * spectra and theoretical fragmentation ([`spectrum`], [`fragment`]),
//! * an instrument-noise model ([`noise`]),
//! * spectral libraries with decoys ([`library`]),
//! * deterministic synthetic open-modification-search workloads
//!   ([`dataset`]), standing in for the iPRG2012 and HEK293 datasets of the
//!   paper (see `DESIGN.md` for the substitution argument), and
//! * the preprocessing described in §3.1 of the paper: intensity-threshold
//!   peak filtering and m/z binning into spectrum vectors ([`preprocess`]).
//!
//! Everything stochastic takes an explicit seed; two runs with the same seed
//! produce byte-identical workloads.
//!
//! # Example
//!
//! ```
//! use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
//! use hdoms_ms::preprocess::Preprocessor;
//!
//! let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
//! let pre = Preprocessor::default();
//! let binned = pre.run(&workload.queries[0]).expect("query should survive preprocessing");
//! assert!(binned.peaks().len() <= pre.config().max_peaks);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod aa;
pub mod dataset;
pub mod digest;
pub mod fragment;
pub mod library;
pub mod mgf;
pub mod modification;
pub mod noise;
pub mod peptide;
pub mod preprocess;
pub mod spectrum;

pub use dataset::{SyntheticWorkload, WorkloadSpec};
pub use library::{LibraryEntry, SpectralLibrary};
pub use modification::Modification;
pub use peptide::Peptide;
pub use preprocess::{BinnedSpectrum, PreprocessConfig, Preprocessor};
pub use spectrum::{Peak, Spectrum};

/// Mass of a proton in daltons (unified atomic mass units).
pub const PROTON_MASS: f64 = 1.007_276_466_6;

/// Monoisotopic mass of a water molecule in daltons.
pub const WATER_MASS: f64 = 18.010_564_684;
