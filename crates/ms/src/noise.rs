//! Instrument noise model for synthetic query spectra.
//!
//! Real query spectra differ from library spectra through measurement
//! effects. The model here applies, in order:
//!
//! 1. **peak dropout** — each true fragment survives with probability
//!    `peak_survival`,
//! 2. **m/z jitter** — surviving peaks move by a zero-mean Gaussian with
//!    standard deviation `mz_sigma` (fragment mass error),
//! 3. **intensity scaling** — intensities are multiplied by a log-normal
//!    factor with scale `intensity_sigma`,
//! 4. **chemical noise** — `noise_peaks` junk peaks are added uniformly over
//!    the acquisition m/z range with low intensities.
//!
//! These four effects are what the preprocessing of §3.1 (intensity
//! thresholding, top-N selection) and the HD encoding's level quantisation
//! are designed to survive, so the noise model exercises exactly the code
//! paths the paper's robustness claims depend on.

use crate::spectrum::{Peak, Spectrum};
use rand::Rng;
use rand_distr_shim::{sample_lognormal, sample_normal};
use serde::{Deserialize, Serialize};

/// Minimal Box–Muller sampling helpers so we do not need `rand_distr`.
mod rand_distr_shim {
    use rand::Rng;

    /// Sample N(mean, sigma²) via Box–Muller.
    pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
        // Avoid u == 0 which would make ln(u) infinite.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        mean + sigma * (-2.0 * u.ln()).sqrt() * v.cos()
    }

    /// Sample exp(N(0, sigma²)): a log-normal multiplier with median 1.
    pub fn sample_lognormal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
        sample_normal(rng, 0.0, sigma).exp()
    }
}

/// Parameters of the instrument noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Probability that a true fragment peak is observed (0..=1).
    pub peak_survival: f64,
    /// Standard deviation of fragment m/z error in daltons.
    pub mz_sigma: f64,
    /// Log-scale standard deviation of the intensity multiplier.
    pub intensity_sigma: f64,
    /// Number of chemical-noise peaks to add.
    pub noise_peaks: usize,
    /// Noise peaks are drawn uniformly in `[min_mz, max_mz]`.
    pub min_mz: f64,
    /// Upper bound of the noise peak m/z range.
    pub max_mz: f64,
    /// Noise peak intensity as a fraction of the base peak (upper bound;
    /// actual intensities are uniform in `(0, noise_intensity_frac]`).
    pub noise_intensity_frac: f64,
}

impl Default for NoiseModel {
    fn default() -> NoiseModel {
        NoiseModel {
            peak_survival: 0.85,
            mz_sigma: 0.01,
            intensity_sigma: 0.35,
            noise_peaks: 20,
            min_mz: 100.0,
            max_mz: 1500.0,
            noise_intensity_frac: 0.08,
        }
    }
}

impl NoiseModel {
    /// The instrument model used by the paper-shaped evaluation workloads:
    /// harsher than [`NoiseModel::default`] so identification rates sit in
    /// the paper's regime (a minority of queries identified) rather than
    /// saturating — saturation would mask the BER and dimension effects
    /// Figures 11 and 13 measure.
    pub fn evaluation() -> NoiseModel {
        NoiseModel {
            peak_survival: 0.68,
            mz_sigma: 0.015,
            intensity_sigma: 0.55,
            noise_peaks: 55,
            min_mz: 100.0,
            max_mz: 1500.0,
            noise_intensity_frac: 0.25,
        }
    }

    /// A noiseless model: every peak survives untouched, nothing is added.
    pub fn none() -> NoiseModel {
        NoiseModel {
            peak_survival: 1.0,
            mz_sigma: 0.0,
            intensity_sigma: 0.0,
            noise_peaks: 0,
            min_mz: 100.0,
            max_mz: 1500.0,
            noise_intensity_frac: 0.0,
        }
    }

    /// Apply the noise model to `spectrum`, producing the "measured" version.
    ///
    /// The precursor m/z receives a small error of its own
    /// (`mz_sigma / 3`, precursors are measured more precisely than
    /// fragments).
    pub fn apply<R: Rng>(&self, rng: &mut R, spectrum: &Spectrum) -> Spectrum {
        let base = spectrum.base_peak_intensity().max(1.0);
        let mut peaks = Vec::with_capacity(spectrum.peak_count() + self.noise_peaks);
        for p in spectrum.peaks() {
            if !rng.gen_bool(self.peak_survival.clamp(0.0, 1.0)) {
                continue;
            }
            let mz = if self.mz_sigma > 0.0 {
                (p.mz + sample_normal(rng, 0.0, self.mz_sigma)).max(1.0)
            } else {
                p.mz
            };
            let intensity = if self.intensity_sigma > 0.0 {
                p.intensity * sample_lognormal(rng, self.intensity_sigma)
            } else {
                p.intensity
            };
            peaks.push(Peak::new(mz, intensity));
        }
        for _ in 0..self.noise_peaks {
            let mz = rng.gen_range(self.min_mz..self.max_mz);
            let intensity =
                rng.gen_range(f64::EPSILON..=self.noise_intensity_frac.max(f64::EPSILON)) * base;
            peaks.push(Peak::new(mz, intensity));
        }
        let precursor_mz = if self.mz_sigma > 0.0 {
            spectrum.precursor_mz + sample_normal(rng, 0.0, self.mz_sigma / 3.0)
        } else {
            spectrum.precursor_mz
        };
        Spectrum::new(
            spectrum.id,
            precursor_mz,
            spectrum.precursor_charge,
            peaks,
            spectrum.origin,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{theoretical_spectrum, FragmentConfig};
    use crate::peptide::Peptide;
    use crate::spectrum::SpectrumOrigin;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_spectrum() -> Spectrum {
        let p = Peptide::parse("ACDEFGHILMNPQSTVWYRK").unwrap();
        theoretical_spectrum(0, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target)
    }

    #[test]
    fn none_model_is_identity() {
        let s = sample_spectrum();
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::none().apply(&mut rng, &s);
        assert_eq!(noisy, s);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let s = sample_spectrum();
        let a = NoiseModel::default().apply(&mut StdRng::seed_from_u64(5), &s);
        let b = NoiseModel::default().apply(&mut StdRng::seed_from_u64(5), &s);
        assert_eq!(a, b);
    }

    #[test]
    fn dropout_reduces_true_peaks_and_junk_adds() {
        let s = sample_spectrum();
        let model = NoiseModel {
            peak_survival: 0.5,
            noise_peaks: 10,
            ..NoiseModel::default()
        };
        let mut survived = 0usize;
        let trials = 50;
        for seed in 0..trials {
            let noisy = model.apply(&mut StdRng::seed_from_u64(seed), &s);
            // every output has exactly 10 junk peaks plus survivors
            survived += noisy.peak_count() - 10;
        }
        let mean_survived = survived as f64 / trials as f64;
        let expect = s.peak_count() as f64 * 0.5;
        assert!(
            (mean_survived - expect).abs() < expect * 0.25,
            "mean {mean_survived} vs expected {expect}"
        );
    }

    #[test]
    fn jitter_moves_peaks_slightly() {
        let s = sample_spectrum();
        let model = NoiseModel {
            peak_survival: 1.0,
            noise_peaks: 0,
            intensity_sigma: 0.0,
            mz_sigma: 0.01,
            ..NoiseModel::default()
        };
        let noisy = model.apply(&mut StdRng::seed_from_u64(3), &s);
        assert_eq!(noisy.peak_count(), s.peak_count());
        // Peaks should have moved, but not far (< 5 sigma ≈ 0.05 Da).
        let mut moved = 0;
        for (a, b) in s.peaks().iter().zip(noisy.peaks().iter()) {
            let d = (a.mz - b.mz).abs();
            assert!(d < 0.08, "jitter {d} too large");
            if d > 0.0 {
                moved += 1;
            }
        }
        assert!(moved > s.peak_count() / 2);
    }

    #[test]
    fn noise_peaks_within_range() {
        let s = sample_spectrum();
        let model = NoiseModel {
            peak_survival: 0.0,
            noise_peaks: 30,
            min_mz: 200.0,
            max_mz: 300.0,
            ..NoiseModel::default()
        };
        let noisy = model.apply(&mut StdRng::seed_from_u64(11), &s);
        assert_eq!(noisy.peak_count(), 30);
        for p in noisy.peaks() {
            assert!(p.mz >= 200.0 && p.mz <= 300.0);
        }
    }
}
