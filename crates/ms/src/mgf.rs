//! Mascot Generic Format (MGF) reading and writing.
//!
//! MGF is the lingua franca for peak lists in proteomics: query spectra
//! from real instruments arrive as `BEGIN IONS … END IONS` blocks with
//! `PEPMASS`/`CHARGE` headers and one `m/z intensity` pair per line. This
//! module lets the search stack run on real exported data instead of the
//! synthetic workloads, and lets synthetic workloads be exported for
//! cross-checking against external tools.
//!
//! The dialect implemented is the common denominator emitted by
//! ProteoWizard and accepted by every search engine: `TITLE`, `PEPMASS`
//! (first number used; the optional intensity is ignored), `CHARGE`
//! (`2+`/`+2`/`2` accepted), arbitrary ignored headers, and peak lines
//! separated by spaces or tabs.

use crate::spectrum::{Peak, Spectrum, SpectrumOrigin};
use std::fmt;
use std::io::{BufRead, Write};

/// Error from parsing an MGF stream.
#[derive(Debug)]
pub enum ParseMgfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and content.
    Malformed {
        /// 1-based line number in the stream.
        line: usize,
        /// The offending line content.
        content: String,
        /// What was being parsed.
        context: &'static str,
    },
    /// A spectrum block ended without the mandatory `PEPMASS` header.
    MissingPepmass {
        /// 1-based line number of the `END IONS`.
        line: usize,
    },
}

impl fmt::Display for ParseMgfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMgfError::Io(e) => write!(f, "i/o error while reading mgf: {e}"),
            ParseMgfError::Malformed {
                line,
                content,
                context,
            } => write!(f, "malformed {context} at line {line}: {content:?}"),
            ParseMgfError::MissingPepmass { line } => {
                write!(f, "spectrum block ending at line {line} has no PEPMASS")
            }
        }
    }
}

impl std::error::Error for ParseMgfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseMgfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseMgfError {
    fn from(e: std::io::Error) -> ParseMgfError {
        ParseMgfError::Io(e)
    }
}

/// One parsed MGF spectrum: the [`Spectrum`] plus its `TITLE`, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct MgfSpectrum {
    /// The spectrum (id = block index in the stream, origin = `Query`).
    pub spectrum: Spectrum,
    /// The `TITLE` header verbatim, when present.
    pub title: Option<String>,
}

/// Parse every `BEGIN IONS` block from `reader`.
///
/// Unknown `KEY=VALUE` headers are ignored (MGF writers attach plenty of
/// vendor-specific ones). Charge defaults to 2 when absent, the common
/// convention for unannotated HCD exports.
///
/// # Errors
///
/// Returns [`ParseMgfError`] on I/O failure, an unparsable peak or
/// header line, or a block without `PEPMASS`.
///
/// ```
/// let mgf = "BEGIN IONS\nTITLE=demo\nPEPMASS=445.12\nCHARGE=2+\n\
///            100.1 4.0\n200.2 8.0\nEND IONS\n";
/// let spectra = hdoms_ms::mgf::read_mgf(mgf.as_bytes())?;
/// assert_eq!(spectra.len(), 1);
/// assert_eq!(spectra[0].spectrum.peak_count(), 2);
/// # Ok::<(), hdoms_ms::mgf::ParseMgfError>(())
/// ```
pub fn read_mgf<R: BufRead>(reader: R) -> Result<Vec<MgfSpectrum>, ParseMgfError> {
    let mut out = Vec::new();
    let mut in_block = false;
    let mut title: Option<String> = None;
    let mut pepmass: Option<f64> = None;
    let mut charge: Option<u8> = None;
    let mut peaks: Vec<Peak> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !in_block {
            if trimmed.eq_ignore_ascii_case("BEGIN IONS") {
                in_block = true;
                title = None;
                pepmass = None;
                charge = None;
                peaks = Vec::new();
            }
            // Anything outside a block (file-level parameters) is ignored.
            continue;
        }
        if trimmed.eq_ignore_ascii_case("END IONS") {
            let pepmass = pepmass.ok_or(ParseMgfError::MissingPepmass { line: line_no })?;
            let spectrum = Spectrum::new(
                out.len() as u32,
                pepmass,
                charge.unwrap_or(2),
                std::mem::take(&mut peaks),
                SpectrumOrigin::Query,
            );
            out.push(MgfSpectrum {
                spectrum,
                title: title.take(),
            });
            in_block = false;
            continue;
        }
        if let Some((key, value)) = trimmed.split_once('=') {
            match key.trim().to_ascii_uppercase().as_str() {
                "TITLE" => title = Some(value.trim().to_owned()),
                "PEPMASS" => {
                    let first = value.split_whitespace().next().unwrap_or("");
                    pepmass = Some(first.parse().map_err(|_| ParseMgfError::Malformed {
                        line: line_no,
                        content: line.clone(),
                        context: "PEPMASS header",
                    })?);
                }
                "CHARGE" => {
                    charge = Some(parse_charge(value.trim()).ok_or_else(|| {
                        ParseMgfError::Malformed {
                            line: line_no,
                            content: line.clone(),
                            context: "CHARGE header",
                        }
                    })?);
                }
                _ => {} // vendor headers: RTINSECONDS, SCANS, …
            }
            continue;
        }
        // Peak line: m/z and intensity separated by whitespace; extra
        // columns (some exporters add charge) are ignored.
        let mut fields = trimmed.split_whitespace();
        let (Some(mz), Some(intensity)) = (fields.next(), fields.next()) else {
            return Err(ParseMgfError::Malformed {
                line: line_no,
                content: line.clone(),
                context: "peak line",
            });
        };
        let (Ok(mz), Ok(intensity)) = (mz.parse::<f64>(), intensity.parse::<f64>()) else {
            return Err(ParseMgfError::Malformed {
                line: line_no,
                content: line.clone(),
                context: "peak line",
            });
        };
        if !(mz.is_finite() && mz > 0.0 && intensity.is_finite() && intensity >= 0.0) {
            return Err(ParseMgfError::Malformed {
                line: line_no,
                content: line.clone(),
                context: "peak line",
            });
        }
        peaks.push(Peak::new(mz, intensity));
    }
    Ok(out)
}

/// Parse `2+`, `+2`, `2`, `3-` (negative mode collapses to its magnitude).
fn parse_charge(s: &str) -> Option<u8> {
    let cleaned: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    let z: u8 = cleaned.parse().ok()?;
    if z == 0 {
        None
    } else {
        Some(z)
    }
}

/// Write `spectra` as MGF blocks to `writer`. A mutable reference works
/// as the writer (`&mut Vec<u8>`, `&mut File`, …).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_mgf<W: Write>(mut writer: W, spectra: &[Spectrum]) -> std::io::Result<()> {
    for s in spectra {
        writeln!(writer, "BEGIN IONS")?;
        writeln!(writer, "TITLE=spectrum_{}", s.id)?;
        writeln!(writer, "PEPMASS={:.6}", s.precursor_mz)?;
        writeln!(writer, "CHARGE={}+", s.precursor_charge)?;
        for p in s.peaks() {
            writeln!(writer, "{:.5} {:.3}", p.mz, p.intensity)?;
        }
        writeln!(writer, "END IONS")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SyntheticWorkload, WorkloadSpec};

    #[test]
    fn roundtrip_synthetic_queries() {
        let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 77);
        let mut buffer = Vec::new();
        write_mgf(&mut buffer, &workload.queries).unwrap();
        let parsed = read_mgf(buffer.as_slice()).unwrap();
        assert_eq!(parsed.len(), workload.queries.len());
        for (orig, got) in workload.queries.iter().zip(&parsed) {
            assert_eq!(got.spectrum.peak_count(), orig.peak_count());
            assert_eq!(got.spectrum.precursor_charge, orig.precursor_charge);
            assert!((got.spectrum.precursor_mz - orig.precursor_mz).abs() < 1e-5);
            assert_eq!(
                got.title.as_deref(),
                Some(format!("spectrum_{}", orig.id).as_str())
            );
            for (a, b) in orig.peaks().iter().zip(got.spectrum.peaks()) {
                assert!((a.mz - b.mz).abs() < 1e-4);
                assert!((a.intensity - b.intensity).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn parses_charge_variants() {
        for (text, want) in [("2+", 2u8), ("+3", 3), ("2", 2), ("4-", 4)] {
            assert_eq!(parse_charge(text), Some(want), "{text}");
        }
        assert_eq!(parse_charge("banana"), None);
        assert_eq!(parse_charge("0"), None);
    }

    #[test]
    fn ignores_vendor_headers_and_comments() {
        let mgf = "# exported\nMASS=Mono\nBEGIN IONS\nTITLE=t\nRTINSECONDS=12.5\n\
                   SCANS=554\nPEPMASS=500.25 12345.6\nCHARGE=2+\n100.0\t5\nEND IONS\n";
        let parsed = read_mgf(mgf.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].spectrum.peak_count(), 1);
        assert!((parsed[0].spectrum.precursor_mz - 500.25).abs() < 1e-9);
    }

    #[test]
    fn default_charge_is_two() {
        let mgf = "BEGIN IONS\nPEPMASS=400.0\n100.0 1.0\nEND IONS\n";
        let parsed = read_mgf(mgf.as_bytes()).unwrap();
        assert_eq!(parsed[0].spectrum.precursor_charge, 2);
        assert_eq!(parsed[0].title, None);
    }

    #[test]
    fn missing_pepmass_is_an_error() {
        let mgf = "BEGIN IONS\n100.0 1.0\nEND IONS\n";
        let err = read_mgf(mgf.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseMgfError::MissingPepmass { .. }));
        assert!(err.to_string().contains("PEPMASS"));
    }

    #[test]
    fn malformed_peak_reports_line() {
        let mgf = "BEGIN IONS\nPEPMASS=400.0\nnot a peak\nEND IONS\n";
        let err = read_mgf(mgf.as_bytes()).unwrap_err();
        match err {
            ParseMgfError::Malformed { line, context, .. } => {
                assert_eq!(line, 3);
                assert_eq!(context, "peak line");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_charge_is_an_error() {
        let mgf = "BEGIN IONS\nPEPMASS=400.0\nCHARGE=banana\n100.0 1.0\nEND IONS\n";
        assert!(read_mgf(mgf.as_bytes()).is_err());
    }

    #[test]
    fn multiple_blocks_get_dense_ids() {
        let mgf = "BEGIN IONS\nPEPMASS=400.0\n100.0 1.0\nEND IONS\n\
                   BEGIN IONS\nPEPMASS=500.0\n200.0 2.0\nEND IONS\n";
        let parsed = read_mgf(mgf.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].spectrum.id, 0);
        assert_eq!(parsed[1].spectrum.id, 1);
    }

    #[test]
    fn text_outside_blocks_is_ignored() {
        let mgf =
            "random garbage that is not a header\nBEGIN IONS\nPEPMASS=400.0\n100.0 1.0\nEND IONS\n";
        assert_eq!(read_mgf(mgf.as_bytes()).unwrap().len(), 1);
    }
}
