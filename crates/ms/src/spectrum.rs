//! Mass spectra: peaks, precursor information and basic spectrum algebra.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single fragment peak: a mass-to-charge position and an intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Mass-to-charge ratio (Thomson).
    pub mz: f64,
    /// Ion abundance in arbitrary units (non-negative).
    pub intensity: f64,
}

impl Peak {
    /// Create a peak.
    ///
    /// # Panics
    ///
    /// Panics if `mz` is not finite/positive or `intensity` is negative/NaN
    /// — malformed peaks would silently corrupt binning downstream.
    pub fn new(mz: f64, intensity: f64) -> Peak {
        assert!(
            mz.is_finite() && mz > 0.0,
            "peak m/z must be finite and positive"
        );
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "peak intensity must be finite and non-negative"
        );
        Peak { mz, intensity }
    }
}

/// Provenance of a spectrum, used to keep target/decoy bookkeeping and the
/// synthetic ground truth together with the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpectrumOrigin {
    /// A reference spectrum generated from a real (target) peptide.
    Target,
    /// A decoy reference spectrum (shuffled peptide).
    Decoy,
    /// A measured query spectrum.
    Query,
}

/// An MS/MS spectrum: a precursor (m/z + charge) and a peak list sorted by
/// m/z.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrum {
    /// Identifier unique within its collection (library index or query index).
    pub id: u32,
    /// Precursor mass-to-charge ratio.
    pub precursor_mz: f64,
    /// Precursor charge state (≥ 1).
    pub precursor_charge: u8,
    /// Fragment peaks, sorted by ascending m/z.
    peaks: Vec<Peak>,
    /// Where this spectrum came from.
    pub origin: SpectrumOrigin,
}

impl Spectrum {
    /// Create a spectrum; `peaks` are sorted by m/z internally.
    ///
    /// # Panics
    ///
    /// Panics if `precursor_charge` is zero or `precursor_mz` is not
    /// finite/positive.
    pub fn new(
        id: u32,
        precursor_mz: f64,
        precursor_charge: u8,
        mut peaks: Vec<Peak>,
        origin: SpectrumOrigin,
    ) -> Spectrum {
        assert!(precursor_charge >= 1, "precursor charge must be at least 1");
        assert!(
            precursor_mz.is_finite() && precursor_mz > 0.0,
            "precursor m/z must be finite and positive"
        );
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        Spectrum {
            id,
            precursor_mz,
            precursor_charge,
            peaks,
            origin,
        }
    }

    /// The peak list, sorted by ascending m/z.
    pub fn peaks(&self) -> &[Peak] {
        &self.peaks
    }

    /// Number of peaks.
    pub fn peak_count(&self) -> usize {
        self.peaks.len()
    }

    /// Neutral (uncharged) precursor mass implied by the precursor m/z and
    /// charge: `M = z * (m/z - proton)`.
    ///
    /// ```
    /// use hdoms_ms::spectrum::{Peak, Spectrum, SpectrumOrigin};
    /// let s = Spectrum::new(0, 500.0, 2, vec![Peak::new(100.0, 1.0)], SpectrumOrigin::Query);
    /// assert!((s.neutral_mass() - 2.0 * (500.0 - 1.0072764666)).abs() < 1e-9);
    /// ```
    pub fn neutral_mass(&self) -> f64 {
        f64::from(self.precursor_charge) * (self.precursor_mz - crate::PROTON_MASS)
    }

    /// The largest peak intensity, or 0.0 for an empty spectrum.
    pub fn base_peak_intensity(&self) -> f64 {
        self.peaks.iter().map(|p| p.intensity).fold(0.0, f64::max)
    }

    /// Total ion current: the sum of all peak intensities.
    pub fn total_ion_current(&self) -> f64 {
        self.peaks.iter().map(|p| p.intensity).sum()
    }
}

impl fmt::Display for Spectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Spectrum#{} ({:?}, precursor {:.4} m/z, {}+, {} peaks)",
            self.id,
            self.origin,
            self.precursor_mz,
            self.precursor_charge,
            self.peaks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(peaks: Vec<Peak>) -> Spectrum {
        Spectrum::new(1, 450.0, 2, peaks, SpectrumOrigin::Query)
    }

    #[test]
    fn peaks_sorted_on_construction() {
        let s = make(vec![
            Peak::new(300.0, 1.0),
            Peak::new(100.0, 2.0),
            Peak::new(200.0, 3.0),
        ]);
        let mzs: Vec<f64> = s.peaks().iter().map(|p| p.mz).collect();
        assert_eq!(mzs, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn base_peak_and_tic() {
        let s = make(vec![Peak::new(100.0, 2.0), Peak::new(200.0, 5.0)]);
        assert_eq!(s.base_peak_intensity(), 5.0);
        assert_eq!(s.total_ion_current(), 7.0);
    }

    #[test]
    fn empty_spectrum_statistics() {
        let s = make(vec![]);
        assert_eq!(s.base_peak_intensity(), 0.0);
        assert_eq!(s.total_ion_current(), 0.0);
        assert_eq!(s.peak_count(), 0);
    }

    #[test]
    #[should_panic(expected = "peak m/z must be finite and positive")]
    fn rejects_nonpositive_mz() {
        let _ = Peak::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "intensity must be finite")]
    fn rejects_negative_intensity() {
        let _ = Peak::new(100.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "precursor charge")]
    fn rejects_zero_charge() {
        let _ = Spectrum::new(0, 500.0, 0, vec![], SpectrumOrigin::Query);
    }

    #[test]
    fn neutral_mass_roundtrip_with_peptide() {
        use crate::peptide::Peptide;
        let p = Peptide::parse("PEPTIDEK").unwrap();
        for z in 1..=3u8 {
            let s = Spectrum::new(0, p.precursor_mz(z), z, vec![], SpectrumOrigin::Target);
            assert!(
                (s.neutral_mass() - p.monoisotopic_mass()).abs() < 1e-6,
                "charge {z}"
            );
        }
    }

    #[test]
    fn display_mentions_peak_count() {
        let s = make(vec![Peak::new(100.0, 1.0)]);
        assert!(s.to_string().contains("1 peaks"));
    }
}
