//! Peptide sequences, mass arithmetic and random tryptic peptide generation.

use crate::aa::AminoAcid;
use crate::modification::Modification;
use crate::{PROTON_MASS, WATER_MASS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::fmt;

/// A peptide: a sequence of amino-acid residues, optionally carrying one
/// modification at a specific residue position.
///
/// The synthetic workloads in this reproduction only ever place a single
/// modification per peptide, mirroring the paper's open-search setting where
/// the precursor mass delta is explained by one dominant PTM.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Peptide {
    residues: Vec<AminoAcid>,
    modification: Option<PlacedModification>,
}

/// A modification applied at a specific zero-based residue index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlacedModification {
    /// The modification identity (name and mass shift).
    pub modification: Modification,
    /// Zero-based index of the modified residue.
    pub position: usize,
}

/// Error returned when parsing a peptide from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePeptideError {
    /// The offending character.
    pub invalid: char,
    /// Its byte position in the input.
    pub position: usize,
}

impl fmt::Display for ParsePeptideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid amino-acid code {:?} at position {}",
            self.invalid, self.position
        )
    }
}

impl std::error::Error for ParsePeptideError {}

impl Peptide {
    /// Create an unmodified peptide from residues.
    ///
    /// # Panics
    ///
    /// Panics if `residues` is empty; a peptide has at least one residue.
    pub fn new(residues: Vec<AminoAcid>) -> Peptide {
        assert!(
            !residues.is_empty(),
            "peptide must have at least one residue"
        );
        Peptide {
            residues,
            modification: None,
        }
    }

    /// Parse from single-letter codes, e.g. `"PEPTIDEK"`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePeptideError`] if any character is not a valid residue
    /// code, or if the string is empty (reported as an invalid NUL at 0).
    ///
    /// ```
    /// use hdoms_ms::peptide::Peptide;
    /// let p: Peptide = "ACDEFGHIK".parse()?;
    /// assert_eq!(p.len(), 9);
    /// # Ok::<(), hdoms_ms::peptide::ParsePeptideError>(())
    /// ```
    pub fn parse(s: &str) -> Result<Peptide, ParsePeptideError> {
        if s.is_empty() {
            return Err(ParsePeptideError {
                invalid: '\0',
                position: 0,
            });
        }
        let mut residues = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match AminoAcid::from_code(c) {
                Some(aa) => residues.push(aa),
                None => {
                    return Err(ParsePeptideError {
                        invalid: c,
                        position: i,
                    })
                }
            }
        }
        Ok(Peptide::new(residues))
    }

    /// The residue sequence.
    pub fn residues(&self) -> &[AminoAcid] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the peptide has zero residues (never true for constructed
    /// peptides; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// The modification placed on this peptide, if any.
    pub fn modification(&self) -> Option<&PlacedModification> {
        self.modification.as_ref()
    }

    /// Return a copy of this peptide carrying `modification` at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds.
    pub fn with_modification(&self, modification: Modification, position: usize) -> Peptide {
        assert!(
            position < self.residues.len(),
            "modification position {position} out of bounds for peptide of length {}",
            self.residues.len()
        );
        Peptide {
            residues: self.residues.clone(),
            modification: Some(PlacedModification {
                modification,
                position,
            }),
        }
    }

    /// Return an unmodified copy of this peptide.
    pub fn without_modification(&self) -> Peptide {
        Peptide {
            residues: self.residues.clone(),
            modification: None,
        }
    }

    /// Monoisotopic neutral mass (residue masses + one water + any
    /// modification delta).
    ///
    /// ```
    /// use hdoms_ms::peptide::Peptide;
    /// let p = Peptide::parse("GG").unwrap();
    /// // 2 glycines + water
    /// assert!((p.monoisotopic_mass() - (2.0 * 57.02146 + 18.01056)).abs() < 1e-3);
    /// ```
    pub fn monoisotopic_mass(&self) -> f64 {
        let base: f64 = self
            .residues
            .iter()
            .map(|aa| aa.monoisotopic_mass())
            .sum::<f64>()
            + WATER_MASS;
        base + self
            .modification
            .map(|m| m.modification.mass_shift())
            .unwrap_or(0.0)
    }

    /// Mass-to-charge ratio of the precursor ion at `charge` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `charge` is zero.
    pub fn precursor_mz(&self, charge: u8) -> f64 {
        assert!(charge >= 1, "charge must be at least 1");
        (self.monoisotopic_mass() + f64::from(charge) * PROTON_MASS) / f64::from(charge)
    }

    /// Generate a random tryptic-looking peptide: length in
    /// `min_len..=max_len`, C-terminal residue K or R, no internal K/R
    /// (fully cleaved), drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len < 2` or `min_len > max_len`.
    pub fn random_tryptic<R: Rng>(rng: &mut R, min_len: usize, max_len: usize) -> Peptide {
        assert!(min_len >= 2, "tryptic peptide needs at least 2 residues");
        assert!(min_len <= max_len, "min_len must not exceed max_len");
        let len = rng.gen_range(min_len..=max_len);
        let interior: Vec<AminoAcid> = AminoAcid::ALL
            .iter()
            .copied()
            .filter(|aa| !aa.is_tryptic_site())
            .collect();
        let mut residues = Vec::with_capacity(len);
        for _ in 0..len - 1 {
            residues.push(*interior.choose(rng).expect("non-empty interior set"));
        }
        residues.push(if rng.gen_bool(0.5) {
            AminoAcid::Lys
        } else {
            AminoAcid::Arg
        });
        Peptide::new(residues)
    }

    /// Produce a decoy by shuffling all residues except the C-terminal one
    /// (the standard "pseudo-shuffle" decoy construction, which preserves the
    /// precursor mass and the tryptic terminus).
    ///
    /// The shuffle is deterministic in `seed`. If the shuffled sequence
    /// equals the original (short or repetitive peptides), the interior is
    /// rotated by one position instead so the decoy differs whenever the
    /// interior has two distinct residues.
    pub fn decoy(&self, seed: u64) -> Peptide {
        let mut residues = self.residues.clone();
        let n = residues.len();
        if n > 2 {
            let mut rng = StdRng::seed_from_u64(seed);
            residues[..n - 1].shuffle(&mut rng);
            if residues == self.residues {
                residues[..n - 1].rotate_left(1);
            }
        }
        Peptide {
            residues,
            modification: self.modification,
        }
    }

    /// Positions (zero-based) where `modification` may be placed.
    pub fn eligible_positions(&self, modification: Modification) -> Vec<usize> {
        self.residues
            .iter()
            .enumerate()
            .filter(|(_, aa)| modification.applies_to(**aa))
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Peptide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, aa) in self.residues.iter().enumerate() {
            write!(f, "{}", aa.code())?;
            if let Some(m) = &self.modification {
                if m.position == i {
                    write!(f, "[{:+.4}]", m.modification.mass_shift())?;
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Peptide {
    type Err = ParsePeptideError;

    fn from_str(s: &str) -> Result<Peptide, ParsePeptideError> {
        Peptide::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modification::Modification;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = Peptide::parse("ACDEFGHIKLMNPQRSTVWY").unwrap();
        assert_eq!(p.to_string(), "ACDEFGHIKLMNPQRSTVWY");
    }

    #[test]
    fn parse_rejects_bad_codes() {
        let err = Peptide::parse("AXB").unwrap_err();
        assert_eq!(err.invalid, 'X');
        assert_eq!(err.position, 1);
        assert!(Peptide::parse("").is_err());
    }

    #[test]
    fn mass_includes_water() {
        let p = Peptide::parse("G").unwrap();
        let expected = AminoAcid::Gly.monoisotopic_mass() + WATER_MASS;
        assert!((p.monoisotopic_mass() - expected).abs() < 1e-9);
    }

    #[test]
    fn modification_shifts_mass() {
        let p = Peptide::parse("MSK").unwrap();
        let base = p.monoisotopic_mass();
        let modified = p.with_modification(Modification::OXIDATION, 0);
        assert!(
            (modified.monoisotopic_mass() - base - Modification::OXIDATION.mass_shift()).abs()
                < 1e-9
        );
    }

    #[test]
    fn precursor_mz_decreases_with_charge() {
        let p = Peptide::parse("PEPTIDEK").unwrap();
        assert!(p.precursor_mz(1) > p.precursor_mz(2));
        assert!(p.precursor_mz(2) > p.precursor_mz(3));
    }

    #[test]
    #[should_panic(expected = "charge must be at least 1")]
    fn precursor_mz_rejects_zero_charge() {
        let _ = Peptide::parse("PEPTIDEK").unwrap().precursor_mz(0);
    }

    #[test]
    fn random_tryptic_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let p = Peptide::random_tryptic(&mut rng, 7, 25);
            assert!(p.len() >= 7 && p.len() <= 25);
            let last = *p.residues().last().unwrap();
            assert!(last.is_tryptic_site());
            // fully-cleaved: no internal K/R
            assert!(!p.residues()[..p.len() - 1]
                .iter()
                .any(|aa| aa.is_tryptic_site()));
        }
    }

    #[test]
    fn decoy_preserves_mass_and_terminus() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..50u64 {
            let p = Peptide::random_tryptic(&mut rng, 8, 20);
            let d = p.decoy(seed);
            assert!((d.monoisotopic_mass() - p.monoisotopic_mass()).abs() < 1e-9);
            assert_eq!(d.residues().last(), p.residues().last());
            assert_eq!(d.len(), p.len());
        }
    }

    #[test]
    fn decoy_differs_when_interior_heterogeneous() {
        let p = Peptide::parse("ACDEFGHIK").unwrap();
        let d = p.decoy(3);
        assert_ne!(d.residues(), p.residues());
    }

    #[test]
    fn decoy_is_deterministic() {
        let p = Peptide::parse("ACDEFGHIK").unwrap();
        assert_eq!(p.decoy(9).residues(), p.decoy(9).residues());
    }

    #[test]
    fn eligible_positions_respects_targets() {
        let p = Peptide::parse("MSMSK").unwrap();
        let pos = p.eligible_positions(Modification::OXIDATION);
        assert_eq!(pos, vec![0, 2]);
    }
}
