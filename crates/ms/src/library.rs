//! Spectral libraries: reference spectra with target/decoy bookkeeping.

use crate::fragment::{theoretical_spectrum, FragmentConfig};
use crate::peptide::Peptide;
use crate::spectrum::{Spectrum, SpectrumOrigin};
use serde::Serialize;

/// One reference entry: the spectrum plus the peptide it was generated from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LibraryEntry {
    /// The reference spectrum. Its `id` equals the entry's index in the
    /// library.
    pub spectrum: Spectrum,
    /// The peptide the spectrum was generated from.
    pub peptide: Peptide,
    /// Whether this is a decoy entry.
    pub is_decoy: bool,
}

/// A spectral library: an indexed collection of reference spectra, half of
/// which are decoys when built via [`SpectralLibrary::with_decoys`].
///
/// Entry `id`s are dense indices `0..len`, so search results can refer to
/// entries by `u32` id.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SpectralLibrary {
    entries: Vec<LibraryEntry>,
}

impl SpectralLibrary {
    /// Create an empty library.
    pub fn new() -> SpectralLibrary {
        SpectralLibrary::default()
    }

    /// Build a library from target peptides, generating one theoretical
    /// spectrum per peptide at `charge`, followed by one decoy per target
    /// (pseudo-shuffled, seeded deterministically from `decoy_seed` and the
    /// entry index).
    ///
    /// Targets occupy ids `0..n`, decoys `n..2n`.
    pub fn with_decoys(
        peptides: &[Peptide],
        charge: u8,
        config: &FragmentConfig,
        decoy_seed: u64,
    ) -> SpectralLibrary {
        let entries = (0..2 * peptides.len() as u32)
            .map(|id| SpectralLibrary::decoys_entry(peptides, id, charge, config, decoy_seed))
            .collect();
        SpectralLibrary { entries }
    }

    /// The entry [`SpectralLibrary::with_decoys`] places at dense id
    /// `id` (targets `0..n`, decoys `n..2n`), generated standalone —
    /// per-entry random access into the deterministic target/decoy
    /// layout, without materialising the rest of the library. This is
    /// what lets scaled synthetic libraries
    /// ([`crate::dataset::ScaledLibrary`]) generate any entry
    /// independently and identically across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 2 * peptides.len()`.
    pub fn decoys_entry(
        peptides: &[Peptide],
        id: u32,
        charge: u8,
        config: &FragmentConfig,
        decoy_seed: u64,
    ) -> LibraryEntry {
        let n = peptides.len();
        let slot = id as usize;
        if slot < n {
            let p = &peptides[slot];
            let spectrum = theoretical_spectrum(id, p, charge, config, SpectrumOrigin::Target);
            LibraryEntry {
                spectrum,
                peptide: p.clone(),
                is_decoy: false,
            }
        } else {
            let i = slot - n;
            let decoy =
                peptides[i].decoy(decoy_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let spectrum = theoretical_spectrum(id, &decoy, charge, config, SpectrumOrigin::Decoy);
            LibraryEntry {
                spectrum,
                peptide: decoy,
                is_decoy: true,
            }
        }
    }

    /// Append an entry, assigning it the next dense id.
    ///
    /// # Panics
    ///
    /// Panics if the entry's spectrum id does not equal the next index —
    /// ids must stay dense for search results to be meaningful.
    pub fn push(&mut self, entry: LibraryEntry) {
        assert_eq!(
            entry.spectrum.id as usize,
            self.entries.len(),
            "library ids must be dense"
        );
        self.entries.push(entry);
    }

    /// All entries, in id order.
    pub fn entries(&self) -> &[LibraryEntry] {
        &self.entries
    }

    /// Look up an entry by id.
    pub fn get(&self, id: u32) -> Option<&LibraryEntry> {
        self.entries.get(id as usize)
    }

    /// Number of entries (targets + decoys).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of decoy entries.
    pub fn decoy_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_decoy).count()
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, LibraryEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a SpectralLibrary {
    type Item = &'a LibraryEntry;
    type IntoIter = std::slice::Iter<'a, LibraryEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<LibraryEntry> for SpectralLibrary {
    /// Collect entries; ids are rewritten to dense indices in iteration
    /// order.
    fn from_iter<T: IntoIterator<Item = LibraryEntry>>(iter: T) -> SpectralLibrary {
        let mut entries: Vec<LibraryEntry> = iter.into_iter().collect();
        for (i, e) in entries.iter_mut().enumerate() {
            e.spectrum.id = i as u32;
        }
        SpectralLibrary { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn peptides(n: usize) -> Vec<Peptide> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n)
            .map(|_| Peptide::random_tryptic(&mut rng, 8, 20))
            .collect()
    }

    #[test]
    fn with_decoys_doubles_size() {
        let lib = SpectralLibrary::with_decoys(&peptides(10), 2, &FragmentConfig::default(), 1);
        assert_eq!(lib.len(), 20);
        assert_eq!(lib.decoy_count(), 10);
    }

    #[test]
    fn ids_are_dense_and_targets_first() {
        let lib = SpectralLibrary::with_decoys(&peptides(5), 2, &FragmentConfig::default(), 1);
        for (i, e) in lib.iter().enumerate() {
            assert_eq!(e.spectrum.id as usize, i);
            assert_eq!(e.is_decoy, i >= 5);
        }
    }

    #[test]
    fn decoy_precursor_mass_matches_target() {
        let lib = SpectralLibrary::with_decoys(&peptides(5), 2, &FragmentConfig::default(), 1);
        for i in 0..5 {
            let t = lib.get(i as u32).unwrap();
            let d = lib.get((5 + i) as u32).unwrap();
            assert!(
                (t.spectrum.precursor_mz - d.spectrum.precursor_mz).abs() < 1e-9,
                "decoy {i} precursor differs"
            );
        }
    }

    #[test]
    fn push_enforces_dense_ids() {
        let lib = SpectralLibrary::with_decoys(&peptides(2), 2, &FragmentConfig::default(), 1);
        let mut fresh = SpectralLibrary::new();
        let mut entry = lib.entries()[0].clone();
        entry.spectrum.id = 0;
        fresh.push(entry);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    #[should_panic(expected = "library ids must be dense")]
    fn push_rejects_non_dense_id() {
        let lib = SpectralLibrary::with_decoys(&peptides(2), 2, &FragmentConfig::default(), 1);
        let mut fresh = SpectralLibrary::new();
        let mut entry = lib.entries()[0].clone();
        entry.spectrum.id = 7;
        fresh.push(entry);
    }

    #[test]
    fn from_iterator_rewrites_ids() {
        let lib = SpectralLibrary::with_decoys(&peptides(3), 2, &FragmentConfig::default(), 1);
        let collected: SpectralLibrary = lib.iter().rev().cloned().collect();
        for (i, e) in collected.iter().enumerate() {
            assert_eq!(e.spectrum.id as usize, i);
        }
    }

    #[test]
    fn library_is_deterministic() {
        let p = peptides(4);
        let a = SpectralLibrary::with_decoys(&p, 2, &FragmentConfig::default(), 7);
        let b = SpectralLibrary::with_decoys(&p, 2, &FragmentConfig::default(), 7);
        assert_eq!(a, b);
    }
}
