//! Post-translational modifications (PTMs).
//!
//! Open modification search exists because proteins carry PTMs that shift
//! the precursor mass of a peptide away from its unmodified reference. This
//! module provides a catalogue of the common modifications used by the
//! synthetic workloads, with Unimod-style monoisotopic mass shifts.

use crate::aa::AminoAcid;
use serde::Serialize;
use std::fmt;

/// Which residues a modification may attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Target {
    /// Any residue.
    Any,
    /// Only the listed residues (up to three; unused slots are `None`).
    Residues([Option<AminoAcid>; 3]),
}

/// A post-translational modification: a named monoisotopic mass shift with a
/// residue-specificity rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Modification {
    name: &'static str,
    mass_shift: f64,
    target: Target,
}

impl Modification {
    /// Oxidation (commonly on methionine), +15.9949 Da.
    pub const OXIDATION: Modification = Modification {
        name: "Oxidation",
        mass_shift: 15.994_915,
        target: Target::Residues([Some(AminoAcid::Met), None, None]),
    };

    /// Phosphorylation on S/T/Y, +79.9663 Da.
    pub const PHOSPHO: Modification = Modification {
        name: "Phospho",
        mass_shift: 79.966_331,
        target: Target::Residues([
            Some(AminoAcid::Ser),
            Some(AminoAcid::Thr),
            Some(AminoAcid::Tyr),
        ]),
    };

    /// Acetylation on lysine, +42.0106 Da.
    pub const ACETYL: Modification = Modification {
        name: "Acetyl",
        mass_shift: 42.010_565,
        target: Target::Residues([Some(AminoAcid::Lys), None, None]),
    };

    /// Mono-methylation on K/R, +14.0157 Da.
    pub const METHYL: Modification = Modification {
        name: "Methyl",
        mass_shift: 14.015_650,
        target: Target::Residues([Some(AminoAcid::Lys), Some(AminoAcid::Arg), None]),
    };

    /// Di-methylation on K/R, +28.0313 Da.
    pub const DIMETHYL: Modification = Modification {
        name: "Dimethyl",
        mass_shift: 28.031_300,
        target: Target::Residues([Some(AminoAcid::Lys), Some(AminoAcid::Arg), None]),
    };

    /// Deamidation on N/Q, +0.9840 Da.
    pub const DEAMIDATION: Modification = Modification {
        name: "Deamidation",
        mass_shift: 0.984_016,
        target: Target::Residues([Some(AminoAcid::Asn), Some(AminoAcid::Gln), None]),
    };

    /// Carbamidomethylation on cysteine, +57.0215 Da.
    pub const CARBAMIDOMETHYL: Modification = Modification {
        name: "Carbamidomethyl",
        mass_shift: 57.021_464,
        target: Target::Residues([Some(AminoAcid::Cys), None, None]),
    };

    /// GlyGly remnant of ubiquitination on lysine, +114.0429 Da.
    pub const GLYGLY: Modification = Modification {
        name: "GlyGly",
        mass_shift: 114.042_927,
        target: Target::Residues([Some(AminoAcid::Lys), None, None]),
    };

    /// Succinylation on lysine, +100.0160 Da.
    pub const SUCCINYL: Modification = Modification {
        name: "Succinyl",
        mass_shift: 100.016_044,
        target: Target::Residues([Some(AminoAcid::Lys), None, None]),
    };

    /// Tri-methylation on lysine, +42.0470 Da (near-isobaric with acetyl —
    /// a classic open-search stress case).
    pub const TRIMETHYL: Modification = Modification {
        name: "Trimethyl",
        mass_shift: 42.046_950,
        target: Target::Residues([Some(AminoAcid::Lys), None, None]),
    };

    /// The modifications used by the synthetic workload generator, roughly
    /// ordered by how often they occur in real open-search studies
    /// (Chick et al. 2015 report oxidation and deamidation dominating).
    pub const COMMON: [Modification; 10] = [
        Modification::OXIDATION,
        Modification::DEAMIDATION,
        Modification::PHOSPHO,
        Modification::ACETYL,
        Modification::METHYL,
        Modification::DIMETHYL,
        Modification::CARBAMIDOMETHYL,
        Modification::GLYGLY,
        Modification::SUCCINYL,
        Modification::TRIMETHYL,
    ];

    /// Construct a custom modification.
    pub const fn custom(name: &'static str, mass_shift: f64, target: Target) -> Modification {
        Modification {
            name,
            mass_shift,
            target,
        }
    }

    /// Human-readable name, e.g. `"Phospho"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Monoisotopic mass shift in daltons.
    pub fn mass_shift(&self) -> f64 {
        self.mass_shift
    }

    /// Whether this modification may be placed on residue `aa`.
    ///
    /// ```
    /// use hdoms_ms::modification::Modification;
    /// use hdoms_ms::aa::AminoAcid;
    /// assert!(Modification::PHOSPHO.applies_to(AminoAcid::Ser));
    /// assert!(!Modification::PHOSPHO.applies_to(AminoAcid::Gly));
    /// ```
    pub fn applies_to(&self, aa: AminoAcid) -> bool {
        match self.target {
            Target::Any => true,
            Target::Residues(list) => list.iter().flatten().any(|t| *t == aa),
        }
    }
}

impl fmt::Display for Modification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:+.4} Da)", self.name, self.mass_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_catalogue_has_unique_names() {
        let mut names: Vec<&str> = Modification::COMMON.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Modification::COMMON.len());
    }

    #[test]
    fn mass_shifts_are_positive_here() {
        for m in Modification::COMMON {
            assert!(m.mass_shift() > 0.0, "{m} should have positive shift");
        }
    }

    #[test]
    fn acetyl_trimethyl_near_isobaric() {
        let delta =
            (Modification::ACETYL.mass_shift() - Modification::TRIMETHYL.mass_shift()).abs();
        assert!(delta < 0.05, "acetyl vs trimethyl delta {delta}");
        assert!(delta > 0.01);
    }

    #[test]
    fn any_target_applies_everywhere() {
        let m = Modification::custom("X", 1.0, Target::Any);
        for aa in AminoAcid::ALL {
            assert!(m.applies_to(aa));
        }
    }

    #[test]
    fn display_contains_name_and_shift() {
        let s = Modification::PHOSPHO.to_string();
        assert!(s.contains("Phospho"));
        assert!(s.contains("79.966"));
    }
}
