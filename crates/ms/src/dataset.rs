//! Deterministic synthetic open-modification-search workloads.
//!
//! The paper evaluates on two real datasets (Table 1): iPRG2012 queries
//! against a 1 M-spectrum human-yeast library, and HEK293 queries against a
//! 3 M-spectrum human library. Neither dataset is redistributable here, so
//! this module generates *structurally equivalent* workloads: tryptic
//! peptide libraries with decoys, and query spectra that are noisy
//! re-measurements of library peptides — a configurable fraction carrying a
//! post-translational modification (which shifts the precursor mass and a
//! subset of fragments, exactly the situation open search exists for) and a
//! small fraction matching nothing (driving the false-discovery statistics).
//!
//! The presets [`WorkloadSpec::iprg2012`] and [`WorkloadSpec::hek293`] keep
//! the paper's query:reference ratios at an adjustable scale.

use crate::fragment::{theoretical_spectrum, FragmentConfig};
use crate::library::{LibraryEntry, SpectralLibrary};
use crate::modification::Modification;
use crate::noise::NoiseModel;
use crate::peptide::Peptide;
use crate::spectrum::{Spectrum, SpectrumOrigin};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashSet;

/// Ground truth for one query spectrum.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum QueryTruth {
    /// The query is an unmodified re-measurement of library target entry
    /// `library_id`.
    Unmodified {
        /// Library entry id of the true peptide.
        library_id: u32,
    },
    /// The query is a modified form of library target entry `library_id`.
    Modified {
        /// Library entry id of the true (unmodified) peptide.
        library_id: u32,
        /// The applied modification.
        modification: Modification,
        /// Zero-based residue position of the modification.
        position: usize,
    },
    /// The query comes from a peptide absent from the library; any match is
    /// a false positive.
    Unmatchable,
}

impl QueryTruth {
    /// The true library id, if the query is matchable.
    pub fn library_id(&self) -> Option<u32> {
        match self {
            QueryTruth::Unmodified { library_id } => Some(*library_id),
            QueryTruth::Modified { library_id, .. } => Some(*library_id),
            QueryTruth::Unmatchable => None,
        }
    }

    /// Whether the query carries a modification.
    pub fn is_modified(&self) -> bool {
        matches!(self, QueryTruth::Modified { .. })
    }
}

/// Specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Human-readable name, e.g. `"iPRG2012(x0.01)"`.
    pub name: String,
    /// Number of *target* reference peptides; the library additionally
    /// contains one decoy per target.
    pub reference_peptides: usize,
    /// Number of query spectra.
    pub queries: usize,
    /// Fraction of matchable queries that carry a modification (0..=1).
    pub modified_fraction: f64,
    /// Fraction of queries generated from peptides absent from the library.
    pub unmatchable_fraction: f64,
    /// Peptide length range (inclusive).
    pub peptide_len: (usize, usize),
    /// Reference spectra are generated at this precursor charge.
    pub library_charge: u8,
    /// Instrument noise applied to query spectra.
    pub noise: NoiseModel,
    /// Fragmentation settings shared by library and queries.
    pub fragment: FragmentConfig,
}

impl WorkloadSpec {
    /// iPRG2012-shaped workload (paper: 16 k queries vs 1 M reference
    /// spectra), scaled by `scale`. `scale = 1.0` reproduces the paper's
    /// sizes; the figure binaries default to a laptop-friendly scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn iprg2012(scale: f64) -> WorkloadSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        WorkloadSpec {
            name: format!("iPRG2012(x{scale})"),
            // The paper counts 1 M *spectra*; with one decoy per target the
            // library holds 2× reference_peptides entries, so halve here.
            reference_peptides: ((1_000_000.0 * scale) as usize / 2).max(10),
            queries: ((16_000.0 * scale) as usize).max(10),
            modified_fraction: 0.6,
            unmatchable_fraction: 0.15,
            peptide_len: (7, 25),
            library_charge: 2,
            noise: NoiseModel::evaluation(),
            fragment: FragmentConfig::default(),
        }
    }

    /// HEK293-shaped workload (paper: 47 k queries vs 3 M reference
    /// spectra), scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn hek293(scale: f64) -> WorkloadSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        WorkloadSpec {
            name: format!("HEK293(x{scale})"),
            reference_peptides: ((3_000_000.0 * scale) as usize / 2).max(10),
            queries: ((47_000.0 * scale) as usize).max(10),
            modified_fraction: 0.65,
            unmatchable_fraction: 0.2,
            peptide_len: (7, 30),
            library_charge: 2,
            noise: NoiseModel::evaluation(),
            fragment: FragmentConfig::default(),
        }
    }

    /// A tiny workload for unit tests (50 queries, 200 target peptides).
    pub fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".to_owned(),
            reference_peptides: 200,
            queries: 50,
            modified_fraction: 0.5,
            unmatchable_fraction: 0.1,
            peptide_len: (7, 20),
            library_charge: 2,
            noise: NoiseModel::default(),
            fragment: FragmentConfig::default(),
        }
    }

    /// Total number of library spectra (targets + decoys).
    pub fn library_spectra(&self) -> usize {
        self.reference_peptides * 2
    }
}

/// A fully generated workload: library, queries and per-query ground truth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SyntheticWorkload {
    /// The specification this workload was generated from.
    pub spec: WorkloadSpec,
    /// Reference library (targets then decoys).
    pub library: SpectralLibrary,
    /// Query spectra; `queries[i].id == i`.
    pub queries: Vec<Spectrum>,
    /// Ground truth, parallel to `queries`.
    pub truth: Vec<QueryTruth>,
}

impl SyntheticWorkload {
    /// Generate a workload from `spec`, deterministically in `seed`.
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> SyntheticWorkload {
        let mut rng = StdRng::seed_from_u64(seed);

        let peptides = sample_target_peptides(&mut rng, spec);
        let seen: HashSet<String> = peptides.iter().map(Peptide::to_string).collect();

        let library = SpectralLibrary::with_decoys(
            &peptides,
            spec.library_charge,
            &spec.fragment,
            seed ^ 0x5eed_dec0,
        );

        // Assign query roles: first decide which are unmatchable, then which
        // of the matchable are modified, then shuffle the role order.
        let n_unmatch = (spec.queries as f64 * spec.unmatchable_fraction).round() as usize;
        let n_match = spec.queries - n_unmatch;
        let n_modified = (n_match as f64 * spec.modified_fraction).round() as usize;
        #[derive(Clone, Copy, PartialEq)]
        enum Role {
            Unmod,
            Modified,
            Unmatch,
        }
        let mut roles = Vec::with_capacity(spec.queries);
        roles.extend(std::iter::repeat_n(Role::Modified, n_modified));
        roles.extend(std::iter::repeat_n(Role::Unmod, n_match - n_modified));
        roles.extend(std::iter::repeat_n(Role::Unmatch, n_unmatch));
        roles.shuffle(&mut rng);

        let mut queries = Vec::with_capacity(spec.queries);
        let mut truth = Vec::with_capacity(spec.queries);
        for (qi, role) in roles.iter().enumerate() {
            let charge: u8 = if rng.gen_bool(0.7) { 2 } else { 3 };
            match role {
                Role::Unmod => {
                    let target = rng.gen_range(0..peptides.len());
                    let clean = theoretical_spectrum(
                        qi as u32,
                        &peptides[target],
                        charge,
                        &spec.fragment,
                        SpectrumOrigin::Query,
                    );
                    queries.push(spec.noise.apply(&mut rng, &clean));
                    truth.push(QueryTruth::Unmodified {
                        library_id: target as u32,
                    });
                }
                Role::Modified => {
                    // Rejection-sample a (peptide, modification) pair with an
                    // eligible site; the common catalogue covers enough
                    // residues that this terminates fast.
                    let (target, modification, position) = loop {
                        let target = rng.gen_range(0..peptides.len());
                        let m = *Modification::COMMON
                            .as_slice()
                            .choose(&mut rng)
                            .expect("catalogue non-empty");
                        let sites = peptides[target].eligible_positions(m);
                        if let Some(&p) = sites.as_slice().choose(&mut rng) {
                            break (target, m, p);
                        }
                    };
                    let modified = peptides[target].with_modification(modification, position);
                    let clean = theoretical_spectrum(
                        qi as u32,
                        &modified,
                        charge,
                        &spec.fragment,
                        SpectrumOrigin::Query,
                    );
                    queries.push(spec.noise.apply(&mut rng, &clean));
                    truth.push(QueryTruth::Modified {
                        library_id: target as u32,
                        modification,
                        position,
                    });
                }
                Role::Unmatch => {
                    // A fresh peptide not in the library.
                    let p = loop {
                        let p = Peptide::random_tryptic(
                            &mut rng,
                            spec.peptide_len.0,
                            spec.peptide_len.1,
                        );
                        if !seen.contains(&p.to_string()) {
                            break p;
                        }
                    };
                    let clean = theoretical_spectrum(
                        qi as u32,
                        &p,
                        charge,
                        &spec.fragment,
                        SpectrumOrigin::Query,
                    );
                    queries.push(spec.noise.apply(&mut rng, &clean));
                    truth.push(QueryTruth::Unmatchable);
                }
            }
        }

        SyntheticWorkload {
            spec: spec.clone(),
            library,
            queries,
            truth,
        }
    }

    /// Number of queries whose true peptide is in the library.
    pub fn matchable_queries(&self) -> usize {
        self.truth
            .iter()
            .filter(|t| t.library_id().is_some())
            .count()
    }
}

/// Sample `spec.reference_peptides` distinct target peptides — exactly
/// the draws [`SyntheticWorkload::generate`] spends on its target set,
/// so a caller that only needs the library (e.g. [`ScaledLibrary`])
/// reproduces the same peptides the full workload generator would.
///
/// Sequence collisions are rare but real at small lengths; duplicates
/// are rejected so ground truth stays unambiguous.
pub fn sample_target_peptides(rng: &mut StdRng, spec: &WorkloadSpec) -> Vec<Peptide> {
    let mut seen = HashSet::with_capacity(spec.reference_peptides);
    let mut peptides = Vec::with_capacity(spec.reference_peptides);
    while peptides.len() < spec.reference_peptides {
        let p = Peptide::random_tryptic(rng, spec.peptide_len.0, spec.peptide_len.1);
        if seen.insert(p.to_string()) {
            peptides.push(p);
        }
    }
    peptides
}

/// Specification of a [`ScaledLibrary`]: a base preset multiplied by an
/// augmentation factor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScaledLibrarySpec {
    /// The base workload whose library is scaled (only its library
    /// fields — peptides, charge, fragmentation — are used).
    pub base: WorkloadSpec,
    /// Library entries per base entry: `1` reproduces the base library
    /// exactly; `N` yields `N × base.library_spectra()` entries.
    pub factor: usize,
    /// Master seed: drives the base peptide sample (matching
    /// [`SyntheticWorkload::generate`] with the same seed) and every
    /// per-entry augmentation stream.
    pub seed: u64,
}

/// A deterministic synthetic library scaled far past its base preset —
/// the 10⁶–10⁸-reference workloads the streaming index build and the
/// scale benchmarks run on, generated without new input data.
///
/// Each base library entry (targets then decoys, exactly as
/// [`SpectralLibrary::with_decoys`] lays them out) expands into `factor`
/// consecutive entries:
///
/// * **variant 0** is the base entry verbatim (so `factor = 1`
///   reproduces [`SyntheticWorkload::generate`]'s library exactly);
/// * **variants ≥ 1** are augmented re-predictions: a decoy-style
///   residue permutation of the peptide (mass-preserving, so the
///   precursor-mass bucket shape of the base library is preserved) with
///   predicted-spectrum-style intensity rescaling and bounded peak
///   dropout — same precursor, different fragment pattern.
///
/// Every entry is generated by **per-entry random access**
/// ([`ScaledLibrary::entry`]): the augmentation RNG is seeded from
/// `(seed, id)` alone, so generation is byte-identical across thread
/// counts, chunk sizes, and streaming vs materialised consumption.
///
/// ```
/// use hdoms_ms::dataset::{ScaledLibrary, ScaledLibrarySpec, WorkloadSpec};
///
/// let scaled = ScaledLibrary::new(ScaledLibrarySpec {
///     base: WorkloadSpec::tiny(),
///     factor: 3,
///     seed: 42,
/// });
/// assert_eq!(scaled.len(), 3 * WorkloadSpec::tiny().library_spectra());
/// let library = scaled.materialize();
/// assert_eq!(library.len(), scaled.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledLibrary {
    spec: ScaledLibrarySpec,
    peptides: Vec<Peptide>,
}

impl ScaledLibrary {
    /// Intensity rescale half-range: variant intensities are multiplied
    /// by `exp(u)` with `u` uniform in ±this.
    const INTENSITY_LOG_RANGE: f64 = 0.35;
    /// Per-peak dropout probability for augmented variants.
    const DROPOUT: f64 = 0.1;
    /// Dropout never shrinks a variant below this many peaks.
    const KEEP_MIN: usize = 6;

    /// Prepare the generator: samples the base target peptides (the
    /// expensive part — everything else is per-entry on demand).
    ///
    /// # Panics
    ///
    /// Panics if `spec.factor` is zero or the scaled entry count
    /// overflows the `u32` id space.
    pub fn new(spec: ScaledLibrarySpec) -> ScaledLibrary {
        assert!(spec.factor >= 1, "scale factor must be at least 1");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let peptides = sample_target_peptides(&mut rng, &spec.base);
        assert!(
            2 * peptides.len() * spec.factor <= u32::MAX as usize,
            "scaled library exceeds the u32 id space"
        );
        ScaledLibrary { spec, peptides }
    }

    /// The specification this library was prepared from.
    pub fn spec(&self) -> &ScaledLibrarySpec {
        &self.spec
    }

    /// Total scaled entries (`factor × base.library_spectra()`).
    pub fn len(&self) -> usize {
        2 * self.peptides.len() * self.spec.factor
    }

    /// Whether the library has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate entry `id` from scratch — pure random access,
    /// deterministic in `(spec.seed, id)` only.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.len()`.
    pub fn entry(&self, id: u32) -> LibraryEntry {
        assert!((id as usize) < self.len(), "entry id out of range");
        let factor = self.spec.factor as u32;
        let base_id = id / factor;
        let variant = id % factor;
        let base = &self.spec.base;
        let mut entry = SpectralLibrary::decoys_entry(
            &self.peptides,
            base_id,
            base.library_charge,
            &base.fragment,
            self.spec.seed ^ 0x5eed_dec0,
        );
        entry.spectrum.id = id;
        if variant == 0 {
            return entry;
        }

        // Augmented variant: keyed on the global id alone so any thread
        // generating any chunk produces identical bytes.
        let mut rng = StdRng::seed_from_u64(
            self.spec
                .seed
                .wrapping_add(u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        // Decoy-style residue permutation: same residue multiset, so the
        // peptide (and precursor) mass is unchanged and the library's
        // precursor-mass bucket shape survives scaling.
        let permuted = entry.peptide.decoy(rng.gen());
        let origin = entry.spectrum.origin;
        let clean =
            theoretical_spectrum(id, &permuted, base.library_charge, &base.fragment, origin);
        // Predicted-spectrum-style augmentation: intensity-only rescale
        // plus bounded peak dropout; m/z positions and precursor stay.
        let peaks = clean.peaks();
        let mut kept = Vec::with_capacity(peaks.len());
        for (i, peak) in peaks.iter().enumerate() {
            // Both draws happen for every peak so the stream layout never
            // depends on earlier outcomes.
            let drop = rng.gen_bool(Self::DROPOUT);
            let log_scale = (rng.gen::<f64>() - 0.5) * 2.0 * Self::INTENSITY_LOG_RANGE;
            let remaining = peaks.len() - i - 1;
            if drop && kept.len() + remaining >= Self::KEEP_MIN {
                continue;
            }
            kept.push(crate::spectrum::Peak::new(
                peak.mz,
                peak.intensity * log_scale.exp(),
            ));
        }
        entry.spectrum =
            Spectrum::new(id, clean.precursor_mz, clean.precursor_charge, kept, origin);
        entry.peptide = permuted;
        entry
    }

    /// Iterate all entries in id order, generating on demand — the
    /// streaming consumption path (nothing is retained between entries).
    pub fn iter(&self) -> impl Iterator<Item = LibraryEntry> + '_ {
        (0..self.len() as u32).map(|id| self.entry(id))
    }

    /// Materialise the whole scaled library in memory (small factors /
    /// tests; the streaming index build consumes [`ScaledLibrary::iter`]
    /// instead).
    pub fn materialize(&self) -> SpectralLibrary {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_counts() {
        let spec = WorkloadSpec::tiny();
        let w = SyntheticWorkload::generate(&spec, 3);
        assert_eq!(w.queries.len(), spec.queries);
        assert_eq!(w.truth.len(), spec.queries);
        assert_eq!(w.library.len(), spec.library_spectra());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::tiny();
        let a = SyntheticWorkload::generate(&spec, 11);
        let b = SyntheticWorkload::generate(&spec, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = WorkloadSpec::tiny();
        let a = SyntheticWorkload::generate(&spec, 1);
        let b = SyntheticWorkload::generate(&spec, 2);
        assert_ne!(a.queries, b.queries);
    }

    #[test]
    fn role_fractions_roughly_match_spec() {
        let mut spec = WorkloadSpec::tiny();
        spec.queries = 400;
        let w = SyntheticWorkload::generate(&spec, 5);
        let unmatch = w
            .truth
            .iter()
            .filter(|t| matches!(t, QueryTruth::Unmatchable))
            .count();
        let modified = w.truth.iter().filter(|t| t.is_modified()).count();
        let expected_unmatch = (400.0 * spec.unmatchable_fraction).round() as usize;
        assert_eq!(unmatch, expected_unmatch);
        let matchable = 400 - unmatch;
        let expected_mod = (matchable as f64 * spec.modified_fraction).round() as usize;
        assert_eq!(modified, expected_mod);
    }

    #[test]
    fn modified_queries_have_shifted_precursor() {
        let spec = WorkloadSpec::tiny();
        let w = SyntheticWorkload::generate(&spec, 9);
        for (q, t) in w.queries.iter().zip(&w.truth) {
            if let QueryTruth::Modified {
                library_id,
                modification,
                ..
            } = t
            {
                let reference = &w.library.get(*library_id).unwrap().spectrum;
                let delta = q.neutral_mass() - reference.neutral_mass();
                // Precursor noise is small (< 0.05 Da even at charge 3);
                // the modification shift dominates.
                assert!(
                    (delta - modification.mass_shift()).abs() < 0.2,
                    "precursor delta {delta} vs shift {}",
                    modification.mass_shift()
                );
            }
        }
    }

    #[test]
    fn unmodified_queries_match_reference_precursor() {
        let spec = WorkloadSpec::tiny();
        let w = SyntheticWorkload::generate(&spec, 13);
        for (q, t) in w.queries.iter().zip(&w.truth) {
            if let QueryTruth::Unmodified { library_id } = t {
                let reference = &w.library.get(*library_id).unwrap().spectrum;
                let delta = (q.neutral_mass() - reference.neutral_mass()).abs();
                assert!(delta < 0.2, "unmodified precursor delta {delta}");
            }
        }
    }

    #[test]
    fn preset_ratios() {
        let spec = WorkloadSpec::iprg2012(0.01);
        assert_eq!(spec.queries, 160);
        assert_eq!(spec.library_spectra(), 10_000);
        let spec = WorkloadSpec::hek293(0.01);
        assert_eq!(spec.queries, 470);
        assert_eq!(spec.library_spectra(), 30_000);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn preset_rejects_bad_scale() {
        let _ = WorkloadSpec::iprg2012(0.0);
    }

    #[test]
    fn query_ids_are_dense() {
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 21);
        for (i, q) in w.queries.iter().enumerate() {
            assert_eq!(q.id as usize, i);
        }
    }

    fn small_scaled(factor: usize, seed: u64) -> ScaledLibrary {
        let mut base = WorkloadSpec::tiny();
        base.reference_peptides = 40;
        ScaledLibrary::new(ScaledLibrarySpec { base, factor, seed })
    }

    #[test]
    fn scaled_factor_one_reproduces_base_library() {
        let mut base = WorkloadSpec::tiny();
        base.reference_peptides = 40;
        let workload = SyntheticWorkload::generate(&base, 17);
        let scaled = ScaledLibrary::new(ScaledLibrarySpec {
            base,
            factor: 1,
            seed: 17,
        });
        assert_eq!(scaled.materialize(), workload.library);
    }

    #[test]
    fn scaled_generation_matches_across_thread_counts() {
        let scaled = small_scaled(3, 23);
        let sequential: Vec<LibraryEntry> = scaled.iter().collect();

        // Four threads each generating a quarter by random access must
        // produce byte-identical entries: nothing about an entry depends
        // on which thread (or in which order) it was generated.
        let n = scaled.len() as u32;
        let chunk = n.div_ceil(4);
        let threaded: Vec<LibraryEntry> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let scaled = &scaled;
                    scope.spawn(move || {
                        (t * chunk..((t + 1) * chunk).min(n))
                            .map(|id| scaled.entry(id))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("generator thread"))
                .collect()
        });
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn scaled_streaming_matches_materialized() {
        let scaled = small_scaled(2, 31);
        let streamed: Vec<LibraryEntry> = scaled.iter().collect();
        let materialized = scaled.materialize();
        assert_eq!(streamed.as_slice(), materialized.entries());
        // Same seed twice ⇒ identical library.
        assert_eq!(small_scaled(2, 31).materialize(), materialized);
        // Different seed ⇒ different library.
        assert_ne!(small_scaled(2, 32).materialize(), materialized);
    }

    #[test]
    fn scaled_library_preserves_precursor_bucket_shape() {
        let factor = 4;
        let scaled = small_scaled(factor, 29);
        let base = small_scaled(1, 29);

        // 10 Da precursor-mass buckets: augmentation permutes residues
        // (mass-preserving), so every base bucket count scales by
        // exactly `factor`.
        let histogram = |entries: &[LibraryEntry]| {
            let mut h = std::collections::HashMap::new();
            for e in entries {
                *h.entry((e.spectrum.neutral_mass() / 10.0).floor() as i64)
                    .or_insert(0usize) += 1;
            }
            h
        };
        let base_h = histogram(base.materialize().entries());
        let scaled_h = histogram(scaled.materialize().entries());
        assert_eq!(base_h.len(), scaled_h.len(), "bucket sets must match");
        for (bucket, count) in &base_h {
            assert_eq!(
                scaled_h.get(bucket),
                Some(&(count * factor)),
                "bucket {bucket} not scaled by {factor}"
            );
        }
    }

    #[test]
    fn scaled_variants_share_precursor_but_differ_in_peaks() {
        let scaled = small_scaled(3, 41);
        let base_entry = scaled.entry(0);
        let variant = scaled.entry(1);
        assert_eq!(
            variant.spectrum.precursor_mz, base_entry.spectrum.precursor_mz,
            "augmentation must not move the precursor"
        );
        assert_ne!(
            variant.spectrum.peaks(),
            base_entry.spectrum.peaks(),
            "augmented variant should re-predict the fragment pattern"
        );
        assert!(
            variant.spectrum.peak_count() >= 6,
            "dropout must keep a searchable peak floor"
        );
    }
}
