//! Theoretical fragmentation: b/y ion series for HCD-style spectra.
//!
//! Collision-induced dissociation predominantly breaks the peptide backbone
//! at amide bonds, producing *b* ions (N-terminal prefixes) and *y* ions
//! (C-terminal suffixes). A modification on residue *i* shifts every
//! fragment that contains residue *i* — which is exactly why a modified
//! query still shares roughly half of its fragments with the unmodified
//! reference spectrum, the effect open modification search exploits.

use crate::peptide::Peptide;
use crate::spectrum::{Peak, Spectrum, SpectrumOrigin};
use crate::{PROTON_MASS, WATER_MASS};
use serde::{Deserialize, Serialize};

/// Ion series type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IonKind {
    /// N-terminal fragment (prefix).
    B,
    /// C-terminal fragment (suffix).
    Y,
}

/// A theoretical fragment ion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentIon {
    /// Series type.
    pub kind: IonKind,
    /// Number of residues in the fragment (the "b3"/"y5" ordinal).
    pub ordinal: usize,
    /// Fragment charge state.
    pub charge: u8,
    /// Mass-to-charge ratio.
    pub mz: f64,
}

/// Configuration for theoretical spectrum generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentConfig {
    /// Maximum fragment charge to generate. Fragments are generated at
    /// charges `1..=max_fragment_charge.min(precursor_charge)`.
    pub max_fragment_charge: u8,
    /// Lower m/z bound; fragments below this are discarded (instrument
    /// acquisition range).
    pub min_mz: f64,
    /// Upper m/z bound; fragments above this are discarded.
    pub max_mz: f64,
}

impl Default for FragmentConfig {
    fn default() -> FragmentConfig {
        FragmentConfig {
            max_fragment_charge: 2,
            min_mz: 100.0,
            max_mz: 1500.0,
        }
    }
}

/// Enumerate the theoretical b/y fragment ions of `peptide`.
///
/// A b ion of ordinal `k` contains residues `0..k` and a y ion of ordinal
/// `k` contains residues `len-k..len`, so a modification placed at residue
/// `position` shifts exactly the b ions with `ordinal > position` and the
/// y ions with `ordinal >= len - position`.
pub fn fragment_ions(peptide: &Peptide, config: &FragmentConfig) -> Vec<FragmentIon> {
    let residues = peptide.residues();
    let n = residues.len();
    let mod_info = peptide.modification().copied();

    // Prefix sums of residue masses.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for aa in residues {
        let last = *prefix.last().expect("prefix never empty");
        prefix.push(last + aa.monoisotopic_mass());
    }
    let total = prefix[n];

    let mut out = Vec::with_capacity(2 * (n - 1) * config.max_fragment_charge as usize);
    for ordinal in 1..n {
        // b_ordinal: residues 0..ordinal. Neutral fragment mass = prefix sum.
        let mut b_mass = prefix[ordinal];
        // y_ordinal: residues (n - ordinal)..n. Neutral mass = suffix + water.
        let mut y_mass = total - prefix[n - ordinal] + WATER_MASS;
        if let Some(m) = mod_info {
            if m.position < ordinal {
                b_mass += m.modification.mass_shift();
            }
            if m.position >= n - ordinal {
                y_mass += m.modification.mass_shift();
            }
        }
        for charge in 1..=config.max_fragment_charge {
            let z = f64::from(charge);
            let b_mz = (b_mass + z * PROTON_MASS) / z;
            if b_mz >= config.min_mz && b_mz <= config.max_mz {
                out.push(FragmentIon {
                    kind: IonKind::B,
                    ordinal,
                    charge,
                    mz: b_mz,
                });
            }
            let y_mz = (y_mass + z * PROTON_MASS) / z;
            if y_mz >= config.min_mz && y_mz <= config.max_mz {
                out.push(FragmentIon {
                    kind: IonKind::Y,
                    ordinal,
                    charge,
                    mz: y_mz,
                });
            }
        }
    }
    out
}

/// Deterministic pseudo-random intensity for a fragment, derived from the
/// peptide's residues and the fragment identity via an FNV-style hash.
///
/// Real HCD intensity patterns are peptide-specific but reproducible between
/// acquisitions of the same peptide; hashing gives us exactly that property:
/// the *same* fragment of the *same* peptide always receives the same base
/// intensity, so a modified query shares not just fragment positions but
/// also their intensity ranking with its reference — while different
/// peptides get uncorrelated patterns.
fn fragment_intensity(peptide_hash: u64, ion: &FragmentIon) -> f64 {
    let mut h = peptide_hash ^ 0xcbf2_9ce4_8422_2325;
    let tag = ((ion.ordinal as u64) << 3)
        | (u64::from(ion.charge) << 1)
        | u64::from(matches!(ion.kind, IonKind::Y));
    h ^= tag;
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    // Map to (0, 1], then shape. Real HCD intensities are heavily skewed —
    // a handful of dominant fragments over a long weak tail — so the unit
    // variable is cubed (median peak ≈ 12 % of a strong one). On top of
    // that, y ions run systematically stronger than b ions in tryptic
    // spectra and multiply-charged fragments are damped.
    let unit = ((h >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
    let skewed = unit * unit * unit;
    let series_boost = if matches!(ion.kind, IonKind::Y) {
        1.6
    } else {
        1.0
    };
    let charge_damp = if ion.charge > 1 { 0.45 } else { 1.0 };
    (0.02 + 0.98 * skewed) * series_boost * charge_damp
}

/// Hash a peptide's residue sequence (not its modification) to a stable 64-bit
/// value. Modified and unmodified forms of the same peptide share this hash,
/// which keeps their common fragments' intensities aligned.
pub fn peptide_hash(peptide: &Peptide) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for aa in peptide.residues() {
        h ^= aa.code() as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Generate the theoretical spectrum of `peptide` at `precursor_charge`.
///
/// Intensities are deterministic per (peptide, fragment); the strongest peak
/// is normalised to 1000 arbitrary units, matching typical library spectra.
///
/// ```
/// use hdoms_ms::fragment::{theoretical_spectrum, FragmentConfig};
/// use hdoms_ms::peptide::Peptide;
/// use hdoms_ms::spectrum::SpectrumOrigin;
/// let p = Peptide::parse("PEPTIDEK").unwrap();
/// let s = theoretical_spectrum(7, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target);
/// assert!(s.peak_count() > 5);
/// ```
pub fn theoretical_spectrum(
    id: u32,
    peptide: &Peptide,
    precursor_charge: u8,
    config: &FragmentConfig,
    origin: SpectrumOrigin,
) -> Spectrum {
    let mut cfg = *config;
    cfg.max_fragment_charge = cfg.max_fragment_charge.min(precursor_charge);
    let ions = fragment_ions(peptide, &cfg);
    let ph = peptide_hash(peptide);
    let mut peaks: Vec<Peak> = ions
        .iter()
        .map(|ion| Peak::new(ion.mz, fragment_intensity(ph, ion)))
        .collect();
    let max = peaks.iter().map(|p| p.intensity).fold(0.0, f64::max);
    if max > 0.0 {
        for p in &mut peaks {
            p.intensity = p.intensity / max * 1000.0;
        }
    }
    Spectrum::new(
        id,
        peptide.precursor_mz(precursor_charge),
        precursor_charge,
        peaks,
        origin,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modification::Modification;

    #[test]
    fn ion_count_without_bounds() {
        let p = Peptide::parse("ACDEFGHIK").unwrap(); // length 9
        let cfg = FragmentConfig {
            max_fragment_charge: 1,
            min_mz: 0.1,
            max_mz: f64::INFINITY,
        };
        let ions = fragment_ions(&p, &cfg);
        // 8 cleavage sites × 2 series × 1 charge
        assert_eq!(ions.len(), 16);
    }

    #[test]
    fn by_complementarity() {
        // b_k + y_{n-k} neutral masses must sum to peptide mass + water…
        // in m/z terms at charge 1: (b + y) = M + 2*proton + water? Let's
        // check neutral masses directly.
        let p = Peptide::parse("ACDEFGHIK").unwrap();
        let cfg = FragmentConfig {
            max_fragment_charge: 1,
            min_mz: 0.1,
            max_mz: f64::INFINITY,
        };
        let ions = fragment_ions(&p, &cfg);
        let n = p.len();
        let m = p.monoisotopic_mass();
        for b in ions.iter().filter(|i| i.kind == IonKind::B) {
            let y = ions
                .iter()
                .find(|i| i.kind == IonKind::Y && i.ordinal == n - b.ordinal)
                .expect("complementary y ion exists");
            let b_neutral = b.mz - PROTON_MASS;
            let y_neutral = y.mz - PROTON_MASS;
            assert!(
                (b_neutral + y_neutral - m).abs() < 1e-6,
                "b{} + y{} != M",
                b.ordinal,
                y.ordinal
            );
        }
    }

    #[test]
    fn modification_shifts_only_containing_fragments() {
        let p = Peptide::parse("ACDEFGHIK").unwrap();
        let cfg = FragmentConfig {
            max_fragment_charge: 1,
            min_mz: 0.1,
            max_mz: f64::INFINITY,
        };
        let pos = 2; // on D
        let shifted = p.with_modification(
            Modification::custom("T", 100.0, crate::modification::Target::Any),
            pos,
        );
        let base_ions = fragment_ions(&p, &cfg);
        let mod_ions = fragment_ions(&shifted, &cfg);
        let n = p.len();
        for (bi, mi) in base_ions.iter().zip(mod_ions.iter()) {
            assert_eq!(bi.kind, mi.kind);
            assert_eq!(bi.ordinal, mi.ordinal);
            let contains = match bi.kind {
                IonKind::B => bi.ordinal > pos,
                IonKind::Y => bi.ordinal >= n - pos,
            };
            let delta = mi.mz - bi.mz;
            if contains {
                assert!(
                    (delta - 100.0).abs() < 1e-9,
                    "{:?}{} should shift",
                    bi.kind,
                    bi.ordinal
                );
            } else {
                assert!(
                    delta.abs() < 1e-9,
                    "{:?}{} should not shift",
                    bi.kind,
                    bi.ordinal
                );
            }
        }
    }

    #[test]
    fn theoretical_spectrum_is_deterministic() {
        let p = Peptide::parse("LMNPQSTVWK").unwrap();
        let a = theoretical_spectrum(0, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target);
        let b = theoretical_spectrum(0, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target);
        assert_eq!(a, b);
    }

    #[test]
    fn base_peak_normalised_to_1000() {
        let p = Peptide::parse("LMNPQSTVWK").unwrap();
        let s = theoretical_spectrum(0, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target);
        assert!((s.base_peak_intensity() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn different_peptides_get_different_patterns() {
        let p1 = Peptide::parse("LMNPQSTVWK").unwrap();
        let p2 = Peptide::parse("AAAAAAAAAK").unwrap();
        let s1 = theoretical_spectrum(
            0,
            &p1,
            2,
            &FragmentConfig::default(),
            SpectrumOrigin::Target,
        );
        let s2 = theoretical_spectrum(
            0,
            &p2,
            2,
            &FragmentConfig::default(),
            SpectrumOrigin::Target,
        );
        assert_ne!(s1.peaks(), s2.peaks());
    }

    #[test]
    fn mz_bounds_respected() {
        let p = Peptide::parse("ACDEFGHIKLMNPQSTVWYR").unwrap();
        let cfg = FragmentConfig {
            max_fragment_charge: 2,
            min_mz: 200.0,
            max_mz: 900.0,
        };
        for ion in fragment_ions(&p, &cfg) {
            assert!(ion.mz >= 200.0 && ion.mz <= 900.0);
        }
    }

    #[test]
    fn shared_fragments_share_intensity_between_modified_and_unmodified() {
        let p = Peptide::parse("ACDEFGHIK").unwrap();
        let modified = p.with_modification(Modification::CARBAMIDOMETHYL, 1);
        let s = theoretical_spectrum(0, &p, 2, &FragmentConfig::default(), SpectrumOrigin::Target);
        let sm = theoretical_spectrum(
            0,
            &modified,
            2,
            &FragmentConfig::default(),
            SpectrumOrigin::Query,
        );
        // y1..y7 do not contain position 1, so their m/z (and intensity
        // ranking) must be identical across the two spectra.
        let shared: Vec<&Peak> = s
            .peaks()
            .iter()
            .filter(|pk| sm.peaks().iter().any(|qk| (qk.mz - pk.mz).abs() < 1e-9))
            .collect();
        assert!(
            shared.len() >= 7,
            "expected at least the unshifted y-series to be shared, got {}",
            shared.len()
        );
    }
}
