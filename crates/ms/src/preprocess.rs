//! Spectrum preprocessing (§3.1 of the paper): peak filtering and m/z
//! binning into sparse spectrum vectors.
//!
//! The pipeline retains peaks above an intensity threshold (default 1 % of
//! the base peak), keeps at most the top-N most intense peaks (the paper
//! works with 50–150 peaks per spectrum), square-root-scales intensities
//! (standard variance stabilisation for ion counts), bins m/z values into
//! fixed-width bins, sums intensities within a bin and normalises the
//! result so the strongest bin has value 1.

use crate::spectrum::{Spectrum, SpectrumOrigin};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How raw intensities are scaled before binning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntensityScaling {
    /// Use raw intensities.
    None,
    /// Square-root scaling (default; de-emphasises dominant peaks).
    Sqrt,
    /// Replace intensities by their rank (most robust, least information).
    Rank,
}

/// Preprocessing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Discard peaks below this fraction of the base-peak intensity.
    pub intensity_threshold: f64,
    /// Keep at most this many peaks (most intense first).
    pub max_peaks: usize,
    /// Spectra with fewer surviving peaks than this are rejected.
    pub min_peaks: usize,
    /// Peaks below this m/z are discarded.
    pub min_mz: f64,
    /// Peaks above this m/z are discarded.
    pub max_mz: f64,
    /// Width of one m/z bin in daltons. The conventional value 1.0005 is
    /// the average spacing between peptide isotope clusters.
    pub bin_width: f64,
    /// Intensity scaling applied before binning.
    pub scaling: IntensityScaling,
}

impl Default for PreprocessConfig {
    fn default() -> PreprocessConfig {
        PreprocessConfig {
            intensity_threshold: 0.01,
            max_peaks: 150,
            min_peaks: 5,
            min_mz: 100.0,
            max_mz: 1500.0,
            bin_width: 1.0005,
            scaling: IntensityScaling::Sqrt,
        }
    }
}

impl PreprocessConfig {
    /// Number of m/z bins implied by the m/z range and bin width. This is
    /// the dimensionality of the sparse spectrum vector and the size of the
    /// HD position-ID item memory.
    pub fn num_bins(&self) -> usize {
        ((self.max_mz - self.min_mz) / self.bin_width).ceil() as usize + 1
    }
}

/// A binned peak: bin index plus scaled, max-normalised intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinnedPeak {
    /// Bin index in `0..num_bins`.
    pub bin: u32,
    /// Intensity in `(0, 1]` after scaling and max-normalisation.
    pub intensity: f32,
}

/// A preprocessed spectrum: sparse vector of (bin, intensity) pairs sorted
/// by bin index, plus the precursor metadata the search needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSpectrum {
    /// Original spectrum id.
    pub id: u32,
    /// Precursor m/z carried over from the raw spectrum.
    pub precursor_mz: f64,
    /// Precursor charge carried over from the raw spectrum.
    pub precursor_charge: u8,
    /// Neutral precursor mass (daltons) — the quantity precursor windows
    /// are defined on.
    pub neutral_mass: f64,
    /// Provenance carried over from the raw spectrum.
    pub origin: SpectrumOrigin,
    peaks: Vec<BinnedPeak>,
}

impl BinnedSpectrum {
    /// The sparse (bin, intensity) pairs, sorted by ascending bin index.
    pub fn peaks(&self) -> &[BinnedPeak] {
        &self.peaks
    }

    /// Euclidean norm of the sparse vector (used by cosine similarity).
    pub fn l2_norm(&self) -> f64 {
        self.peaks
            .iter()
            .map(|p| f64::from(p.intensity) * f64::from(p.intensity))
            .sum::<f64>()
            .sqrt()
    }
}

/// Why preprocessing rejected a spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreprocessError {
    /// Fewer than `required` peaks survived filtering.
    TooFewPeaks {
        /// Peaks that survived.
        found: usize,
        /// Minimum required by the configuration.
        required: usize,
    },
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::TooFewPeaks { found, required } => write!(
                f,
                "spectrum has {found} peaks after filtering, {required} required"
            ),
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Applies [`PreprocessConfig`] to raw spectra.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Preprocessor {
    config: PreprocessConfig,
}

impl Preprocessor {
    /// Create a preprocessor with the given configuration.
    pub fn new(config: PreprocessConfig) -> Preprocessor {
        Preprocessor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PreprocessConfig {
        &self.config
    }

    /// Preprocess one spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`PreprocessError::TooFewPeaks`] when fewer than
    /// `config.min_peaks` peaks survive filtering — such spectra carry too
    /// little signal to search.
    pub fn run(&self, spectrum: &Spectrum) -> Result<BinnedSpectrum, PreprocessError> {
        let cfg = &self.config;
        let base = spectrum.base_peak_intensity();
        let threshold = base * cfg.intensity_threshold;

        // Range + intensity filter.
        let mut kept: Vec<(f64, f64)> = spectrum
            .peaks()
            .iter()
            .filter(|p| p.mz >= cfg.min_mz && p.mz <= cfg.max_mz && p.intensity >= threshold)
            .map(|p| (p.mz, p.intensity))
            .collect();

        // Top-N by intensity.
        if kept.len() > cfg.max_peaks {
            kept.sort_by(|a, b| b.1.total_cmp(&a.1));
            kept.truncate(cfg.max_peaks);
        }
        if kept.len() < cfg.min_peaks {
            return Err(PreprocessError::TooFewPeaks {
                found: kept.len(),
                required: cfg.min_peaks,
            });
        }

        // Scale, bin (summing within bins), normalise.
        let mut binned: Vec<(u32, f64)> = kept
            .iter()
            .map(|&(mz, intensity)| {
                let bin = ((mz - cfg.min_mz) / cfg.bin_width).floor() as u32;
                let scaled = match cfg.scaling {
                    IntensityScaling::None => intensity,
                    IntensityScaling::Sqrt => intensity.sqrt(),
                    IntensityScaling::Rank => 0.0, // filled below
                };
                (bin, scaled)
            })
            .collect();
        if cfg.scaling == IntensityScaling::Rank {
            // Rank transform: weakest surviving peak gets 1, strongest gets n.
            let mut order: Vec<usize> = (0..kept.len()).collect();
            order.sort_by(|&a, &b| kept[a].1.total_cmp(&kept[b].1));
            for (rank, &idx) in order.iter().enumerate() {
                binned[idx].1 = (rank + 1) as f64;
            }
        }
        binned.sort_by_key(|&(bin, _)| bin);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(binned.len());
        for (bin, v) in binned {
            match merged.last_mut() {
                Some((last_bin, acc)) if *last_bin == bin => *acc += v,
                _ => merged.push((bin, v)),
            }
        }
        let max = merged.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        let peaks: Vec<BinnedPeak> = merged
            .into_iter()
            .map(|(bin, v)| BinnedPeak {
                bin,
                intensity: (v / max) as f32,
            })
            .collect();

        Ok(BinnedSpectrum {
            id: spectrum.id,
            precursor_mz: spectrum.precursor_mz,
            precursor_charge: spectrum.precursor_charge,
            neutral_mass: spectrum.neutral_mass(),
            origin: spectrum.origin,
            peaks,
        })
    }

    /// Preprocess a batch, dropping rejected spectra and reporting how many
    /// survived. The returned vector preserves input order.
    pub fn run_batch(&self, spectra: &[Spectrum]) -> (Vec<BinnedSpectrum>, usize) {
        let out: Vec<BinnedSpectrum> = spectra.iter().filter_map(|s| self.run(s).ok()).collect();
        let rejected = spectra.len() - out.len();
        (out, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::Peak;

    fn spectrum(peaks: Vec<Peak>) -> Spectrum {
        Spectrum::new(3, 500.25, 2, peaks, SpectrumOrigin::Query)
    }

    fn default_pre() -> Preprocessor {
        Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            ..PreprocessConfig::default()
        })
    }

    #[test]
    fn threshold_removes_weak_peaks() {
        let s = spectrum(vec![
            Peak::new(200.0, 1000.0),
            Peak::new(300.0, 5.0), // 0.5 % of base — below 1 % threshold
            Peak::new(400.0, 50.0),
        ]);
        let b = default_pre().run(&s).unwrap();
        assert_eq!(b.peaks().len(), 2);
    }

    #[test]
    fn top_n_keeps_most_intense() {
        let peaks: Vec<Peak> = (0..300)
            .map(|i| Peak::new(150.0 + i as f64, 100.0 + i as f64))
            .collect();
        let pre = Preprocessor::new(PreprocessConfig {
            max_peaks: 150,
            intensity_threshold: 0.0,
            ..PreprocessConfig::default()
        });
        let b = pre.run(&spectrum(peaks)).unwrap();
        assert_eq!(b.peaks().len(), 150);
        // The strongest peak (m/z 449, intensity 399) must be present with
        // normalised intensity 1.
        let max = b.peaks().iter().map(|p| p.intensity).fold(0.0, f32::max);
        assert!((max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mz_range_respected() {
        let s = spectrum(vec![
            Peak::new(50.0, 500.0), // below min_mz
            Peak::new(200.0, 400.0),
            Peak::new(1600.0, 900.0), // above max_mz
        ]);
        let b = default_pre().run(&s).unwrap();
        assert_eq!(b.peaks().len(), 1);
        assert_eq!(b.peaks()[0].bin, ((200.0 - 100.0) / 1.0005) as u32);
    }

    #[test]
    fn same_bin_intensities_sum() {
        let s = spectrum(vec![
            Peak::new(200.1, 100.0),
            Peak::new(200.2, 100.0), // same 1.0005-Da bin
            Peak::new(300.0, 100.0),
        ]);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            scaling: IntensityScaling::None,
            ..PreprocessConfig::default()
        });
        let b = pre.run(&s).unwrap();
        assert_eq!(b.peaks().len(), 2);
        // merged bin has 200 units, lone bin 100 → normalised 1.0 and 0.5
        assert!((b.peaks()[0].intensity - 1.0).abs() < 1e-6);
        assert!((b.peaks()[1].intensity - 0.5).abs() < 1e-6);
    }

    #[test]
    fn min_peaks_rejection() {
        let s = spectrum(vec![Peak::new(200.0, 10.0)]);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 5,
            ..PreprocessConfig::default()
        });
        let err = pre.run(&s).unwrap_err();
        assert_eq!(
            err,
            PreprocessError::TooFewPeaks {
                found: 1,
                required: 5
            }
        );
        assert!(err.to_string().contains("1 peaks"));
    }

    #[test]
    fn bins_sorted_and_unique() {
        let peaks: Vec<Peak> = (0..100)
            .map(|i| Peak::new(100.0 + (i * 13 % 97) as f64 * 10.0, 100.0))
            .collect();
        let pre = Preprocessor::new(PreprocessConfig {
            max_mz: 2000.0,
            min_peaks: 1,
            ..PreprocessConfig::default()
        });
        let b = pre.run(&spectrum(peaks)).unwrap();
        for w in b.peaks().windows(2) {
            assert!(w[0].bin < w[1].bin);
        }
    }

    #[test]
    fn rank_scaling_orders_by_intensity() {
        let s = spectrum(vec![
            Peak::new(200.0, 10.0),
            Peak::new(300.0, 30.0),
            Peak::new(400.0, 20.0),
        ]);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            scaling: IntensityScaling::Rank,
            ..PreprocessConfig::default()
        });
        let b = pre.run(&s).unwrap();
        let by_bin: Vec<f32> = b.peaks().iter().map(|p| p.intensity).collect();
        // ranks 1,3,2 normalised by 3
        assert!((by_bin[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((by_bin[1] - 1.0).abs() < 1e-6);
        assert!((by_bin[2] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn num_bins_covers_range() {
        let cfg = PreprocessConfig::default();
        let bins = cfg.num_bins();
        // bins must cover max_mz
        let top_bin = ((cfg.max_mz - cfg.min_mz) / cfg.bin_width).floor() as usize;
        assert!(bins > top_bin);
    }

    #[test]
    fn neutral_mass_carried_over() {
        let s = spectrum(vec![Peak::new(200.0, 10.0), Peak::new(250.0, 10.0)]);
        let b = default_pre().run(&s).unwrap();
        assert!((b.neutral_mass - s.neutral_mass()).abs() < 1e-12);
    }

    #[test]
    fn batch_reports_rejections() {
        let good = spectrum(vec![
            Peak::new(200.0, 10.0),
            Peak::new(250.0, 10.0),
            Peak::new(300.0, 10.0),
            Peak::new(350.0, 10.0),
            Peak::new(420.0, 10.0),
        ]);
        let bad = spectrum(vec![Peak::new(200.0, 10.0)]);
        let pre = Preprocessor::default();
        let (out, rejected) = pre.run_batch(&[good, bad]);
        assert_eq!(out.len(), 1);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn l2_norm_matches_manual() {
        let s = spectrum(vec![Peak::new(200.0, 4.0), Peak::new(300.0, 4.0)]);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            scaling: IntensityScaling::None,
            ..PreprocessConfig::default()
        });
        let b = pre.run(&s).unwrap();
        // two equal bins, both normalised to 1.0 → norm = sqrt(2)
        assert!((b.l2_norm() - 2f64.sqrt()).abs() < 1e-6);
    }
}
