//! Integration tests for the persistent index: serialise→deserialise
//! identity, corruption rejection, warm-load search equivalence, and
//! append-vs-cold-rebuild equivalence.

use hdoms_core::accelerator::{AcceleratorConfig, OmsAccelerator};
use hdoms_index::{
    IndexBuilder, IndexConfig, IndexError, IndexReader, IndexedBackendKind, LibraryIndex,
};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_ms::library::SpectralLibrary;
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig, PipelineOutcome};
use hdoms_oms::search::{ExactBackend, ExactBackendConfig};
use proptest::prelude::*;

const TEST_DIM: usize = 512;
const THREADS: usize = 4;

fn exact_kind() -> IndexedBackendKind {
    let mut config = ExactBackendConfig::default();
    config.encoder.dim = TEST_DIM;
    IndexedBackendKind::Exact(config)
}

fn rram_kind() -> IndexedBackendKind {
    let mut config = AcceleratorConfig::default();
    config.encoder.dim = TEST_DIM;
    IndexedBackendKind::Rram(config)
}

fn build_index(kind: IndexedBackendKind, library: &SpectralLibrary, shard: usize) -> LibraryIndex {
    IndexBuilder::new(IndexConfig {
        kind,
        entries_per_shard: shard,
        threads: THREADS,
    })
    .from_library(library)
}

fn tiny_workload(seed: u64) -> SyntheticWorkload {
    SyntheticWorkload::generate(&WorkloadSpec::tiny(), seed)
}

fn pipeline() -> OmsPipeline {
    let mut config = PipelineConfig::fast_test();
    config.exact.encoder.dim = TEST_DIM;
    OmsPipeline::new(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Serialise→deserialise is the identity, for both backend kinds and
    /// across shard sizes.
    #[test]
    fn roundtrip_identity(seed in 0u64..1000, shard_pow in 4u32..9, rram in any::<bool>()) {
        let workload = tiny_workload(seed);
        let kind = if rram { rram_kind() } else { exact_kind() };
        let index = build_index(kind, &workload.library, 1usize << shard_pow);
        let bytes = index.to_bytes();
        let restored = LibraryIndex::from_bytes(&bytes, THREADS).expect("valid bytes");
        prop_assert_eq!(&index, &restored);
        // And the byte encoding itself is deterministic.
        prop_assert_eq!(bytes, restored.to_bytes());
    }
}

#[test]
fn truncated_files_rejected_at_every_sampled_cut() {
    let workload = tiny_workload(11);
    let index = build_index(exact_kind(), &workload.library, 64);
    let bytes = index.to_bytes();
    // Every prefix must fail to load: sample cuts densely at the head
    // (preamble/header land there) and sparsely through the shards.
    let cuts: Vec<usize> = (0..64)
        .chain((64..bytes.len()).step_by(977))
        .chain([bytes.len() - 1])
        .collect();
    for cut in cuts {
        assert!(
            LibraryIndex::from_bytes(&bytes[..cut], THREADS).is_err(),
            "truncation at {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn flipped_bits_rejected_everywhere() {
    let workload = tiny_workload(12);
    let index = build_index(exact_kind(), &workload.library, 64);
    let bytes = index.to_bytes();
    // A single flipped bit anywhere must never load as a *different*
    // index: either the load errors (checksum, structure) or — never —
    // succeeds. Sample offsets across preamble, header, and shards.
    for offset in (0..bytes.len()).step_by(797) {
        for bit in [0u8, 7] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 1 << bit;
            match LibraryIndex::from_bytes(&corrupt, THREADS) {
                Err(_) => {}
                Ok(loaded) => panic!(
                    "bit {bit} at byte {offset} flipped silently: loaded {} entries",
                    loaded.entry_count()
                ),
            }
        }
    }
}

#[test]
fn checksum_failures_name_their_section() {
    let workload = tiny_workload(13);
    let index = build_index(exact_kind(), &workload.library, 64);
    let mut bytes = index.to_bytes();
    // Flip a byte near the end: that lands in the last shard's payload.
    let n = bytes.len();
    bytes[n - 16] ^= 0xff;
    match LibraryIndex::from_bytes(&bytes, THREADS) {
        Err(IndexError::ChecksumMismatch { section }) => {
            assert!(section.starts_with("shard"), "section was {section:?}")
        }
        other => panic!("expected a shard checksum mismatch, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_future_version_rejected() {
    let workload = tiny_workload(14);
    let index = build_index(exact_kind(), &workload.library, 64);
    let bytes = index.to_bytes();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        LibraryIndex::from_bytes(&wrong_magic, THREADS),
        Err(IndexError::BadMagic)
    ));

    let mut future = bytes;
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        LibraryIndex::from_bytes(&future, THREADS),
        Err(IndexError::UnsupportedVersion { found: 99 })
    ));
}

fn outcomes_for(
    index: &LibraryIndex,
    workload: &SyntheticWorkload,
) -> (PipelineOutcome, PipelineOutcome) {
    let pipeline = pipeline();
    let sharded = index.sharded_backend(THREADS).expect("kind matches");
    let sharded_outcome = pipeline.run_catalog(&workload.queries, index, &sharded);
    let flat_outcome = match index.kind() {
        IndexedBackendKind::Rram(_) => {
            let accel = index.to_accelerator(THREADS).expect("rram kind");
            pipeline.run_catalog(&workload.queries, index, &accel)
        }
        _ => {
            let exact = index.to_exact_backend(THREADS).expect("exact kind");
            pipeline.run_catalog(&workload.queries, index, &exact)
        }
    };
    (flat_outcome, sharded_outcome)
}

#[test]
fn warm_load_searches_like_cold_build_exact() {
    let workload = tiny_workload(21);
    let pipeline_handle = pipeline();

    // Cold: build the backend straight from the library.
    let mut cold_config = ExactBackendConfig::default();
    cold_config.encoder.dim = TEST_DIM;
    cold_config.preprocess = pipeline_handle.config().preprocess;
    cold_config.threads = THREADS;
    let cold_backend = ExactBackend::build(&workload.library, cold_config);
    let cold = pipeline_handle.run_catalog(&workload.queries, &workload.library, &cold_backend);

    // Warm: persist, reload, reconstruct — flat and sharded.
    let built = build_index(exact_kind(), &workload.library, 48);
    let restored = LibraryIndex::from_bytes(&built.to_bytes(), THREADS).expect("roundtrip");
    let (flat, sharded) = outcomes_for(&restored, &workload);

    assert_eq!(cold.psms, flat.psms, "warm flat PSMs differ from cold");
    assert_eq!(
        cold.psms, sharded.psms,
        "warm sharded PSMs differ from cold"
    );
    assert_eq!(cold.accepted, sharded.accepted);
}

#[test]
fn warm_load_searches_like_cold_build_rram() {
    let workload = tiny_workload(22);
    let pipeline_handle = pipeline();

    let mut cold_config = AcceleratorConfig::default();
    cold_config.encoder.dim = TEST_DIM;
    cold_config.preprocess = pipeline_handle.config().preprocess;
    cold_config.threads = THREADS;
    let cold_backend = OmsAccelerator::build(&workload.library, cold_config);
    let cold = pipeline_handle.run_catalog(&workload.queries, &workload.library, &cold_backend);

    let mut kind_config = cold_config;
    kind_config.preprocess = pipeline_handle.config().preprocess;
    let built = build_index(IndexedBackendKind::Rram(kind_config), &workload.library, 48);
    let restored = LibraryIndex::from_bytes(&built.to_bytes(), THREADS).expect("roundtrip");

    // Warm reconstruction straight off the loaded index.
    let warm_accel = restored.to_accelerator(THREADS).expect("rram kind");
    let warm = pipeline_handle.run_catalog(&workload.queries, &restored, &warm_accel);
    assert_eq!(
        cold.psms, warm.psms,
        "warm accelerator PSMs differ from cold"
    );

    let (flat, sharded) = outcomes_for(&restored, &workload);
    assert_eq!(cold.psms, flat.psms);
    assert_eq!(cold.psms, sharded.psms);
}

#[test]
fn append_then_search_equals_cold_rebuild() {
    let first = tiny_workload(31);
    let second = tiny_workload(32);

    // Appended: index the first library, then append the second's entries.
    let mut appended = build_index(exact_kind(), &first.library, 40);
    appended.append_entries(second.library.entries(), THREADS);

    // Cold rebuild over the concatenated library (ids re-densified in the
    // same order append assigns them).
    let combined: SpectralLibrary = first
        .library
        .iter()
        .chain(second.library.iter())
        .cloned()
        .collect();
    let rebuilt = build_index(exact_kind(), &combined, 40);

    assert_eq!(appended.entry_count(), rebuilt.entry_count());
    assert_eq!(
        appended.shared_references(),
        rebuilt.shared_references(),
        "appended encodings must match a cold rebuild"
    );

    // And searches agree PSM-for-PSM (shard layouts may differ — the
    // append path splits shards locally — but results must not).
    let (_, appended_outcome) = outcomes_for(&appended, &first);
    let (_, rebuilt_outcome) = outcomes_for(&rebuilt, &first);
    assert_eq!(appended_outcome.psms, rebuilt_outcome.psms);

    // Appended index still round-trips through disk.
    let bytes = appended.to_bytes();
    let restored = LibraryIndex::from_bytes(&bytes, THREADS).expect("appended roundtrip");
    assert_eq!(appended, restored);
}

#[test]
fn append_is_incremental_for_rram_too() {
    let first = tiny_workload(33);
    let second = tiny_workload(34);

    let mut appended = build_index(rram_kind(), &first.library, 64);
    appended.append_entries(second.library.entries(), THREADS);

    let combined: SpectralLibrary = first
        .library
        .iter()
        .chain(second.library.iter())
        .cloned()
        .collect();
    let rebuilt = build_index(rram_kind(), &combined, 64);

    assert_eq!(appended.shared_references(), rebuilt.shared_references());
    let stats_a = appended.build_stats();
    let stats_b = rebuilt.build_stats();
    assert_eq!(stats_a.references_stored, stats_b.references_stored);
    assert!(
        (stats_a.mean_encode_ber - stats_b.mean_encode_ber).abs() < 1e-12,
        "append must fold encode-BER statistics exactly"
    );
}

/// Pins the ordering invariant the streaming build path generalises:
/// when appended entries straddle shard-bucket boundaries — including
/// masses exactly equal to an existing shard's upper bound, where only
/// the `(mass, id)` tie-break decides placement — every shard must stay
/// sorted, shard ranges must stay monotone (a disk round-trip re-runs
/// the structural validation), and the result must search identically
/// to a cold rebuild over the concatenated library.
#[test]
fn append_straddling_shard_boundaries_keeps_order() {
    let first = tiny_workload(35);
    // Small shards so the appended batch spans many bucket boundaries.
    let mut appended = build_index(exact_kind(), &first.library, 16);
    let boundary_count = appended.shards().len();
    assert!(boundary_count > 10, "need many shards to straddle");

    // The straddling batch: one entry cloned from the edge of every
    // existing shard (its mass *equals* a shard boundary exactly), plus
    // a fresh workload whose masses scatter across the whole range.
    let second = tiny_workload(36);
    let edges: Vec<u32> = appended
        .shards()
        .iter()
        .flat_map(|s| [s.entries.first(), s.entries.last()])
        .flatten()
        .map(|e| e.id)
        .collect();
    let straddle: SpectralLibrary = edges
        .iter()
        .map(|&id| first.library.get(id).expect("edge id in library").clone())
        .chain(second.library.iter().cloned())
        .collect();
    appended.append_entries(straddle.entries(), THREADS);

    // Global iteration order stays nondecreasing in (mass, id) — the
    // contract the shard walk, candidate windows, and the streaming
    // writer's shard layout all assume.
    let order: Vec<(f64, u32)> = appended.entries().map(|e| (e.neutral_mass, e.id)).collect();
    for pair in order.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "entries out of (mass, id) order after boundary-straddling append: \
             {:?} before {:?}",
            pair[0],
            pair[1]
        );
    }
    // Duplicate masses really exist at shard boundaries (the cloned
    // edge entries), so the tie-break above was exercised.
    assert!(
        order
            .windows(2)
            .any(|p| p[0].0 == p[1].0 && p[0].1 < p[1].1),
        "test lost its equal-mass boundary entries"
    );

    // The round-trip re-runs structural validation: sorted shards,
    // monotone shard ranges, dense unique ids.
    let restored =
        LibraryIndex::from_bytes(&appended.to_bytes(), THREADS).expect("straddled roundtrip");
    assert_eq!(appended, restored);

    // And the encodings + search results equal a cold rebuild over the
    // concatenated library.
    let combined: SpectralLibrary = first
        .library
        .iter()
        .chain(straddle.iter())
        .cloned()
        .collect();
    let rebuilt = build_index(exact_kind(), &combined, 16);
    assert_eq!(appended.shared_references(), rebuilt.shared_references());
    let (_, appended_outcome) = outcomes_for(&appended, &first);
    let (_, rebuilt_outcome) = outcomes_for(&rebuilt, &first);
    assert_eq!(appended_outcome.psms, rebuilt_outcome.psms);
}

#[test]
fn kind_mismatch_is_an_error() {
    let workload = tiny_workload(41);
    let index = build_index(exact_kind(), &workload.library, 64);
    assert!(index.to_accelerator(THREADS).is_err());
    assert!(index.to_hyperoms_backend(THREADS).is_err());
    assert!(index.to_exact_backend(THREADS).is_ok());
}

#[test]
fn file_roundtrip_through_reader() {
    let workload = tiny_workload(42);
    let index = build_index(exact_kind(), &workload.library, 64);
    let path = std::env::temp_dir().join("hdoms-test-roundtrip.hdx");
    index.write(&path).expect("write");
    let loaded = IndexReader::with_threads(THREADS)
        .open_with(&path)
        .expect("open");
    std::fs::remove_file(&path).ok();
    assert_eq!(index, loaded);
}

#[test]
fn checksum_valid_but_absurd_entry_count_rejected() {
    use hdoms_index::format::CHECKSUM_SEED;
    use hdoms_index::xxhash::xxh64;

    let workload = tiny_workload(15);
    let index = build_index(exact_kind(), &workload.library, 64);
    let mut bytes = index.to_bytes();

    // Locate the header (magic 8 + version 4 + header_len 8) and the
    // entry_count field inside it: kind tag is parsed first, then build
    // stats; rather than hand-computing that offset, scan the header for
    // the little-endian encoding of the true entry count and overwrite it
    // with an absurd value, then re-seal the header checksum so only the
    // new bound check can reject the file.
    let header_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let header_range = 20..20 + header_len;
    let needle = (index.entry_count() as u64).to_le_bytes();
    // build_stats.references_stored encodes the same value earlier in
    // the header, so take the LAST occurrence — that is entry_count.
    let pos = bytes[header_range.clone()]
        .windows(8)
        .rposition(|w| w == needle)
        .expect("entry_count encoding present in header");
    let absurd = (1u64 << 62).to_le_bytes();
    bytes[header_range.start + pos..header_range.start + pos + 8].copy_from_slice(&absurd);
    let new_hash = xxh64(&bytes[header_range.clone()], CHECKSUM_SEED);
    let hash_at = header_range.end;
    bytes[hash_at..hash_at + 8].copy_from_slice(&new_hash.to_le_bytes());

    match LibraryIndex::from_bytes(&bytes, THREADS) {
        Err(IndexError::Invalid(message)) => {
            assert!(message.contains("entry count"), "message was {message:?}")
        }
        other => panic!("expected a clean rejection, got {other:?}"),
    }
}
