//! Shard residency: per-shard word footprints and page release.
//!
//! 1. accounting — `shard_word_bytes` sums to exactly the bytes the
//!    stored hypervectors occupy, shard by shard;
//! 2. owned no-op — a cold-built (owned-table) index releases nothing;
//! 3. release + reload — a mapped index releases whole pages for a
//!    cold shard and every hypervector read afterwards is byte-identical
//!    (the words refault from the backing file), so eviction can never
//!    change search results.

use hdoms_index::{IndexBuilder, IndexConfig, IndexReader, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};

/// A small index whose shards each span several pages (dim 4096 → 512
/// bytes per hypervector, 64 entries per shard → 32 KiB spans; the runt
/// final shard still spans at least two pages).
fn build_index() -> LibraryIndex {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 11);
    let mut config = IndexConfig {
        entries_per_shard: 64,
        threads: 2,
        ..IndexConfig::default()
    };
    if let IndexedBackendKind::Exact(exact) = &mut config.kind {
        exact.encoder.dim = 4096;
    }
    IndexBuilder::new(config).from_library(&workload.library)
}

/// All stored hypervector words, densely by id, for byte-identity
/// comparison across a release.
fn words_by_id(index: &LibraryIndex) -> Vec<Option<Vec<u64>>> {
    (0..index.entry_count())
        .map(|id| {
            index
                .shared_references()
                .hv(id)
                .map(|hv| hv.words().to_vec())
        })
        .collect()
}

#[test]
fn shard_word_bytes_account_for_every_stored_hypervector() {
    let index = build_index();
    let per_shard = index.shard_word_bytes();
    assert_eq!(per_shard.len(), index.shards().len());
    let hv_bytes = (index.dim().div_ceil(64) * 8) as u64;
    let present = index.shared_references().present_count() as u64;
    assert_eq!(per_shard.iter().sum::<u64>(), present * hv_bytes);
    assert!(per_shard.iter().all(|&b| b > 0), "every shard holds words");
}

#[test]
fn owned_indexes_release_nothing() {
    let index = build_index();
    assert!(!index.shared_references().is_mapped());
    for shard in 0..index.shards().len() {
        assert_eq!(index.release_shard_words(shard), 0);
    }
    assert_eq!(index.release_shard_words(usize::MAX), 0, "unknown shard");
}

#[test]
fn released_shards_reload_byte_identically() {
    let index = build_index();
    let path =
        std::env::temp_dir().join(format!("hdoms-shard-residency-{}.hdx", std::process::id()));
    index.write(&path).unwrap();
    let mapped = IndexReader::open_mapped(&path).unwrap();
    assert!(mapped.shared_references().is_mapped());

    let before = words_by_id(&mapped);
    let footprints = mapped.shard_word_bytes();
    for (shard, footprint) in footprints.iter().enumerate() {
        let released = mapped.release_shard_words(shard);
        // Release trims inward to whole pages, so a span at least two
        // pages long must give some pages back, and the page-aligned
        // interior can never exceed the span itself.
        if *footprint >= 2 * 4096 {
            assert!(released > 0, "shard {shard} spans pages but released 0");
        }
        assert!(released as u64 <= *footprint);
    }
    assert_eq!(mapped.release_shard_words(usize::MAX), 0, "unknown shard");

    // Every word refaults from the file: reads after the release are
    // byte-identical, so eviction is invisible to search results.
    assert_eq!(words_by_id(&mapped), before);
    std::fs::remove_file(&path).ok();
}
