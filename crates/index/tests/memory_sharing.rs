//! Memory regression test for the ROADMAP "share reference hypervectors
//! between index and warm backends" item: reconstructing a warm backend
//! from a loaded index must **share** the encoded library, not clone it.
//!
//! Two independent checks:
//!
//! 1. identity — the backend's reference table is the *same allocation*
//!    as the index's (`Arc::ptr_eq`), for every backend kind;
//! 2. accounting — a counting global allocator bounds the bytes
//!    allocated during warm construction to a small fraction of the
//!    hypervector payload (the old cloning path allocated at least one
//!    full payload).
//!
//! The allocator counter is process-global, so everything that measures
//! it runs inside a single `#[test]` (sibling tests in this binary would
//! otherwise race the counter).

use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::search::ExactBackendConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Counts every byte ever requested from the allocator (frees are not
/// subtracted — the measurement below wants gross allocation traffic,
/// which is what a clone would add to).
struct CountingAllocator;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Bytes of hypervector words an index stores (the payload a clone would
/// duplicate).
fn payload_bytes(index: &LibraryIndex) -> usize {
    index
        .references()
        .iter()
        .flatten()
        .map(|hv| hv.words().len() * 8)
        .sum()
}

#[test]
fn warm_backends_share_not_clone_the_reference_table() {
    // Large enough that the hypervector payload (~2.5 MB at dim 2048 ×
    // 10k entries) dwarfs every fixed cost of backend construction (the
    // encoder item memories are ~0.4 MB).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.01), 99);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = 2048;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: 8,
    })
    .from_library(&workload.library);
    let payload = payload_bytes(&index);
    assert!(payload > 2_000_000, "workload too small to be meaningful");

    // Baseline: every warm constructor must build its query encoder, and
    // the encoder's item memories cost real allocation traffic. Measure
    // that once so the assertions below bound the *marginal* cost of
    // backend construction.
    let IndexedBackendKind::Exact(exact_config) = index.kind() else {
        panic!("built as exact");
    };
    let before = ALLOCATED.load(Ordering::Relaxed);
    let baseline_encoder = hdoms_hdc::encoder::IdLevelEncoder::new(exact_config.encoder);
    let encoder_alloc = ALLOCATED.load(Ordering::Relaxed) - before;
    drop(baseline_encoder);

    // -- accounting: warm construction must not re-allocate the payload.
    let before = ALLOCATED.load(Ordering::Relaxed);
    let backend = index.to_exact_backend(1).expect("exact kind");
    let allocated = (ALLOCATED.load(Ordering::Relaxed) - before).saturating_sub(encoder_alloc);
    assert!(
        allocated < payload / 4,
        "to_exact_backend allocated {allocated} bytes beyond its encoder \
         against a {payload}-byte payload — the reference table is being \
         cloned again"
    );

    // -- identity: same allocation, and the handle count adds up.
    assert!(
        Arc::ptr_eq(index.shared_references(), backend.shared_references()),
        "backend holds a different reference table than the index"
    );
    assert_eq!(Arc::strong_count(index.shared_references()), 2);

    // The sharded serving backend shares the same single copy (its extra
    // state is the id→shard assignment, 4 bytes per entry).
    let before = ALLOCATED.load(Ordering::Relaxed);
    let sharded = index.sharded_backend(1).expect("exact kind");
    let allocated = (ALLOCATED.load(Ordering::Relaxed) - before).saturating_sub(encoder_alloc);
    assert!(
        allocated < payload / 4,
        "sharded_backend allocated {allocated} bytes beyond its encoder \
         against a {payload}-byte payload"
    );
    assert_eq!(Arc::strong_count(index.shared_references()), 3);
    drop(sharded);
    drop(backend);
    assert_eq!(Arc::strong_count(index.shared_references()), 1);

    // A serialise→load round-trip still shares with its own backends.
    let restored = LibraryIndex::from_bytes(&index.to_bytes(), 4).expect("roundtrip");
    let warm = restored.to_exact_backend(1).expect("exact kind");
    assert!(Arc::ptr_eq(
        restored.shared_references(),
        warm.shared_references()
    ));

    // The RRAM accelerator path shares too (identity check on a small
    // workload; this lives in the same #[test] so nothing races the
    // allocator windows above).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 100);
    let mut config = hdoms_core::accelerator::AcceleratorConfig::default();
    config.encoder.dim = 2048;
    config.encoder.q_levels = 16;
    config.encoder.level_style = hdoms_hdc::item_memory::LevelStyle::Chunked { num_chunks: 64 };
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Rram(config),
        entries_per_shard: 64,
        threads: 4,
    })
    .from_library(&workload.library);
    let accel = index.to_accelerator(2).expect("rram kind");
    assert!(Arc::ptr_eq(
        index.shared_references(),
        accel.search_engine().shared_references()
    ));
}
