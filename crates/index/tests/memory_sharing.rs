//! Memory regression tests for reference-hypervector storage:
//!
//! 1. identity — a warm backend's reference table is the *same storage*
//!    as the index's (`SharedReferences::ptr_eq`), for every backend
//!    kind;
//! 2. accounting — a counting global allocator bounds the bytes
//!    allocated during warm construction to a small fraction of the
//!    hypervector payload (the old cloning path allocated at least one
//!    full payload);
//! 3. zero-copy — the mapped load path (`LibraryIndex::from_buffer`
//!    over a v2 file image) performs **zero** per-reference hypervector
//!    allocations: its allocation traffic is bounded by the metadata,
//!    and the copying path exceeds it by at least the full payload;
//! 4. versioning — v1, v2 and v3 file images cross round-trip with
//!    identical search storage, and the v3 sketch section matches the
//!    on-the-fly derivation older images fall back to.
//!
//! The allocator counter is process-global, so every test that measures
//! it (or allocates heavily while another measures) serialises on one
//! mutex.

use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind, LibraryIndex};
use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
use hdoms_oms::search::{ExactBackendConfig, SharedReferences};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counts every byte ever requested from the allocator (frees are not
/// subtracted — the measurement below wants gross allocation traffic,
/// which is what a clone would add to).
struct CountingAllocator;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Serialises the tests in this binary: the counter above is global, so
/// a test allocating concurrently would inflate another's windows.
static ALLOCATOR_WINDOWS: Mutex<()> = Mutex::new(());

/// Bytes of hypervector words an index stores (the payload a clone would
/// duplicate).
fn payload_bytes(index: &LibraryIndex) -> usize {
    index
        .shared_references()
        .iter()
        .flatten()
        .map(|hv| hv.words().len() * 8)
        .sum()
}

fn ptr_eq(a: &SharedReferences, b: &SharedReferences) -> bool {
    SharedReferences::ptr_eq(a, b)
}

#[test]
fn warm_backends_share_not_clone_the_reference_table() {
    let _serial = ALLOCATOR_WINDOWS.lock().unwrap();
    // Large enough that the hypervector payload (~2.5 MB at dim 2048 ×
    // 10k entries) dwarfs every fixed cost of backend construction (the
    // encoder item memories are ~0.4 MB).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.01), 99);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = 2048;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: 8,
    })
    .from_library(&workload.library);
    let payload = payload_bytes(&index);
    assert!(payload > 2_000_000, "workload too small to be meaningful");

    // Baseline: every warm constructor must build its query encoder, and
    // the encoder's item memories cost real allocation traffic. Measure
    // that once so the assertions below bound the *marginal* cost of
    // backend construction.
    let IndexedBackendKind::Exact(exact_config) = index.kind() else {
        panic!("built as exact");
    };
    let before = ALLOCATED.load(Ordering::Relaxed);
    let baseline_encoder = hdoms_hdc::encoder::IdLevelEncoder::new(exact_config.encoder);
    let encoder_alloc = ALLOCATED.load(Ordering::Relaxed) - before;
    drop(baseline_encoder);

    // -- accounting: warm construction must not re-allocate the payload.
    let before = ALLOCATED.load(Ordering::Relaxed);
    let backend = index.to_exact_backend(1).expect("exact kind");
    let allocated = (ALLOCATED.load(Ordering::Relaxed) - before).saturating_sub(encoder_alloc);
    assert!(
        allocated < payload / 4,
        "to_exact_backend allocated {allocated} bytes beyond its encoder \
         against a {payload}-byte payload — the reference table is being \
         cloned again"
    );

    // -- identity: same storage, and the handle count adds up.
    assert!(
        ptr_eq(index.shared_references(), backend.shared_references()),
        "backend holds a different reference table than the index"
    );
    assert_eq!(index.shared_references().handle_count(), 2);

    // The sharded serving backend shares the same single copy (its extra
    // state is the id→shard assignment, 4 bytes per entry).
    let before = ALLOCATED.load(Ordering::Relaxed);
    let sharded = index.sharded_backend(1).expect("exact kind");
    let allocated = (ALLOCATED.load(Ordering::Relaxed) - before).saturating_sub(encoder_alloc);
    assert!(
        allocated < payload / 4,
        "sharded_backend allocated {allocated} bytes beyond its encoder \
         against a {payload}-byte payload"
    );
    assert_eq!(index.shared_references().handle_count(), 3);
    drop(sharded);
    drop(backend);
    assert_eq!(index.shared_references().handle_count(), 1);

    // A serialise→load round-trip still shares with its own backends.
    let restored = LibraryIndex::from_bytes(&index.to_bytes(), 4).expect("roundtrip");
    let warm = restored.to_exact_backend(1).expect("exact kind");
    assert!(ptr_eq(
        restored.shared_references(),
        warm.shared_references()
    ));

    // The RRAM accelerator path shares too (identity check on a small
    // workload).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 100);
    let mut config = hdoms_core::accelerator::AcceleratorConfig::default();
    config.encoder.dim = 2048;
    config.encoder.q_levels = 16;
    config.encoder.level_style = hdoms_hdc::item_memory::LevelStyle::Chunked { num_chunks: 64 };
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Rram(config),
        entries_per_shard: 64,
        threads: 4,
    })
    .from_library(&workload.library);
    let accel = index.to_accelerator(2).expect("rram kind");
    assert!(ptr_eq(
        index.shared_references(),
        accel.search_engine().shared_references()
    ));
}

#[test]
fn mapped_load_performs_zero_per_reference_hypervector_allocations() {
    let _serial = ALLOCATOR_WINDOWS.lock().unwrap();
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.01), 101);
    let mut exact = ExactBackendConfig::default();
    // A dimension high enough that the hypervector payload dwarfs the
    // per-entry metadata (peptides, shard vectors, the offset table) —
    // what separates "allocates the payload" from "allocates only
    // metadata" unambiguously.
    exact.encoder.dim = 4096;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 512,
        threads: 8,
    })
    .from_library(&workload.library);
    let payload = payload_bytes(&index);
    assert!(payload > 4_000_000, "workload too small to be meaningful");
    let bytes = index.to_bytes();

    // Build the backing buffer *outside* the measurement window: the one
    // whole-file allocation is the load's input, exactly as the bytes
    // slice is the copying path's input.
    let buffer = hdoms_hdc::WordBuffer::from_bytes(&bytes);

    let before = ALLOCATED.load(Ordering::Relaxed);
    let mapped = LibraryIndex::from_buffer(buffer, 4).expect("mapped load");
    let mapped_alloc = ALLOCATED.load(Ordering::Relaxed) - before;

    let before = ALLOCATED.load(Ordering::Relaxed);
    let copied = LibraryIndex::from_bytes(&bytes, 4).expect("copying load");
    let copied_alloc = ALLOCATED.load(Ordering::Relaxed) - before;

    assert!(mapped.shared_references().is_mapped());
    assert!(!copied.shared_references().is_mapped());
    // Zero per-reference hypervector allocations: the mapped load's
    // traffic stays far below the payload it would have materialised…
    assert!(
        mapped_alloc < payload / 2,
        "mapped load allocated {mapped_alloc} bytes against a \
         {payload}-byte hypervector payload — it is materialising \
         references"
    );
    // …and the copying load pays at least the full payload on top of
    // the identical metadata work.
    assert!(
        copied_alloc >= mapped_alloc + payload,
        "copying load ({copied_alloc} B) should exceed the mapped load \
         ({mapped_alloc} B) by the payload ({payload} B)"
    );

    // Both representations expose identical search storage and
    // metadata.
    assert_eq!(mapped, copied);
    assert_eq!(mapped.shared_references(), index.shared_references());

    // Warm backends over the mapped index share the buffer, not copies.
    let backend = mapped.to_exact_backend(1).expect("exact kind");
    assert!(ptr_eq(
        mapped.shared_references(),
        backend.shared_references()
    ));
    assert_eq!(mapped.shared_references().handle_count(), 2);
}

#[test]
fn v1_v2_and_v3_images_cross_roundtrip() {
    let _serial = ALLOCATOR_WINDOWS.lock().unwrap();
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 102);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = 512;
    let index = IndexBuilder::new(IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 64,
        threads: 4,
    })
    .from_library(&workload.library);

    // v1 image → copying load → identical index.
    let v1 = index.to_bytes_version(1);
    let from_v1 = LibraryIndex::from_bytes(&v1, 4).expect("v1 loads");
    assert_eq!(from_v1, index);

    // The mapped loader accepts a v1 image too, via the documented
    // copying fallback.
    let from_v1_mapped =
        LibraryIndex::from_buffer(hdoms_hdc::WordBuffer::from_bytes(&v1), 4).expect("v1 fallback");
    assert!(!from_v1_mapped.shared_references().is_mapped());
    assert_eq!(from_v1_mapped, index);

    // v1 → load → re-serialise as v2 → mapped load: same index, now
    // searchable in place.
    let v2 = from_v1.to_bytes_version(2);
    let from_v2 =
        LibraryIndex::from_buffer(hdoms_hdc::WordBuffer::from_bytes(&v2), 4).expect("v2 loads");
    assert!(from_v2.shared_references().is_mapped());
    assert_eq!(from_v2, index);

    // v3 (the default) adds the persisted prefilter sketch section and
    // still mapped-loads in place.
    let v3 = index.to_bytes_version(3);
    assert_eq!(v3, index.to_bytes(), "v3 is the default encoding");
    let from_v3 =
        LibraryIndex::from_buffer(hdoms_hdc::WordBuffer::from_bytes(&v3), 4).expect("v3 loads");
    assert!(from_v3.shared_references().is_mapped());
    assert_eq!(from_v3, index);

    // …and back down: every loaded image re-serialises byte-identically
    // at every older version, so v1/v2 readers keep working against
    // down-converted files.
    assert_eq!(from_v2.to_bytes_version(1), v1);
    assert_eq!(from_v3.to_bytes_version(1), v1);
    assert_eq!(from_v3.to_bytes_version(2), v2);

    // A v2 image carries no sketch section; deriving it on the fly must
    // produce exactly the table the v3 image persisted.
    assert_eq!(from_v2.sketch_index(), from_v3.sketch_index());

    // The three images really differ on disk (alignment, sketch
    // section), but agree byte-for-byte about every hypervector.
    assert_ne!(v1, v2);
    assert_ne!(v2, v3);
    assert_eq!(from_v1.shared_references(), from_v2.shared_references());
    assert_eq!(from_v2.shared_references(), from_v3.shared_references());
}
