//! Differential build-equivalence suite for the streaming index
//! builder: [`StreamingIndexBuilder`] must emit the same `.hdx` v3 image
//! as `IndexBuilder::from_library(...).to_bytes()`, **byte for byte**,
//! over arbitrary entry counts, shard distributions, spill thresholds,
//! thread counts, and backend kinds — including single-entry libraries
//! and shards with no stored hypervectors. On top of equivalence:
//!
//! * corruption — a truncated or deleted spill file is rejected with a
//!   structured [`IndexError`], never a panic, and the builder cleans
//!   its temporary files up on the way out;
//! * memory — a live-bytes peak-tracking global allocator asserts the
//!   streaming build's peak heap stays below the encoded payload (and is
//!   governed by the spill threshold), while the in-memory build's peak
//!   exceeds it. The allocator is process-global, so the measuring test
//!   serialises on a mutex like `memory_sharing.rs` does.

use hdoms_baselines::hyperoms::HyperOmsConfig;
use hdoms_core::accelerator::AcceleratorConfig;
use hdoms_index::streaming::{StreamingConfig, StreamingIndexBuilder};
use hdoms_index::{IndexBuilder, IndexConfig, IndexError, IndexReader, IndexedBackendKind};
use hdoms_ms::dataset::{ScaledLibrary, ScaledLibrarySpec, SyntheticWorkload, WorkloadSpec};
use hdoms_ms::library::SpectralLibrary;
use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
use hdoms_oms::search::ExactBackendConfig;
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tracks live heap bytes and their high-water mark. Unlike the gross
/// allocation counter in `memory_sharing.rs`, frees are subtracted:
/// streaming deliberately allocates every hypervector *transiently*, so
/// only the peak of live bytes distinguishes it from the in-memory path.
struct PeakAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the new block before releasing the old one — the real
        // allocator may briefly hold both.
        on_alloc(new_size);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_COUNTER: PeakAllocator = PeakAllocator;

/// Serialises tests that measure (or heavily disturb) the global peak.
static ALLOCATOR_WINDOWS: Mutex<()> = Mutex::new(());

/// Run `f` and return its value plus the peak of live bytes *above* the
/// live level at entry.
fn peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    let value = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (value, peak.saturating_sub(live))
}

const TEST_DIM: usize = 512;

fn exact_kind(dim: usize) -> IndexedBackendKind {
    let mut config = ExactBackendConfig::default();
    config.encoder.dim = dim;
    IndexedBackendKind::Exact(config)
}

fn rram_kind(dim: usize) -> IndexedBackendKind {
    let mut config = AcceleratorConfig::default();
    config.encoder.dim = dim;
    IndexedBackendKind::Rram(config)
}

fn hyperoms_kind(dim: usize) -> IndexedBackendKind {
    IndexedBackendKind::HyperOms(HyperOmsConfig {
        dim,
        ..HyperOmsConfig::default()
    })
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdoms-streq-{}-{tag}.hdx", std::process::id()))
}

/// A scaled synthetic library materialised for the in-memory reference
/// build — the same entries the streaming path consumes.
fn scaled_library(peptides: usize, factor: usize, seed: u64) -> SpectralLibrary {
    let spec = ScaledLibrarySpec {
        base: WorkloadSpec {
            reference_peptides: peptides,
            ..WorkloadSpec::tiny()
        },
        factor,
        seed,
    };
    ScaledLibrary::new(spec).materialize()
}

/// Streaming-build `library` into a fresh temp file and return the
/// image bytes (the file is removed).
fn stream_bytes(config: StreamingConfig, library: &SpectralLibrary, tag: &str) -> Vec<u8> {
    let path = temp_path(tag);
    let report =
        StreamingIndexBuilder::build_from_library(config, &path, library).expect("streaming build");
    assert_eq!(report.entry_count, library.len());
    let bytes = fs::read(&path).expect("read streamed image");
    assert_eq!(bytes.len() as u64, report.index_bytes);
    fs::remove_file(&path).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The core differential: over arbitrary library sizes, augmentation
    /// factors, shard sizes, spill thresholds (1, mid, and larger than
    /// the library), and thread counts, the streamed image equals the
    /// in-memory image byte for byte.
    #[test]
    fn streaming_matches_in_memory_build(
        seed in 0u64..1000,
        peptides in 1usize..25,
        factor in 1usize..4,
        shard_pow in 2u32..8,
        // `1` forces per-entry chunks; values above the library size
        // (small libraries × large draws) exercise the single-chunk path.
        spill in 1usize..70,
        threads in 1usize..5,
    ) {
        let library = scaled_library(peptides, factor, seed);
        let config = IndexConfig {
            kind: exact_kind(TEST_DIM),
            entries_per_shard: 1usize << shard_pow,
            threads,
        };
        let in_memory = IndexBuilder::new(config.clone()).from_library(&library).to_bytes();
        let streamed = stream_bytes(
            StreamingConfig { index: config, spill_threshold: spill },
            &library,
            &format!("prop-{seed}-{peptides}-{factor}-{shard_pow}-{spill}-{threads}"),
        );
        prop_assert_eq!(&streamed, &in_memory);
    }
}

/// A single-entry library streams to the same bytes and opens cleanly.
#[test]
fn single_entry_library_matches() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 3);
    let library: SpectralLibrary = workload.library.iter().take(1).cloned().collect();
    let config = IndexConfig {
        kind: exact_kind(TEST_DIM),
        entries_per_shard: 64,
        threads: 2,
    };
    let in_memory = IndexBuilder::new(config.clone()).from_library(&library);
    let path = temp_path("single");
    StreamingIndexBuilder::build_from_library(
        StreamingConfig {
            index: config,
            spill_threshold: 8,
        },
        &path,
        &library,
    )
    .expect("streaming build");
    assert_eq!(fs::read(&path).unwrap(), in_memory.to_bytes());
    let loaded = IndexReader::open(&path).expect("open streamed single-entry index");
    assert_eq!(loaded.entry_count(), 1);
    assert_eq!(loaded, in_memory);
    fs::remove_file(&path).ok();
}

/// Push-call granularity is invisible: one push, per-entry pushes, and
/// the buffered iterator path all produce identical bytes.
#[test]
fn push_granularity_is_invisible() {
    let library = scaled_library(15, 2, 21);
    let config = IndexConfig {
        kind: exact_kind(TEST_DIM),
        entries_per_shard: 16,
        threads: 3,
    };
    let streaming = StreamingConfig {
        index: config,
        spill_threshold: 7,
    };

    let one_push = stream_bytes(streaming.clone(), &library, "gran-one");

    let path = temp_path("gran-many");
    let mut builder = StreamingIndexBuilder::create(streaming.clone(), &path).unwrap();
    for entry in library.iter() {
        builder.push_entries(std::slice::from_ref(entry)).unwrap();
    }
    builder.finish().unwrap();
    let per_entry = fs::read(&path).unwrap();
    fs::remove_file(&path).ok();

    let path = temp_path("gran-iter");
    StreamingIndexBuilder::build_from_iter(streaming, &path, library.iter().cloned()).unwrap();
    let from_iter = fs::read(&path).unwrap();
    fs::remove_file(&path).ok();

    assert_eq!(one_push, per_entry);
    assert_eq!(one_push, from_iter);
}

/// When preprocessing rejects every spectrum, the shards store metadata
/// but no hypervector words — the "empty shard" layout. Both builders
/// must agree on it, and the image must load with matching statistics.
#[test]
fn all_rejected_entries_still_match() {
    let library = scaled_library(10, 1, 5);
    let mut exact = ExactBackendConfig::default();
    exact.encoder.dim = TEST_DIM;
    // No synthetic spectrum carries this many peaks, so every entry is
    // rejected and every shard's word block is empty.
    exact.preprocess.min_peaks = 10_000;
    let config = IndexConfig {
        kind: IndexedBackendKind::Exact(exact),
        entries_per_shard: 4,
        threads: 2,
    };
    let in_memory = IndexBuilder::new(config.clone()).from_library(&library);
    let path = temp_path("rejected");
    let report = StreamingIndexBuilder::build_from_library(
        StreamingConfig {
            index: config,
            spill_threshold: 3,
        },
        &path,
        &library,
    )
    .expect("streaming build of all-rejected library");
    assert_eq!(report.build_stats.references_stored, 0);
    assert_eq!(report.build_stats.references_rejected, library.len());
    assert_eq!(report.spilled_bytes, 0);
    assert_eq!(fs::read(&path).unwrap(), in_memory.to_bytes());
    let loaded = IndexReader::open(&path).expect("open all-rejected index");
    assert_eq!(loaded.build_stats(), in_memory.build_stats());
    fs::remove_file(&path).ok();
}

/// The HyperOMS-kind image (distinct encoder seed and preprocessing)
/// streams byte-identically too.
#[test]
fn hyperoms_kind_matches() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
    let config = IndexConfig {
        kind: hyperoms_kind(TEST_DIM),
        entries_per_shard: 32,
        threads: 4,
    };
    let in_memory = IndexBuilder::new(config.clone()).from_library(&workload.library);
    let streamed = stream_bytes(
        StreamingConfig {
            index: config,
            spill_threshold: 16,
        },
        &workload.library,
        "hyperoms",
    );
    assert_eq!(streamed, in_memory.to_bytes());
}

/// The RRAM kind exercises the analog encode path and the MLC section,
/// plus a non-zero mean encode BER in the header — the streaming
/// left-fold must reproduce it bit for bit.
#[test]
fn rram_kind_matches() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 9);
    let config = IndexConfig {
        kind: rram_kind(TEST_DIM),
        entries_per_shard: 32,
        threads: 4,
    };
    let in_memory = IndexBuilder::new(config.clone()).from_library(&workload.library);
    assert!(
        in_memory.build_stats().mean_encode_ber > 0.0,
        "RRAM build should record a non-zero encode BER"
    );
    let streamed = stream_bytes(
        StreamingConfig {
            index: config,
            spill_threshold: 13,
        },
        &workload.library,
        "rram",
    );
    assert_eq!(streamed, in_memory.to_bytes());
}

/// A streamed image is a first-class index: it opens, shards, and
/// searches identically to the in-memory build it mirrors.
#[test]
fn streamed_image_opens_and_searches() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 14);
    let config = IndexConfig {
        kind: exact_kind(TEST_DIM),
        entries_per_shard: 64,
        threads: 4,
    };
    let in_memory = IndexBuilder::new(config.clone()).from_library(&workload.library);
    let path = temp_path("search");
    StreamingIndexBuilder::build_from_library(
        StreamingConfig {
            index: config,
            spill_threshold: 50,
        },
        &path,
        &workload.library,
    )
    .unwrap();
    let loaded = IndexReader::open(&path).expect("open streamed index");
    assert_eq!(loaded, in_memory);

    let backend = loaded.sharded_backend(4).expect("sharded backend");
    let mut pipeline_config = PipelineConfig::fast_test();
    pipeline_config.exact.encoder.dim = TEST_DIM;
    let pipeline = OmsPipeline::new(pipeline_config);
    let outcome = pipeline.run_catalog(&workload.queries, &loaded, &backend);
    assert!(
        !outcome.accepted.is_empty(),
        "streamed index produced no PSMs"
    );
    fs::remove_file(&path).ok();
}

/// Structured configuration errors, not panics.
#[test]
fn invalid_configurations_are_rejected() {
    let path = temp_path("invalid-config");
    let config = StreamingConfig {
        spill_threshold: 0,
        ..Default::default()
    };
    let err = StreamingIndexBuilder::create(config, &path).expect_err("zero spill threshold");
    assert!(matches!(err, IndexError::Invalid(_)), "got {err}");

    let mut config = StreamingConfig::default();
    config.index.entries_per_shard = 0;
    let err = StreamingIndexBuilder::create(config, &path).expect_err("zero entries_per_shard");
    assert!(matches!(err, IndexError::Invalid(_)), "got {err}");

    let builder = StreamingIndexBuilder::create(StreamingConfig::default(), &path).unwrap();
    let err = builder.finish().expect_err("empty build");
    assert!(matches!(err, IndexError::Invalid(_)), "got {err}");
    assert!(!path.exists(), "no image may exist after a failed build");
}

/// A spill file truncated between push and finish is rejected with a
/// structured error naming the spill, and the builder cleans up both the
/// spill and the temporary image.
#[test]
fn truncated_spill_is_structured_error() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 31);
    let path = temp_path("truncated");
    let mut builder = StreamingIndexBuilder::create(
        StreamingConfig {
            index: IndexConfig {
                kind: exact_kind(TEST_DIM),
                entries_per_shard: 64,
                threads: 2,
            },
            spill_threshold: 32,
        },
        &path,
    )
    .unwrap();
    builder.push_entries(workload.library.entries()).unwrap();
    let spill = builder.spill_path().to_path_buf();
    let len = fs::metadata(&spill).expect("spill exists").len();
    assert!(len > 0, "push must have spilled word blocks");

    // Simulate truncation (partial write loss, external tampering).
    let file = fs::OpenOptions::new().write(true).open(&spill).unwrap();
    file.set_len(len / 2).unwrap();
    drop(file);

    let err = builder.finish().expect_err("truncated spill accepted");
    match &err {
        IndexError::Invalid(message) => {
            assert!(message.contains("spill"), "unhelpful message: {message}")
        }
        other => panic!("expected IndexError::Invalid, got {other}"),
    }
    assert!(!path.exists(), "no image may exist after a failed finish");
    assert!(!spill.exists(), "failed builder must remove its spill file");
}

/// A spill file deleted out from under the builder surfaces as a
/// structured I/O error, and abandoning a builder removes its spill.
#[test]
fn missing_spill_is_structured_error() {
    let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 32);
    let path = temp_path("missing-spill");
    let streaming = StreamingConfig {
        index: IndexConfig {
            kind: exact_kind(TEST_DIM),
            entries_per_shard: 64,
            threads: 2,
        },
        spill_threshold: 32,
    };
    let mut builder = StreamingIndexBuilder::create(streaming.clone(), &path).unwrap();
    builder
        .push_entries(&workload.library.entries()[..10])
        .unwrap();
    fs::remove_file(builder.spill_path()).unwrap();
    let err = builder.finish().expect_err("missing spill accepted");
    assert!(matches!(err, IndexError::Io(_)), "got {err}");
    assert!(!path.exists());

    // Dropping an unfinished builder cleans up after itself.
    let builder = StreamingIndexBuilder::create(streaming, &path).unwrap();
    let spill = builder.spill_path().to_path_buf();
    assert!(spill.exists());
    drop(builder);
    assert!(!spill.exists(), "dropped builder must remove its spill");
}

/// The memory claim itself, counted rather than eyeballed: with a small
/// spill threshold the streaming build's peak live heap stays *below*
/// the encoded payload, while (a) the in-memory build-and-write path
/// exceeds the payload (it holds the reference table plus the serialised
/// image), and (b) raising the spill threshold to the library size drags
/// the streaming peak above the payload too — the threshold is the knob
/// that bounds it.
#[test]
fn streaming_peak_heap_is_bounded_by_spill_threshold() {
    let _serial = ALLOCATOR_WINDOWS.lock().unwrap();
    // ~6k entries at dim 8192 → ~6.1 MB payload, comfortably above the
    // streaming side tables (sketch signatures + entry metadata + spill
    // offsets, ~2.5 MB) and the encoder item memory (~1.4 MB).
    let workload = SyntheticWorkload::generate(&WorkloadSpec::iprg2012(0.006), 5);
    let library = workload.library;
    let dim = 8192;
    let config = IndexConfig {
        kind: exact_kind(dim),
        entries_per_shard: 512,
        threads: 8,
    };

    // Both builds construct the same query encoder, whose item memories
    // (`num_bins × dim` bipolar bytes) are a fixed cost unrelated to the
    // library size. Measure it once so the assertions below bound the
    // *marginal*, library-dependent peak — same idiom as
    // `memory_sharing.rs`'s encoder baseline.
    let IndexedBackendKind::Exact(exact_config) = &config.kind else {
        panic!("built as exact");
    };
    let encoder_live = {
        let before = LIVE.load(Ordering::Relaxed);
        let encoder = hdoms_hdc::encoder::IdLevelEncoder::new(exact_config.encoder);
        let live = LIVE.load(Ordering::Relaxed).saturating_sub(before);
        drop(encoder);
        live
    };

    let streamed_path = temp_path("peak-stream");
    let (report, stream_peak) = peak_delta(|| {
        StreamingIndexBuilder::build_from_library(
            StreamingConfig {
                index: config.clone(),
                spill_threshold: 256,
            },
            &streamed_path,
            &library,
        )
        .expect("streaming build")
    });
    // The encoded payload: exactly the hypervector bytes that went
    // through the spill (what the in-memory path keeps resident).
    let payload = report.spilled_bytes as usize;
    assert_eq!(
        report.build_stats.references_stored * dim.div_ceil(64) * 8,
        payload
    );
    fs::remove_file(&streamed_path).ok();

    let in_memory_path = temp_path("peak-inmem");
    let ((), in_memory_peak) = peak_delta(|| {
        let index = IndexBuilder::new(config.clone()).from_library(&library);
        index.write(&in_memory_path).expect("write index");
    });
    fs::remove_file(&in_memory_path).ok();

    let full_path = temp_path("peak-full");
    let ((), full_threshold_peak) = peak_delta(|| {
        StreamingIndexBuilder::build_from_library(
            StreamingConfig {
                index: config,
                spill_threshold: library.len(),
            },
            &full_path,
            &library,
        )
        .expect("full-threshold streaming build");
    });
    fs::remove_file(&full_path).ok();

    let stream_marginal = stream_peak.saturating_sub(encoder_live);
    let in_memory_marginal = in_memory_peak.saturating_sub(encoder_live);
    let full_threshold_marginal = full_threshold_peak.saturating_sub(encoder_live);

    assert!(
        payload > 5_000_000,
        "workload too small to be meaningful: payload {payload}"
    );
    assert!(
        stream_marginal < payload,
        "streaming marginal peak {stream_marginal} (raw {stream_peak}, encoder \
         {encoder_live}) not below the {payload}-byte payload"
    );
    assert!(
        in_memory_marginal > payload,
        "in-memory marginal peak {in_memory_marginal} (raw {in_memory_peak}, encoder \
         {encoder_live}) unexpectedly below the {payload}-byte payload"
    );
    assert!(
        in_memory_marginal > stream_marginal + payload / 2,
        "streaming saved too little: in-memory {in_memory_marginal}, streaming \
         {stream_marginal}, payload {payload}"
    );
    assert!(
        full_threshold_marginal > stream_marginal + payload / 2,
        "raising the spill threshold to the library size should raise the peak by the \
         payload: full {full_threshold_marginal}, bounded {stream_marginal}, payload {payload}"
    );
}
