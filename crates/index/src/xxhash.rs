//! XXH64 content checksums for the on-disk index format.
//!
//! The index guards every section with an [xxHash64] digest so truncated
//! writes, torn copies and bit rot are detected at load time instead of
//! surfacing as corrupt search results. The algorithm is implemented from
//! the public specification; no external crate is needed.
//!
//! [xxHash64]: https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md

const PRIME_1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME_3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME_4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME_5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"))
}

/// XXH64 of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;

    let mut h64 = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        // `chunks_exact` hands the optimiser fixed-size slices, so the
        // stripe loop compiles without per-read bounds checks — this is
        // the function's hot loop (every index section is hashed on
        // every load, so it runs at memory-bandwidth scale).
        let mut stripes = rest.chunks_exact(32);
        for stripe in &mut stripes {
            v1 = round(v1, read_u64(&stripe[0..8]));
            v2 = round(v2, read_u64(&stripe[8..16]));
            v3 = round(v3, read_u64(&stripe[16..24]));
            v4 = round(v4, read_u64(&stripe[24..32]));
        }
        rest = stripes.remainder();
        let mut acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        acc = merge_round(acc, v1);
        acc = merge_round(acc, v2);
        acc = merge_round(acc, v3);
        merge_round(acc, v4)
    } else {
        seed.wrapping_add(PRIME_5)
    };

    h64 = h64.wrapping_add(len);

    while rest.len() >= 8 {
        h64 = (h64 ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h64 = (h64 ^ u64::from(read_u32(rest)).wrapping_mul(PRIME_1))
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h64 = (h64 ^ u64::from(byte).wrapping_mul(PRIME_5))
            .rotate_left(11)
            .wrapping_mul(PRIME_1);
    }

    h64 ^= h64 >> 33;
    h64 = h64.wrapping_mul(PRIME_2);
    h64 ^= h64 >> 29;
    h64 = h64.wrapping_mul(PRIME_3);
    h64 ^ (h64 >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical empty-input vector from the xxHash specification.
    #[test]
    fn specification_empty_vector() {
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        assert_eq!(xxh64(&data, 42), xxh64(&data, 42));
    }

    #[test]
    fn sensitive_to_every_byte_and_seed() {
        let data: Vec<u8> = (0..=255).collect();
        let base = xxh64(&data, 1);
        for i in [0usize, 31, 32, 100, 255] {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(xxh64(&flipped, 1), base, "flip at byte {i} undetected");
        }
        assert_ne!(xxh64(&data, 2), base);
    }

    #[test]
    fn stable_across_lengths() {
        // Exercise all tail paths: <4, <8, <32, >=32 with remainders.
        let data: Vec<u8> = (0..100).map(|i| (i * 37) as u8).collect();
        let hashes: Vec<u64> = (0..data.len()).map(|n| xxh64(&data[..n], 7)).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "prefix hashes must differ");
    }
}
