//! Streaming index construction: encode, spill, and serialise one
//! bounded chunk at a time.
//!
//! [`IndexBuilder`](crate::IndexBuilder) holds the whole encoded library
//! in memory — every reference hypervector, plus a second copy inside
//! the serialised image — which caps the library size at available RAM.
//! [`StreamingIndexBuilder`] removes that cap: entries are encoded in
//! chunks of at most `spill_threshold`, each chunk's hypervector words
//! are appended to a temporary **spill file** immediately, and the final
//! `.hdx` image is assembled shard by shard, reading each shard's word
//! blocks back from the spill as it is written. Peak heap is bounded by
//! one encode chunk plus one serialised shard plus the O(entries)
//! metadata side tables (entry records, sketch signatures, spill
//! offsets) — never by the encoded payload.
//!
//! The output is **byte-for-byte identical** to
//! `IndexBuilder::from_library(...).to_bytes()` over the same entries in
//! the same order: encoding is deterministic per (configuration, dense
//! id), the v2 shard payload length is computable from metadata alone
//! ([`format::shard_v2_payload_len`]), and header, sketch section, and
//! shard payloads are emitted through the same codec functions the
//! in-memory path uses ([`format::encode_header`],
//! [`format::put_shard_v2_with`]). The differential test suite
//! (`tests/streaming_equivalence.rs`) pins that guarantee.

use crate::format::{
    self, IndexEntry, IndexError, IndexedBackendKind, MlcState, CHECKSUM_SEED, FORMAT_VERSION,
    MAGIC,
};
use crate::library_index::{hyperoms_exact_config, IndexConfig};
use crate::xxhash::xxh64;
use hdoms_core::accelerator::{BuildStats, OmsAccelerator};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_hdc::encoder::IdLevelEncoder;
use hdoms_hdc::BinaryHypervector;
use hdoms_ms::library::{LibraryEntry, SpectralLibrary};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::search::{ExactBackend, ExactBackendConfig};
use hdoms_prefilter::{SketchIndex, SKETCH_WORDS};
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Configuration for [`StreamingIndexBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// The index configuration (backend kind, shard size, threads) — the
    /// same values an in-memory [`IndexBuilder`](crate::IndexBuilder)
    /// build would use, and the values the finished image records.
    pub index: IndexConfig,
    /// Maximum entries encoded and resident per chunk. This is the
    /// memory knob: peak hypervector residency during the push phase is
    /// `spill_threshold × ceil(dim / 64) × 8` bytes (plus one shard's
    /// words during finish). Smaller is tighter but loses encode
    /// parallelism below the thread count.
    pub spill_threshold: usize,
}

impl Default for StreamingConfig {
    fn default() -> StreamingConfig {
        StreamingConfig {
            index: IndexConfig::default(),
            spill_threshold: 8192,
        }
    }
}

/// What a finished streaming build produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingBuildReport {
    /// Entries indexed.
    pub entry_count: usize,
    /// Precursor-mass shards written.
    pub shard_count: usize,
    /// Total bytes of the finished `.hdx` image.
    pub index_bytes: u64,
    /// Hypervector word bytes that went through the spill file.
    pub spilled_bytes: u64,
    /// Build statistics, exactly as the in-memory path would record them.
    pub build_stats: BuildStats,
}

/// The per-chunk encoder behind the streaming build: the same
/// deterministic per-id encode the backend constructors run, dispatched
/// by backend kind ([`ExactBackend::encode_chunk`] /
/// [`OmsAccelerator::encode_chunk`]).
enum ChunkEncoder {
    Exact {
        encoder: IdLevelEncoder,
        pre: Preprocessor,
        config: ExactBackendConfig,
    },
    Rram {
        encoder: InMemoryEncoder,
        pre: Preprocessor,
    },
}

impl ChunkEncoder {
    fn new(kind: &IndexedBackendKind, threads: usize) -> ChunkEncoder {
        match kind {
            IndexedBackendKind::Exact(config) => {
                let mut config = *config;
                config.threads = threads;
                ChunkEncoder::Exact {
                    encoder: IdLevelEncoder::new(config.encoder),
                    pre: Preprocessor::new(config.preprocess),
                    config,
                }
            }
            IndexedBackendKind::HyperOms(config) => {
                let exact = hyperoms_exact_config(config, threads);
                ChunkEncoder::Exact {
                    encoder: IdLevelEncoder::new(exact.encoder),
                    pre: Preprocessor::new(exact.preprocess),
                    config: exact,
                }
            }
            IndexedBackendKind::Rram(config) => ChunkEncoder::Rram {
                encoder: InMemoryEncoder::new(config.encoder, config.crossbar, config.seed),
                pre: Preprocessor::new(config.preprocess),
            },
        }
    }

    /// Encode `entries` as dense ids `first_id..`, returning each slot's
    /// hypervector plus its encoding bit-error rate (0 for the exact
    /// software paths).
    fn encode(
        &self,
        entries: &[LibraryEntry],
        first_id: u32,
        threads: usize,
    ) -> Vec<Option<(BinaryHypervector, f64)>> {
        match self {
            ChunkEncoder::Exact {
                encoder,
                pre,
                config,
            } => ExactBackend::encode_chunk(encoder, pre, config, entries, first_id)
                .into_iter()
                .map(|slot| slot.map(|hv| (hv, 0.0)))
                .collect(),
            ChunkEncoder::Rram { encoder, pre } => {
                OmsAccelerator::encode_chunk(encoder, pre, entries, first_id, threads)
            }
        }
    }

    fn mlc_state(&self) -> Option<MlcState> {
        match self {
            ChunkEncoder::Exact { .. } => None,
            ChunkEncoder::Rram { encoder, .. } => Some(MlcState {
                w_eff: encoder.programmed_weights().to_vec(),
                sigma_delta: encoder.sigma_delta(),
            }),
        }
    }
}

/// Builds a `.hdx` v3 index without ever holding the encoded library in
/// memory.
///
/// Two-phase use: [`StreamingIndexBuilder::create`] opens the spill
/// file, [`StreamingIndexBuilder::push_entries`] feeds entries in id
/// order (any call granularity — chunking past the spill threshold is
/// internal), and [`StreamingIndexBuilder::finish`] sorts the metadata,
/// writes the image atomically (temp file + rename, like
/// [`LibraryIndex::write`](crate::LibraryIndex::write)), and deletes the
/// spill. The conveniences
/// [`StreamingIndexBuilder::build_from_library`] and
/// [`StreamingIndexBuilder::build_from_iter`] wrap the three calls.
///
/// Dropping an unfinished builder removes its spill and temp files.
///
/// ```
/// use hdoms_index::streaming::{StreamingConfig, StreamingIndexBuilder};
/// use hdoms_index::{IndexBuilder, IndexReader, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
/// let mut config = StreamingConfig::default();
/// config.index.entries_per_shard = 64;
/// config.index.threads = 2;
/// config.spill_threshold = 50;
/// if let IndexedBackendKind::Exact(exact) = &mut config.index.kind {
///     exact.encoder.dim = 512;
/// }
/// let path = std::env::temp_dir().join(format!("hdoms-doc-stream-{}.hdx", std::process::id()));
/// let report =
///     StreamingIndexBuilder::build_from_library(config.clone(), &path, &workload.library)
///         .unwrap();
/// assert_eq!(report.entry_count, workload.library.len());
///
/// // Byte-identical to the in-memory build.
/// let in_memory = IndexBuilder::new(config.index).from_library(&workload.library);
/// assert_eq!(std::fs::read(&path).unwrap(), in_memory.to_bytes());
/// # let loaded = IndexReader::open(&path).unwrap();
/// # assert_eq!(loaded, in_memory);
/// # std::fs::remove_file(&path).ok();
/// ```
pub struct StreamingIndexBuilder {
    config: IndexConfig,
    spill_threshold: usize,
    out_path: PathBuf,
    tmp_path: PathBuf,
    spill_path: PathBuf,
    spill: BufWriter<File>,
    /// Spill-file byte offset of each entry's word block, by dense id
    /// (`u64::MAX` marks entries preprocessing rejected).
    spill_offsets: Vec<u64>,
    spilled_bytes: u64,
    /// Per-entry metadata in arrival (id) order; sorted by mass at finish.
    metas: Vec<IndexEntry>,
    encoder: ChunkEncoder,
    // Incrementally replicated sketch-section state (matches
    // `SketchIndex::build` fed the same slots in id order).
    sketch_selected: Vec<u32>,
    sketch_table: Vec<u64>,
    sketch_present: Vec<u64>,
    // Running build statistics, accumulated in id order so the
    // final mean is bit-identical to the in-memory left fold.
    ber_sum: f64,
    stored: usize,
    rejected: usize,
    finished: bool,
}

impl std::fmt::Debug for StreamingIndexBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingIndexBuilder")
            .field("out_path", &self.out_path)
            .field("entry_count", &self.metas.len())
            .field("spill_threshold", &self.spill_threshold)
            .field("spilled_bytes", &self.spilled_bytes)
            .finish_non_exhaustive()
    }
}

impl StreamingIndexBuilder {
    /// Open a streaming build that will finish into `out`. The spill
    /// file (`out` with extension `hdx.spill`) and the temporary image
    /// (`out` with extension `hdx.tmp`) live next to the output so the
    /// final rename stays on one filesystem.
    ///
    /// # Errors
    ///
    /// [`IndexError::Invalid`] on a zero `entries_per_shard` or
    /// `spill_threshold`; [`IndexError::Io`] if the spill file cannot be
    /// created.
    pub fn create(
        config: StreamingConfig,
        out: &Path,
    ) -> Result<StreamingIndexBuilder, IndexError> {
        if config.index.entries_per_shard == 0 {
            return Err(IndexError::Invalid(
                "entries_per_shard must be positive".to_owned(),
            ));
        }
        if config.spill_threshold == 0 {
            return Err(IndexError::Invalid(
                "spill_threshold must be positive".to_owned(),
            ));
        }
        let spill_path = out.with_extension("hdx.spill");
        let tmp_path = out.with_extension("hdx.tmp");
        let spill = BufWriter::new(File::create(&spill_path)?);
        let encoder = ChunkEncoder::new(&config.index.kind, config.index.threads);
        let full_words = config.index.kind.dim().div_ceil(64).max(1);
        Ok(StreamingIndexBuilder {
            spill_threshold: config.spill_threshold,
            out_path: out.to_path_buf(),
            tmp_path,
            spill_path,
            spill,
            spill_offsets: Vec::new(),
            spilled_bytes: 0,
            metas: Vec::new(),
            encoder,
            sketch_selected: SketchIndex::word_selection(full_words, SKETCH_WORDS),
            sketch_table: Vec::new(),
            sketch_present: Vec::new(),
            ber_sum: 0.0,
            stored: 0,
            rejected: 0,
            finished: false,
            config: config.index,
        })
    }

    /// Entries pushed so far.
    pub fn entry_count(&self) -> usize {
        self.metas.len()
    }

    /// The spill file holding the encoded word blocks (useful for
    /// instrumentation; removed by [`StreamingIndexBuilder::finish`]).
    pub fn spill_path(&self) -> &Path {
        &self.spill_path
    }

    /// Encode and spill a run of entries. Entries receive the next dense
    /// ids in arrival order — feed the library in its id order to
    /// reproduce the in-memory build byte-for-byte. Calls may be any
    /// size; encoding proceeds in sub-chunks of at most the configured
    /// spill threshold, so peak hypervector residency never exceeds it.
    ///
    /// # Errors
    ///
    /// [`IndexError::Io`] if the spill write fails;
    /// [`IndexError::Invalid`] past `u32::MAX` entries.
    pub fn push_entries(&mut self, entries: &[LibraryEntry]) -> Result<(), IndexError> {
        if self.metas.len() + entries.len() > u32::MAX as usize {
            return Err(IndexError::Invalid(format!(
                "library exceeds the id space: {} entries",
                self.metas.len() + entries.len()
            )));
        }
        let block_bytes = (self.config.kind.dim().div_ceil(64) * 8) as u64;
        let width = self.sketch_selected.len();
        for chunk in entries.chunks(self.spill_threshold) {
            let first_id = self.metas.len() as u32;
            let encoded = self.encoder.encode(chunk, first_id, self.config.threads);
            for (offset, (entry, slot)) in chunk.iter().zip(encoded).enumerate() {
                let id = first_id + offset as u32;
                self.metas.push(IndexEntry {
                    id,
                    neutral_mass: entry.spectrum.neutral_mass(),
                    precursor_mz: entry.spectrum.precursor_mz,
                    precursor_charge: entry.spectrum.precursor_charge,
                    is_decoy: entry.is_decoy,
                    peptide: entry.peptide.to_string(),
                });
                if self.sketch_present.len() * 64 <= id as usize {
                    self.sketch_present.push(0);
                }
                match slot {
                    Some((hv, ber)) => {
                        let words = hv.words();
                        self.sketch_table
                            .extend(self.sketch_selected.iter().map(|&w| words[w as usize]));
                        self.sketch_present[id as usize / 64] |= 1u64 << (id as usize % 64);
                        self.ber_sum += ber;
                        self.stored += 1;
                        self.spill_offsets.push(self.spilled_bytes);
                        for &word in words {
                            self.spill.write_all(&word.to_le_bytes())?;
                        }
                        self.spilled_bytes += block_bytes;
                    }
                    None => {
                        self.sketch_table.extend(std::iter::repeat_n(0u64, width));
                        self.spill_offsets.push(u64::MAX);
                        self.rejected += 1;
                    }
                }
            }
        }
        // Flush at every push boundary so the spill's on-disk size always
        // matches `spilled_bytes` — external truncation between pushes is
        // then caught by the size check in `finish`.
        self.spill.flush()?;
        Ok(())
    }

    /// Assemble and atomically write the final `.hdx` v3 image, then
    /// delete the spill file. Returns what was built.
    ///
    /// # Errors
    ///
    /// [`IndexError::Invalid`] on an empty build or a spill file whose
    /// size no longer matches what was written (truncated or tampered
    /// with between pushes and finish); [`IndexError::Io`] on
    /// filesystem failures.
    pub fn finish(mut self) -> Result<StreamingBuildReport, IndexError> {
        if self.metas.is_empty() {
            return Err(IndexError::Invalid(
                "cannot index an empty library".to_owned(),
            ));
        }
        self.spill.flush()?;
        let spill = File::open(&self.spill_path)?;
        let spill_len = spill.metadata()?.len();
        if spill_len != self.spilled_bytes {
            return Err(IndexError::Invalid(format!(
                "spill file {} holds {spill_len} bytes but {} were spilled \
                 (truncated or corrupted between push and finish)",
                self.spill_path.display(),
                self.spilled_bytes
            )));
        }

        let dim = self.config.kind.dim();
        let entry_count = self.metas.len();
        let build_stats = BuildStats {
            references_stored: self.stored,
            references_rejected: self.rejected,
            mean_encode_ber: if self.stored == 0 {
                0.0
            } else {
                self.ber_sum / self.stored as f64
            },
        };

        // Shard layout: the same global (mass, id) sort and fixed-size
        // cut the in-memory builder performs.
        let mut metas = std::mem::take(&mut self.metas);
        metas.sort_by(|a, b| {
            a.neutral_mass
                .total_cmp(&b.neutral_mass)
                .then(a.id.cmp(&b.id))
        });
        let per_shard = self.config.entries_per_shard;
        let offsets = std::mem::take(&mut self.spill_offsets);
        let present = |id: u32| offsets[id as usize] != u64::MAX;
        let shard_lens: Vec<usize> = metas
            .chunks(per_shard)
            .map(|chunk| format::shard_v2_payload_len(chunk, dim, present))
            .collect();

        // Section payloads that precede the shards. The sketch table is
        // moved into the section bytes and dropped before any shard is
        // assembled, so it is not resident twice.
        let mlc_bytes = self.encoder.mlc_state().as_ref().map(format::put_mlc_state);
        let sketch = SketchIndex::from_parts(
            dim.div_ceil(64).max(1),
            std::mem::take(&mut self.sketch_selected),
            std::mem::take(&mut self.sketch_table),
            std::mem::take(&mut self.sketch_present),
            entry_count,
        )
        .map_err(IndexError::Invalid)?;
        let sketch_bytes = format::put_sketches(&sketch);
        drop(sketch);

        let header = format::encode_header(
            &self.config.kind,
            &build_stats,
            per_shard,
            entry_count,
            mlc_bytes.as_ref().map_or(0, Vec::len),
            Some(sketch_bytes.len()),
            &shard_lens,
        );

        let mut sink = SectionSink {
            out: BufWriter::new(File::create(&self.tmp_path)?),
            pos: 0,
        };
        sink.raw(&MAGIC)?;
        sink.raw(&FORMAT_VERSION.to_le_bytes())?;
        sink.raw(&(header.len() as u64).to_le_bytes())?;
        sink.raw(&header)?;
        sink.raw(&xxh64(&header, CHECKSUM_SEED).to_le_bytes())?;
        if let Some(bytes) = &mlc_bytes {
            sink.section(bytes)?;
        }
        sink.section(&sketch_bytes)?;
        drop(sketch_bytes);

        // One shard at a time: serialise its payload (word blocks read
        // back from the spill) and stream it out.
        let block_bytes = dim.div_ceil(64) * 8;
        let mut block = vec![0u8; block_bytes];
        for chunk in metas.chunks(per_shard) {
            let payload = format::put_shard_v2_with(chunk, present, |id, w| {
                read_spill_block(&spill, &mut block, offsets[id as usize], &self.spill_path)?;
                w.raw(&block);
                Ok::<(), IndexError>(())
            })?;
            sink.section(&payload)?;
        }
        let index_bytes = sink.pos as u64;
        sink.out.flush()?;
        drop(sink);
        fs::rename(&self.tmp_path, &self.out_path)?;
        fs::remove_file(&self.spill_path)?;
        self.finished = true;

        Ok(StreamingBuildReport {
            entry_count,
            shard_count: shard_lens.len(),
            index_bytes,
            spilled_bytes: self.spilled_bytes,
            build_stats,
        })
    }

    /// One-call streaming build over a materialised library (entries are
    /// still encoded and spilled chunk-wise).
    ///
    /// # Errors
    ///
    /// See [`StreamingIndexBuilder::create`] /
    /// [`StreamingIndexBuilder::push_entries`] /
    /// [`StreamingIndexBuilder::finish`].
    pub fn build_from_library(
        config: StreamingConfig,
        out: &Path,
        library: &SpectralLibrary,
    ) -> Result<StreamingBuildReport, IndexError> {
        let mut builder = StreamingIndexBuilder::create(config, out)?;
        builder.push_entries(library.entries())?;
        builder.finish()
    }

    /// One-call streaming build over an entry iterator — the fully
    /// streaming path: at most one spill-threshold's worth of raw
    /// entries is buffered, so a generator-backed source never
    /// materialises the library either.
    ///
    /// # Errors
    ///
    /// See [`StreamingIndexBuilder::create`] /
    /// [`StreamingIndexBuilder::push_entries`] /
    /// [`StreamingIndexBuilder::finish`].
    pub fn build_from_iter(
        config: StreamingConfig,
        out: &Path,
        entries: impl IntoIterator<Item = LibraryEntry>,
    ) -> Result<StreamingBuildReport, IndexError> {
        let mut builder = StreamingIndexBuilder::create(config, out)?;
        let mut buffered: Vec<LibraryEntry> = Vec::with_capacity(builder.spill_threshold);
        for entry in entries {
            buffered.push(entry);
            if buffered.len() == builder.spill_threshold {
                builder.push_entries(&buffered)?;
                buffered.clear();
            }
        }
        if !buffered.is_empty() {
            builder.push_entries(&buffered)?;
        }
        builder.finish()
    }
}

impl Drop for StreamingIndexBuilder {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.spill_path);
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

/// Read one word block back from the spill file, mapping a short read to
/// the structured corruption error.
fn read_spill_block(
    spill: &File,
    block: &mut [u8],
    offset: u64,
    spill_path: &Path,
) -> Result<(), IndexError> {
    let result = {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            spill.read_exact_at(block, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut spill = spill;
            spill
                .seek(SeekFrom::Start(offset))
                .and_then(|_| spill.read_exact(block))
        }
    };
    result.map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IndexError::Invalid(format!(
                "spill file {} truncated at offset {offset}",
                spill_path.display()
            ))
        } else {
            IndexError::Io(e)
        }
    })
}

/// A positioned writer that reproduces the container's section framing:
/// zero padding to the next 8-aligned absolute offset, the payload, then
/// its checksum — exactly what `to_bytes_version` emits for v2+.
struct SectionSink<W: Write> {
    out: W,
    pos: usize,
}

impl<W: Write> SectionSink<W> {
    fn raw(&mut self, bytes: &[u8]) -> Result<(), IndexError> {
        self.out.write_all(bytes)?;
        self.pos += bytes.len();
        Ok(())
    }

    fn section(&mut self, payload: &[u8]) -> Result<(), IndexError> {
        const ZEROS: [u8; 8] = [0u8; 8];
        let pad = format::pad_to_8(self.pos);
        self.raw(&ZEROS[..pad])?;
        self.raw(payload)?;
        self.raw(&xxh64(payload, CHECKSUM_SEED).to_le_bytes())
    }
}
