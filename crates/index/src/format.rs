//! The versioned `HDX` on-disk format: section layout and config codecs.
//!
//! ## Layout (format versions 1–3)
//!
//! ```text
//! preamble   magic "HDOMSIDX" (8) · format version u32 · header length u64
//! header     backend kind + configs · build stats · dim · entry count ·
//!            shard boundaries · shard table (byte length per shard) ·
//!            MLC section length · sketch section length (v3)
//!                                                       + XXH64 trailer
//! mlc        differential ID-memory weight pairs (f32) · σ_δ
//!            (present only for the RRAM accelerator kind) + XXH64 trailer
//! sketch     folded-hypervector prefilter signatures (v3 only; see
//!            [`put_sketches`])                           + XXH64 trailer
//! shard[i]   entry records (id, masses, charge, decoy flag, peptide,
//!            optional encoded hypervector)               + XXH64 trailer
//! ```
//!
//! Every section carries its own [XXH64](crate::xxhash::xxh64) digest, so
//! corruption is pinned to a section, and shard payloads can be decoded
//! independently — which is what lets [`IndexReader`](crate::IndexReader)
//! validate and decode shards in parallel.
//!
//! **Version 2** changes only the shard sections, for the zero-copy load
//! path: every section payload is preceded by zero padding bringing its
//! absolute file offset to a multiple of 8, and a shard's hypervector
//! words move out of the entry records into one contiguous,
//! internally-8-aligned word block at the end of the payload. A v2 file
//! loaded through [`LibraryIndex::open_mapped`](crate::LibraryIndex::open_mapped)
//! is therefore searchable **in place**: the word block offsets become a
//! mapped reference table over the single file buffer, and no
//! per-reference hypervector is ever materialised. Version 1 files stay
//! readable through the original copying decoder.
//!
//! **Version 3** adds one optional section — the prefilter's
//! folded-hypervector sketch signatures
//! ([`hdoms_prefilter::SketchIndex`]) — between the MLC and shard
//! sections, plus its length field at the end of the header. Nothing
//! about the v2 sections changes: a v3 file with the sketch section
//! stripped (and the header field dropped) is byte-identical to the v2
//! encoding, v1/v2 files stay readable, and loading a v1/v2 file simply
//! derives the sketches on the fly when a search wants them
//! ([`crate::LibraryIndex::sketch_index`]).

use crate::wire::{Reader, WireError, Writer};
use hdoms_baselines::hyperoms::HyperOmsConfig;
use hdoms_core::accelerator::{AcceleratorConfig, BuildStats};
use hdoms_hdc::encoder::EncoderConfig;
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_hdc::multibit::IdPrecision;
use hdoms_hdc::BinaryHypervector;
use hdoms_ms::preprocess::{IntensityScaling, PreprocessConfig};
use hdoms_oms::search::{ExactBackendConfig, SharedReferences};
use hdoms_prefilter::SketchIndex;
use hdoms_rram::array::CrossbarConfig;
use hdoms_rram::config::MlcConfig;
use std::fmt;

/// Magic bytes opening every index file.
pub const MAGIC: [u8; 8] = *b"HDOMSIDX";

/// Current format version (written by default). Readers reject anything
/// newer.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version readers still decode (v1 loads through the
/// copying path; v2 and v3 support mapped loads; only v3 carries the
/// persisted prefilter sketch section).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Zero bytes needed after `pos` to reach an 8-byte boundary.
pub fn pad_to_8(pos: usize) -> usize {
    pos.wrapping_neg() % 8
}

/// Seed mixed into every section checksum (diversifies from other XXH64
/// users of the same bytes).
pub const CHECKSUM_SEED: u64 = 0x8d0a_51dc;

/// Anything that can go wrong building, writing or loading an index.
#[derive(Debug)]
pub enum IndexError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structural decode failure.
    Wire(WireError),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// A section's checksum disagrees with its content.
    ChecksumMismatch {
        /// Which section failed.
        section: String,
    },
    /// The index is structurally valid but semantically unusable.
    Invalid(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index I/O error: {e}"),
            IndexError::Wire(e) => write!(f, "index decode error: {e}"),
            IndexError::BadMagic => write!(f, "not an hdoms index (bad magic)"),
            IndexError::UnsupportedVersion { found } => write!(
                f,
                "index format version {found} is outside the supported range \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION}"
            ),
            IndexError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in index section {section:?}")
            }
            IndexError::Invalid(message) => write!(f, "invalid index: {message}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> IndexError {
        IndexError::Io(e)
    }
}

impl From<WireError> for IndexError {
    fn from(e: WireError) -> IndexError {
        IndexError::Wire(e)
    }
}

/// Which search backend's encoded hypervectors the index stores.
///
/// The stored bits depend on the backend: the software backends encode
/// exactly, the RRAM accelerator encodes through the simulated analog
/// path, so an index is bound to the backend kind it was built for.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexedBackendKind {
    /// Software-exact HD backend ([`hdoms_oms::search::ExactBackend`]).
    Exact(ExactBackendConfig),
    /// HyperOMS-style backend (binary IDs, bit-serial levels).
    HyperOms(HyperOmsConfig),
    /// The paper's MLC-RRAM accelerator (in-memory encode + search).
    Rram(AcceleratorConfig),
}

impl IndexedBackendKind {
    /// Short stable name used in `index info` and reports.
    pub fn name(&self) -> &'static str {
        match self {
            IndexedBackendKind::Exact(_) => "exact",
            IndexedBackendKind::HyperOms(_) => "hyperoms",
            IndexedBackendKind::Rram(_) => "rram",
        }
    }

    /// The preprocessing configuration the library was encoded under.
    pub fn preprocess(&self) -> PreprocessConfig {
        match self {
            IndexedBackendKind::Exact(c) => c.preprocess,
            IndexedBackendKind::HyperOms(c) => c.preprocess,
            IndexedBackendKind::Rram(c) => c.preprocess,
        }
    }

    /// The hypervector dimension of the stored references.
    pub fn dim(&self) -> usize {
        match self {
            IndexedBackendKind::Exact(c) => c.encoder.dim,
            IndexedBackendKind::HyperOms(c) => c.dim,
            IndexedBackendKind::Rram(c) => c.encoder.dim,
        }
    }
}

/// One indexed reference: the search metadata.
///
/// The encoded hypervector itself lives in the index's flat shared
/// reference table (keyed by [`IndexEntry::id`]), not in the entry — that
/// is what lets a loaded index and every warm backend reconstructed from
/// it share a single copy of the encoded library. On disk the hypervector
/// is still serialised inline with its entry (see [`put_shard`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Dense library id (also the slot in the flat reference table).
    pub id: u32,
    /// Neutral precursor mass in daltons (the sharding and windowing key).
    pub neutral_mass: f64,
    /// Precursor m/z as measured.
    pub precursor_mz: f64,
    /// Precursor charge state.
    pub precursor_charge: u8,
    /// Whether the entry is a decoy.
    pub is_decoy: bool,
    /// The peptide sequence string (for PSM reports without the library).
    pub peptide: String,
}

/// A contiguous precursor-mass bucket of entries, sorted by mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Entries sorted by `(neutral_mass, id)`.
    pub entries: Vec<IndexEntry>,
}

impl Shard {
    /// Smallest entry mass, or `None` for an empty shard.
    pub fn mass_lo(&self) -> Option<f64> {
        self.entries.first().map(|e| e.neutral_mass)
    }

    /// Largest entry mass, or `None` for an empty shard.
    pub fn mass_hi(&self) -> Option<f64> {
        self.entries.last().map(|e| e.neutral_mass)
    }
}

/// MLC programming state persisted for the RRAM accelerator kind: the
/// effective differential weight pairs of the programmed position-ID item
/// memory, so a warm load skips re-sampling the device model.
#[derive(Debug, Clone, PartialEq)]
pub struct MlcState {
    /// Effective differential weights `(g⁺−g⁻)/g_max`, flattened
    /// `[bin][dim]`.
    pub w_eff: Vec<f32>,
    /// RMS per-pair normalised conductance deviation of the programmed
    /// array.
    pub sigma_delta: f64,
}

// ---------------------------------------------------------------------------
// Config codecs. Hand-rolled field-by-field: the workspace's serde is a
// no-op shim (no network), and explicit codecs keep the format stable under
// struct reordering anyway.
// ---------------------------------------------------------------------------

fn put_preprocess(w: &mut Writer, c: &PreprocessConfig) {
    w.f64(c.intensity_threshold);
    w.usize(c.max_peaks);
    w.usize(c.min_peaks);
    w.f64(c.min_mz);
    w.f64(c.max_mz);
    w.f64(c.bin_width);
    w.u8(match c.scaling {
        IntensityScaling::None => 0,
        IntensityScaling::Sqrt => 1,
        IntensityScaling::Rank => 2,
    });
}

fn get_preprocess(r: &mut Reader<'_>) -> Result<PreprocessConfig, IndexError> {
    Ok(PreprocessConfig {
        intensity_threshold: r.f64("preprocess.intensity_threshold")?,
        max_peaks: r.u64("preprocess.max_peaks")? as usize,
        min_peaks: r.u64("preprocess.min_peaks")? as usize,
        min_mz: r.f64("preprocess.min_mz")?,
        max_mz: r.f64("preprocess.max_mz")?,
        bin_width: r.f64("preprocess.bin_width")?,
        scaling: match r.u8("preprocess.scaling")? {
            0 => IntensityScaling::None,
            1 => IntensityScaling::Sqrt,
            2 => IntensityScaling::Rank,
            other => {
                return Err(WireError::InvalidValue {
                    what: "preprocess.scaling",
                    value: u64::from(other),
                }
                .into())
            }
        },
    })
}

fn put_encoder(w: &mut Writer, c: &EncoderConfig) {
    w.usize(c.dim);
    w.usize(c.q_levels);
    w.u8(match c.id_precision {
        IdPrecision::Bits1 => 1,
        IdPrecision::Bits2 => 2,
        IdPrecision::Bits3 => 3,
    });
    match c.level_style {
        LevelStyle::Random => {
            w.u8(0);
            w.usize(0);
        }
        LevelStyle::Chunked { num_chunks } => {
            w.u8(1);
            w.usize(num_chunks);
        }
    }
    w.usize(c.num_bins);
    w.u64(c.seed);
}

fn get_encoder(r: &mut Reader<'_>) -> Result<EncoderConfig, IndexError> {
    let dim = r.u64("encoder.dim")? as usize;
    let q_levels = r.u64("encoder.q_levels")? as usize;
    let id_precision = match r.u8("encoder.id_precision")? {
        1 => IdPrecision::Bits1,
        2 => IdPrecision::Bits2,
        3 => IdPrecision::Bits3,
        other => {
            return Err(WireError::InvalidValue {
                what: "encoder.id_precision",
                value: u64::from(other),
            }
            .into())
        }
    };
    let style_tag = r.u8("encoder.level_style")?;
    let num_chunks = r.u64("encoder.num_chunks")? as usize;
    let level_style = match style_tag {
        0 => LevelStyle::Random,
        1 => LevelStyle::Chunked { num_chunks },
        other => {
            return Err(WireError::InvalidValue {
                what: "encoder.level_style",
                value: u64::from(other),
            }
            .into())
        }
    };
    Ok(EncoderConfig {
        dim,
        q_levels,
        id_precision,
        level_style,
        num_bins: r.u64("encoder.num_bins")? as usize,
        seed: r.u64("encoder.seed")?,
    })
}

fn put_mlc(w: &mut Writer, c: &MlcConfig) {
    w.u8(c.bits_per_cell);
    w.f64(c.g_max_us);
    w.f64(c.lambda_program_us);
    w.f64(c.lambda_relax_us);
    w.f64(c.relax_tau_s);
    w.f64(c.drift_us);
    w.f64(c.stability_floor);
    w.f64(c.stability_span);
    w.f64(c.defect_rate);
}

fn get_mlc(r: &mut Reader<'_>) -> Result<MlcConfig, IndexError> {
    Ok(MlcConfig {
        bits_per_cell: r.u8("mlc.bits_per_cell")?,
        g_max_us: r.f64("mlc.g_max_us")?,
        lambda_program_us: r.f64("mlc.lambda_program_us")?,
        lambda_relax_us: r.f64("mlc.lambda_relax_us")?,
        relax_tau_s: r.f64("mlc.relax_tau_s")?,
        drift_us: r.f64("mlc.drift_us")?,
        stability_floor: r.f64("mlc.stability_floor")?,
        stability_span: r.f64("mlc.stability_span")?,
        defect_rate: r.f64("mlc.defect_rate")?,
    })
}

fn put_crossbar(w: &mut Writer, c: &CrossbarConfig) {
    put_mlc(w, &c.mlc);
    w.usize(c.rows);
    w.usize(c.cols);
    w.usize(c.activated_rows);
    w.u8(c.adc_bits);
    w.f64(c.sense_sigma);
    w.f64(c.ir_drop_factor);
    w.f64(c.age_s);
}

fn get_crossbar(r: &mut Reader<'_>) -> Result<CrossbarConfig, IndexError> {
    Ok(CrossbarConfig {
        mlc: get_mlc(r)?,
        rows: r.u64("crossbar.rows")? as usize,
        cols: r.u64("crossbar.cols")? as usize,
        activated_rows: r.u64("crossbar.activated_rows")? as usize,
        adc_bits: r.u8("crossbar.adc_bits")?,
        sense_sigma: r.f64("crossbar.sense_sigma")?,
        ir_drop_factor: r.f64("crossbar.ir_drop_factor")?,
        age_s: r.f64("crossbar.age_s")?,
    })
}

fn put_exact(w: &mut Writer, c: &ExactBackendConfig) {
    put_preprocess(w, &c.preprocess);
    put_encoder(w, &c.encoder);
    w.usize(c.threads);
    w.f64(c.encode_ber);
    w.f64(c.storage_ber);
    w.u64(c.noise_seed);
}

fn get_exact(r: &mut Reader<'_>) -> Result<ExactBackendConfig, IndexError> {
    Ok(ExactBackendConfig {
        preprocess: get_preprocess(r)?,
        encoder: get_encoder(r)?,
        threads: r.u64("exact.threads")? as usize,
        encode_ber: r.f64("exact.encode_ber")?,
        storage_ber: r.f64("exact.storage_ber")?,
        noise_seed: r.u64("exact.noise_seed")?,
    })
}

fn put_hyperoms(w: &mut Writer, c: &HyperOmsConfig) {
    put_preprocess(w, &c.preprocess);
    w.usize(c.dim);
    w.usize(c.q_levels);
    w.usize(c.threads);
    w.u64(c.seed);
}

fn get_hyperoms(r: &mut Reader<'_>) -> Result<HyperOmsConfig, IndexError> {
    Ok(HyperOmsConfig {
        preprocess: get_preprocess(r)?,
        dim: r.u64("hyperoms.dim")? as usize,
        q_levels: r.u64("hyperoms.q_levels")? as usize,
        threads: r.u64("hyperoms.threads")? as usize,
        seed: r.u64("hyperoms.seed")?,
    })
}

fn put_accelerator(w: &mut Writer, c: &AcceleratorConfig) {
    put_preprocess(w, &c.preprocess);
    put_encoder(w, &c.encoder);
    put_crossbar(w, &c.crossbar);
    w.usize(c.threads);
    w.u64(c.seed);
}

fn get_accelerator(r: &mut Reader<'_>) -> Result<AcceleratorConfig, IndexError> {
    Ok(AcceleratorConfig {
        preprocess: get_preprocess(r)?,
        encoder: get_encoder(r)?,
        crossbar: get_crossbar(r)?,
        threads: r.u64("accelerator.threads")? as usize,
        seed: r.u64("accelerator.seed")?,
    })
}

/// Encode a backend kind (tag + its config).
pub fn put_kind(w: &mut Writer, kind: &IndexedBackendKind) {
    match kind {
        IndexedBackendKind::Exact(c) => {
            w.u8(0);
            put_exact(w, c);
        }
        IndexedBackendKind::HyperOms(c) => {
            w.u8(1);
            put_hyperoms(w, c);
        }
        IndexedBackendKind::Rram(c) => {
            w.u8(2);
            put_accelerator(w, c);
        }
    }
}

/// Decode a backend kind.
pub fn get_kind(r: &mut Reader<'_>) -> Result<IndexedBackendKind, IndexError> {
    Ok(match r.u8("backend.kind")? {
        0 => IndexedBackendKind::Exact(get_exact(r)?),
        1 => IndexedBackendKind::HyperOms(get_hyperoms(r)?),
        2 => IndexedBackendKind::Rram(get_accelerator(r)?),
        other => {
            return Err(WireError::InvalidValue {
                what: "backend.kind",
                value: u64::from(other),
            }
            .into())
        }
    })
}

/// Encode build statistics.
pub fn put_build_stats(w: &mut Writer, s: &BuildStats) {
    w.usize(s.references_stored);
    w.usize(s.references_rejected);
    w.f64(s.mean_encode_ber);
}

/// Decode build statistics.
pub fn get_build_stats(r: &mut Reader<'_>) -> Result<BuildStats, IndexError> {
    Ok(BuildStats {
        references_stored: r.u64("stats.references_stored")? as usize,
        references_rejected: r.u64("stats.references_rejected")? as usize,
        mean_encode_ber: r.f64("stats.mean_encode_ber")?,
    })
}

/// Encode one shard's entries into a standalone **v1** section payload,
/// pulling each entry's hypervector from the flat `references` table by
/// id (words are serialised inline with their entry).
///
/// # Panics
///
/// Panics if an entry id falls outside `references` or a stored
/// hypervector's dimension disagrees with `dim`.
pub fn put_shard(shard: &Shard, dim: usize, references: &SharedReferences) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(shard.entries.len());
    for e in &shard.entries {
        put_entry_meta(&mut w, e);
        match references.hv(e.id as usize) {
            None => w.u8(0),
            Some(hv) => {
                assert_eq!(hv.dim(), dim, "stored hypervector dimension mismatch");
                w.u8(1);
                w.u64_slice(hv.words());
            }
        }
    }
    w.into_bytes()
}

/// Encode one shard's entries into a standalone **v2** section payload:
/// the entry metadata records first (with a presence flag instead of
/// inline words), zero padding to an 8-byte boundary, then every present
/// hypervector's `ceil(dim / 64)` packed words concatenated in entry
/// order. Provided the payload itself starts at an 8-aligned file
/// offset (the v2 container guarantees it), every word block is
/// 8-aligned in the file and can be searched in place.
///
/// # Panics
///
/// Panics if an entry id falls outside `references` or a stored
/// hypervector's dimension disagrees with `dim`.
pub fn put_shard_v2(shard: &Shard, dim: usize, references: &SharedReferences) -> Vec<u8> {
    let result = put_shard_v2_with(
        &shard.entries,
        |id| references.hv(id as usize).is_some(),
        |id, w| {
            let hv = references.hv(id as usize).expect("flagged present");
            assert_eq!(hv.dim(), dim, "stored hypervector dimension mismatch");
            for &word in hv.words() {
                w.u64(word);
            }
            Ok::<(), std::convert::Infallible>(())
        },
    );
    match result {
        Ok(bytes) => bytes,
        Err(never) => match never {},
    }
}

/// The generalised **v2** shard serialiser behind [`put_shard_v2`]: the
/// caller supplies the presence predicate and a word-block writer instead
/// of an in-memory reference table, so the hypervector words can come
/// from anywhere — including a spill file, which is how the streaming
/// index builder emits a shard without ever materialising its
/// hypervectors as [`BinaryHypervector`]s.
///
/// `write_words(id, w)` must append exactly `ceil(dim / 64)` packed
/// little-endian `u64` words for entry `id` (the same bytes
/// [`put_shard_v2`] would write); it is called once per present entry, in
/// entry order, and its error aborts serialisation.
pub fn put_shard_v2_with<E>(
    entries: &[IndexEntry],
    present: impl Fn(u32) -> bool,
    mut write_words: impl FnMut(u32, &mut Writer) -> Result<(), E>,
) -> Result<Vec<u8>, E> {
    let mut w = Writer::new();
    w.usize(entries.len());
    for e in entries {
        put_entry_meta(&mut w, e);
        w.u8(u8::from(present(e.id)));
    }
    for _ in 0..pad_to_8(w.len()) {
        w.u8(0);
    }
    for e in entries {
        if present(e.id) {
            write_words(e.id, &mut w)?;
        }
    }
    Ok(w.into_bytes())
}

/// The exact byte length [`put_shard_v2`] / [`put_shard_v2_with`] will
/// produce for a shard holding `entries`, computed from the metadata
/// alone: the v2 layout is `count` + per-entry metadata-and-presence
/// records, zero padding to an 8-byte boundary, then one
/// `ceil(dim / 64) * 8`-byte word block per present entry. Knowing every
/// section length before serialising any hypervector words is what lets
/// the streaming builder write the container header first and then emit
/// shards one at a time.
pub fn shard_v2_payload_len(
    entries: &[IndexEntry],
    dim: usize,
    present: impl Fn(u32) -> bool,
) -> usize {
    // Per entry: u32 id + f64 mass + f64 m/z + u8 charge + u8 decoy +
    // (u64 length + bytes) peptide + u8 presence = 31 + peptide bytes.
    let meta: usize = 8 + entries.iter().map(|e| 31 + e.peptide.len()).sum::<usize>();
    let stored = entries.iter().filter(|e| present(e.id)).count();
    meta + pad_to_8(meta) + stored * dim.div_ceil(64) * 8
}

/// Encode the container header (the per-index metadata block that
/// precedes every section): backend kind, build statistics, shard
/// geometry, section lengths. `sketch_len` is `Some` exactly when the
/// image carries a v3 sketch section (pass `None` when serialising v1/v2
/// images, which have no such header field). Both the in-memory
/// serialiser and the streaming builder emit their headers through this
/// function, so the two paths cannot drift.
pub fn encode_header(
    kind: &IndexedBackendKind,
    stats: &BuildStats,
    entries_per_shard: usize,
    entry_count: usize,
    mlc_len: usize,
    sketch_len: Option<usize>,
    shard_lens: &[usize],
) -> Vec<u8> {
    let mut header = Writer::new();
    put_kind(&mut header, kind);
    put_build_stats(&mut header, stats);
    header.usize(entries_per_shard);
    header.usize(entry_count);
    header.usize(mlc_len);
    if let Some(len) = sketch_len {
        header.usize(len);
    }
    header.usize(shard_lens.len());
    for &len in shard_lens {
        header.usize(len);
    }
    header.into_bytes()
}

fn put_entry_meta(w: &mut Writer, e: &IndexEntry) {
    w.u32(e.id);
    w.f64(e.neutral_mass);
    w.f64(e.precursor_mz);
    w.u8(e.precursor_charge);
    w.u8(u8::from(e.is_decoy));
    w.str(&e.peptide);
}

/// Decode one **v1** shard section payload into its metadata entries
/// plus the present `(id, hypervector)` pairs (destined for the flat
/// table).
pub fn get_shard(
    bytes: &[u8],
    dim: usize,
) -> Result<(Shard, Vec<(u32, BinaryHypervector)>), IndexError> {
    let mut r = Reader::new(bytes);
    let count = r.checked_len("shard.entry_count", 1)?;
    let mut entries = Vec::with_capacity(count);
    let mut hvs = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32("entry.id")?;
        let neutral_mass = r.f64("entry.neutral_mass")?;
        let precursor_mz = r.f64("entry.precursor_mz")?;
        let precursor_charge = r.u8("entry.precursor_charge")?;
        let is_decoy = match r.u8("entry.is_decoy")? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::InvalidValue {
                    what: "entry.is_decoy",
                    value: u64::from(other),
                }
                .into())
            }
        };
        let peptide = r.str("entry.peptide")?;
        match r.u8("entry.hv_present")? {
            0 => {}
            1 => {
                let words = r.checked_len("entry.hv_words", 8)?;
                let expected = dim.div_ceil(64);
                if words != expected {
                    return Err(IndexError::Invalid(format!(
                        "entry {id}: hypervector has {words} words, dimension {dim} needs {expected}"
                    )));
                }
                let bytes = r.raw(words * 8, "entry.hv_words")?;
                hvs.push((id, hypervector_from_bytes(dim, bytes)));
            }
            other => {
                return Err(WireError::InvalidValue {
                    what: "entry.hv_present",
                    value: u64::from(other),
                }
                .into())
            }
        }
        entries.push(IndexEntry {
            id,
            neutral_mass,
            precursor_mz,
            precursor_charge,
            is_decoy,
            peptide,
        });
    }
    r.expect_end("shard")?;
    Ok((Shard { entries }, hvs))
}

/// Decode one **v2** shard section payload into its metadata entries
/// plus, for every present hypervector, `(id, byte offset of its word
/// block *within this payload*)`. The caller adds the payload's
/// absolute file offset to turn these into mapped-table offsets — or
/// materialises owned hypervectors from the same ranges (the copying
/// v2 path).
///
/// Validates everything the mapped search path relies on: the padding
/// bytes are zero, every word block's unused tail bits are zero, and
/// the payload is consumed exactly.
pub fn get_shard_v2(bytes: &[u8], dim: usize) -> Result<(Shard, Vec<(u32, usize)>), IndexError> {
    let mut r = Reader::new(bytes);
    let count = r.checked_len("shard.entry_count", 1)?;
    let mut entries = Vec::with_capacity(count);
    let mut present: Vec<u32> = Vec::new();
    for _ in 0..count {
        let (entry, hv_present) = get_entry_meta(&mut r)?;
        if hv_present {
            present.push(entry.id);
        }
        entries.push(entry);
    }
    let meta_len = bytes.len() - r.remaining();
    let pad = r.raw(pad_to_8(meta_len), "shard.padding")?;
    if pad.iter().any(|&b| b != 0) {
        return Err(IndexError::Invalid(
            "nonzero alignment padding in shard section".to_owned(),
        ));
    }
    let word_count = dim.div_ceil(64);
    let block_len = word_count * 8;
    let mut offsets = Vec::with_capacity(present.len());
    let mut offset = meta_len + pad.len();
    for id in present {
        let block = r.raw(block_len, "shard.hv_words")?;
        let tail_bits = dim % 64;
        if tail_bits != 0 {
            let last =
                u64::from_le_bytes(block[block_len - 8..].try_into().expect("8-byte tail word"));
            if last & !((1u64 << tail_bits) - 1) != 0 {
                return Err(IndexError::Invalid(format!(
                    "entry {id}: hypervector tail bits beyond dimension {dim} are set"
                )));
            }
        }
        offsets.push((id, offset));
        offset += block_len;
    }
    r.expect_end("shard")?;
    Ok((Shard { entries }, offsets))
}

fn get_entry_meta(r: &mut Reader<'_>) -> Result<(IndexEntry, bool), IndexError> {
    let id = r.u32("entry.id")?;
    let neutral_mass = r.f64("entry.neutral_mass")?;
    let precursor_mz = r.f64("entry.precursor_mz")?;
    let precursor_charge = r.u8("entry.precursor_charge")?;
    let is_decoy = match r.u8("entry.is_decoy")? {
        0 => false,
        1 => true,
        other => {
            return Err(WireError::InvalidValue {
                what: "entry.is_decoy",
                value: u64::from(other),
            }
            .into())
        }
    };
    let peptide = r.str("entry.peptide")?;
    let hv_present = match r.u8("entry.hv_present")? {
        0 => false,
        1 => true,
        other => {
            return Err(WireError::InvalidValue {
                what: "entry.hv_present",
                value: u64::from(other),
            }
            .into())
        }
    };
    Ok((
        IndexEntry {
            id,
            neutral_mass,
            precursor_mz,
            precursor_charge,
            is_decoy,
            peptide,
        },
        hv_present,
    ))
}

/// Rebuild a bit-packed hypervector by filling its words straight from
/// the file buffer (no intermediate per-entry allocation).
pub(crate) fn hypervector_from_bytes(dim: usize, bytes: &[u8]) -> BinaryHypervector {
    let mut hv = BinaryHypervector::zeros(dim);
    for (word, chunk) in hv.words_mut().iter_mut().zip(bytes.chunks_exact(8)) {
        *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    hv.mask_tail();
    hv
}

/// Encode the MLC section payload.
pub fn put_mlc_state(state: &MlcState) -> Vec<u8> {
    let mut w = Writer::new();
    w.f32_slice(&state.w_eff);
    w.f64(state.sigma_delta);
    w.into_bytes()
}

/// Decode the MLC section payload.
pub fn get_mlc_state(bytes: &[u8]) -> Result<MlcState, IndexError> {
    let mut r = Reader::new(bytes);
    let w_eff = r.f32_slice("mlc_state.w_eff")?;
    let sigma_delta = r.f64("mlc_state.sigma_delta")?;
    r.expect_end("mlc_state")?;
    Ok(MlcState { w_eff, sigma_delta })
}

/// Encode the **v3** prefilter sketch section payload: the full
/// hypervector word count, the sampled word indices, the slot count, the
/// presence bitset, and the dense `slots × words` signature table.
pub fn put_sketches(sketch: &SketchIndex) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(sketch.full_words());
    w.usize(sketch.selected().len());
    for &word in sketch.selected() {
        w.u32(word);
    }
    w.usize(sketch.len());
    w.u64_slice(sketch.present_bits());
    w.u64_slice(sketch.table());
    w.into_bytes()
}

/// Decode the **v3** prefilter sketch section payload, validating the
/// structural invariants [`SketchIndex::from_parts`] enforces.
pub fn get_sketches(bytes: &[u8]) -> Result<SketchIndex, IndexError> {
    let mut r = Reader::new(bytes);
    let full_words = r.u64("sketch.full_words")? as usize;
    let count = r.checked_len("sketch.selected_count", 4)?;
    let mut selected = Vec::with_capacity(count);
    for _ in 0..count {
        selected.push(r.u32("sketch.selected")?);
    }
    let slots = r.u64("sketch.slots")? as usize;
    let present = r.u64_slice("sketch.present")?;
    let table = r.u64_slice("sketch.table")?;
    r.expect_end("sketch")?;
    SketchIndex::from_parts(full_words, selected, table, present, slots)
        .map_err(IndexError::Invalid)
}
