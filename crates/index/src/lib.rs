//! # hdoms-index — persistent sharded library index
//!
//! The paper's accelerator amortises a one-time library encoding (§4.2)
//! across millions of query searches — but an encoding that only lives in
//! RAM is re-paid on every process start. This crate makes the encoded
//! library *persistent*: a versioned binary on-disk format (`HDX`) that
//! stores
//!
//! * the encoded reference hypervectors of a chosen search backend
//!   (software-exact, HyperOMS-style, or the MLC-RRAM accelerator),
//! * per-reference metadata — neutral mass, precursor m/z and charge,
//!   decoy flag, peptide sequence — so searches and PSM reports need no
//!   library file,
//! * precursor-mass **shard** boundaries, so open-modification searches
//!   fan out only to the shards a query's precursor window overlaps and
//!   run shard-parallel ([`ShardedBackend`]),
//! * for the RRAM kind, the **MLC programming state** — the differential
//!   weight pairs of the position-ID item memory — so a warm load
//!   restores the simulated chip without re-sampling the device model,
//! * and an XXH64 checksum per section, so truncation and bit rot are
//!   rejected at load time.
//!
//! A loaded index keeps its hypervectors in one flat shared table
//! ([`LibraryIndex::shared_references`]); every warm backend constructor
//! **shares** that table instead of cloning it, so a resident index plus
//! its backends hold a single copy of the encoded library — which is
//! what makes the long-lived `hdoms-serve` layer affordable.
//!
//! Format **v2** goes one step further: shard hypervector words are laid
//! out 8-aligned, so [`LibraryIndex::open_mapped`] searches the file's
//! bytes **in place** from one backing buffer (`mmap`ed under the
//! default `mmap` feature on Unix, one streamed read otherwise) — no
//! per-reference hypervector is ever materialised, opens stop scaling
//! with the encoded payload, and resident heap drops to the metadata.
//! The full byte-level format is specified in `docs/FORMAT.md`.
//!
//! ## Workflow
//!
//! ```
//! use hdoms_index::{IndexBuilder, IndexConfig, IndexReader};
//! use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
//! use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
//!
//! let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 42);
//!
//! // Build once (encodes the library in parallel) and persist.
//! let mut config = IndexConfig::default();
//! config.threads = 4;
//! if let hdoms_index::IndexedBackendKind::Exact(exact) = &mut config.kind {
//!     exact.encoder.dim = 2048;
//! }
//! let index = IndexBuilder::new(config).from_library(&workload.library);
//! let dir = std::env::temp_dir().join(format!("hdoms-doc-index-{}.hdx", std::process::id()));
//! index.write(&dir).unwrap();
//!
//! // Warm load: no re-encoding, and searches produce identical PSMs.
//! let loaded = IndexReader::open(&dir).unwrap();
//! let backend = loaded.sharded_backend(4).unwrap();
//! let mut pipeline_config = PipelineConfig::fast_test();
//! pipeline_config.exact.encoder.dim = 2048;
//! let pipeline = OmsPipeline::new(pipeline_config);
//! let outcome = pipeline.run_catalog(&workload.queries, &loaded, &backend);
//! assert!(!outcome.accepted.is_empty());
//! # std::fs::remove_file(&dir).ok();
//! ```
//!
//! The `hdoms` CLI exposes this as `hdoms index build` / `hdoms index
//! info` / `hdoms index append` plus `--index` flags on `search` and
//! `compare`; `crates/bench` measures the cold-build vs warm-load gap and
//! the sharded vs unsharded search throughput.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod format;
mod library_index;
mod sharded;
pub mod streaming;
pub mod wire;
pub mod xxhash;

pub use format::{IndexEntry, IndexError, IndexedBackendKind, MlcState, Shard};
pub use library_index::{IndexBuilder, IndexConfig, IndexReader, LibraryIndex};
pub use sharded::{ShardTiming, ShardedBackend};
pub use streaming::{StreamingBuildReport, StreamingConfig, StreamingIndexBuilder};
