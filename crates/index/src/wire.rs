//! Little-endian wire primitives for the index format.
//!
//! A [`Writer`] appends fixed-width scalars and length-prefixed variable
//! data to a byte buffer; a [`Reader`] walks a byte slice back, turning
//! short reads and malformed prefixes into [`WireError`] instead of
//! panics, so a truncated or corrupted index file fails loudly at load
//! time.

use std::fmt;

/// A decode failure: the byte stream ended early or held an impossible
/// value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the expected datum.
    UnexpectedEnd {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes left.
        available: usize,
    },
    /// A value outside its legal domain (e.g. a bad enum tag).
    InvalidValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A length prefix implies more data than the stream holds.
    ImplausibleLength {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        declared: usize,
        /// Bytes left.
        available: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8 {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated stream reading {what}: needed {needed} bytes, {available} available"
            ),
            WireError::InvalidValue { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            WireError::ImplausibleLength {
                what,
                declared,
                available,
            } => write!(
                f,
                "implausible length for {what}: declared {declared}, only {available} bytes left"
            ),
            WireError::InvalidUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append an `f32` by bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a length-prefixed slice of `u64` words.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &w in v {
            self.u64(w);
        }
    }

    /// Append a length-prefixed slice of `f32` values.
    pub fn f32_slice(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    /// Append a length-prefixed slice of `f64` values.
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Append raw bytes with no prefix (caller records the length).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::UnexpectedEnd {
                what,
                needed: n,
                available: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `usize`, rejecting lengths beyond the remaining stream
    /// scaled by `elem_size` (a cheap plausibility bound that stops a
    /// corrupted prefix from provoking a huge allocation).
    pub fn checked_len(
        &mut self,
        what: &'static str,
        elem_size: usize,
    ) -> Result<usize, WireError> {
        let declared = self.u64(what)? as usize;
        let bound = self.remaining() / elem_size.max(1);
        if declared > bound {
            return Err(WireError::ImplausibleLength {
                what,
                declared,
                available: self.remaining(),
            });
        }
        Ok(declared)
    }

    /// Read an `f64`, rejecting NaN bit patterns where a finite value is
    /// structurally required is left to callers; this only re-bits.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read an `f32`.
    pub fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.checked_len(what, 1)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8 { what })
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, what: &'static str) -> Result<Vec<u64>, WireError> {
        let len = self.checked_len(what, 8)?;
        let bytes = self.take(len * 8, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, what: &'static str) -> Result<Vec<f32>, WireError> {
        let len = self.checked_len(what, 4)?;
        let bytes = self.take(len * 4, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let len = self.checked_len(what, 8)?;
        let bytes = self.take(len * 8, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Fail unless the stream is fully consumed.
    pub fn expect_end(&self, what: &'static str) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::InvalidValue {
                what,
                value: self.buf.len() as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-123.456);
        w.f32(0.25);
        w.str("peptide/КИРИЛЛИЦА");
        w.u64_slice(&[1, 2, 3]);
        w.f32_slice(&[0.5, -0.5]);
        w.f64_slice(&[1e300, -1e-300]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap(), -123.456);
        assert_eq!(r.f32("e").unwrap(), 0.25);
        assert_eq!(r.str("f").unwrap(), "peptide/КИРИЛЛИЦА");
        assert_eq!(r.u64_slice("g").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f32_slice("h").unwrap(), vec![0.5, -0.5]);
        assert_eq!(r.f64_slice("i").unwrap(), vec![1e300, -1e-300]);
        r.expect_end("end").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64_slice(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.u64_slice("words").is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // length prefix claiming 2^64 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.u64_slice("words"),
            Err(WireError::ImplausibleLength { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8("x").unwrap();
        assert!(r.expect_end("section").is_err());
    }
}
