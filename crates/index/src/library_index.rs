//! The in-memory index, its builder, its reader, and incremental append.

use crate::format::{
    self, IndexEntry, IndexError, IndexedBackendKind, MlcState, Shard, CHECKSUM_SEED,
    FORMAT_VERSION, MAGIC,
};
use crate::sharded::ShardedBackend;
use crate::wire::{Reader, Writer};
use crate::xxhash::xxh64;
use hdoms_baselines::hyperoms::{HyperOmsBackend, HyperOmsConfig};
use hdoms_core::accelerator::{BuildStats, OmsAccelerator};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_hdc::multibit::IdPrecision;
use hdoms_hdc::parallel::par_map;
use hdoms_hdc::BinaryHypervector;
use hdoms_ms::library::{LibraryEntry, SpectralLibrary};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::pipeline::ReferenceCatalog;
use hdoms_oms::search::{ExactBackend, ExactBackendConfig, SharedReferences};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

/// How an index is built.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Which backend the stored hypervectors are encoded for.
    pub kind: IndexedBackendKind,
    /// Target entries per precursor-mass shard. Shards are cut at mass
    /// quantiles so every shard holds about this many references.
    pub entries_per_shard: usize,
    /// Worker threads for the build (encoding parallelises over library
    /// chunks).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig {
            kind: IndexedBackendKind::Exact(ExactBackendConfig::default()),
            entries_per_shard: 1024,
            threads: hdoms_hdc::parallel::default_threads(),
        }
    }
}

/// Builds a [`LibraryIndex`] from a spectral library.
///
/// The builder runs the configured backend's own constructor, so the
/// persisted hypervectors are byte-identical to a cold build:
///
/// ```
/// use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
/// let mut config = IndexConfig {
///     entries_per_shard: 64,
///     threads: 2,
///     ..IndexConfig::default()
/// };
/// if let IndexedBackendKind::Exact(exact) = &mut config.kind {
///     exact.encoder.dim = 512;
/// }
/// let index = IndexBuilder::new(config).from_library(&workload.library);
/// assert_eq!(index.entry_count(), workload.library.len());
/// assert!(index.shards().len() > 1);
/// ```
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    config: IndexConfig,
}

impl IndexBuilder {
    /// A builder with `config`.
    pub fn new(config: IndexConfig) -> IndexBuilder {
        assert!(
            config.entries_per_shard > 0,
            "entries_per_shard must be positive"
        );
        IndexBuilder { config }
    }

    /// Encode the whole library once (in parallel, chunked over worker
    /// threads) and lay the result out as precursor-mass shards.
    ///
    /// The encoding path is byte-identical to a cold backend build: the
    /// builder literally runs the corresponding backend constructor and
    /// persists its reference hypervectors, so a warm-loaded search
    /// produces the same PSMs as a cold one.
    ///
    /// # Panics
    ///
    /// Panics on an empty library or invalid configuration (same
    /// contracts as the underlying backend constructors).
    pub fn from_library(&self, library: &SpectralLibrary) -> LibraryIndex {
        assert!(!library.is_empty(), "cannot index an empty library");
        let threads = self.config.threads;
        let (references, build_stats, mlc): (SharedReferences, _, _) = match &self.config.kind {
            IndexedBackendKind::Exact(config) => {
                let mut config = *config;
                config.threads = threads;
                let backend = ExactBackend::build(library, config);
                let stats = stats_from_refs(backend.reference_hvs());
                (Arc::clone(backend.shared_references()), stats, None)
            }
            IndexedBackendKind::HyperOms(config) => {
                let mut config = *config;
                config.threads = threads;
                let backend = HyperOmsBackend::build(library, config);
                let stats = stats_from_refs(backend.inner().reference_hvs());
                (Arc::clone(backend.inner().shared_references()), stats, None)
            }
            IndexedBackendKind::Rram(config) => {
                let mut config = *config;
                config.threads = threads;
                let accel = OmsAccelerator::build(library, config);
                let stats = *accel.build_stats();
                let mlc = MlcState {
                    w_eff: accel.encoder().programmed_weights().to_vec(),
                    sigma_delta: accel.encoder().sigma_delta(),
                };
                (
                    Arc::clone(accel.search_engine().shared_references()),
                    stats,
                    Some(mlc),
                )
            }
        };

        let mut entries: Vec<IndexEntry> = library
            .iter()
            .map(|e| IndexEntry {
                id: e.spectrum.id,
                neutral_mass: e.spectrum.neutral_mass(),
                precursor_mz: e.spectrum.precursor_mz,
                precursor_charge: e.spectrum.precursor_charge,
                is_decoy: e.is_decoy,
                peptide: e.peptide.to_string(),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.neutral_mass
                .total_cmp(&b.neutral_mass)
                .then(a.id.cmp(&b.id))
        });

        let per_shard = self.config.entries_per_shard;
        let shards: Vec<Shard> = entries
            .chunks(per_shard)
            .map(|chunk| Shard {
                entries: chunk.to_vec(),
            })
            .collect();

        let mut index = LibraryIndex {
            kind: self.config.kind.clone(),
            entries_per_shard: per_shard,
            entry_count: library.len(),
            build_stats,
            mlc,
            shards,
            references,
            by_id: Vec::new(),
        };
        index.rebuild_by_id();
        index
    }
}

fn stats_from_refs(refs: &[Option<BinaryHypervector>]) -> BuildStats {
    let stored = refs.iter().flatten().count();
    BuildStats {
        references_stored: stored,
        references_rejected: refs.len() - stored,
        mean_encode_ber: 0.0,
    }
}

/// A persistent, sharded, encoded spectral library.
///
/// Holds everything a search needs — encoded reference hypervectors,
/// per-reference metadata (mass, charge, decoy flag, peptide), precursor
/// mass shard boundaries, and for the RRAM kind the MLC programming state
/// — so queries run **without re-encoding the library** and without the
/// raw library file.
///
/// The hypervectors live in one flat reference-counted table
/// ([`LibraryIndex::shared_references`]); the warm backend constructors
/// ([`LibraryIndex::to_exact_backend`] and friends) share that table
/// instead of cloning it, so a resident index plus any number of
/// backends reconstructed from it hold exactly **one** copy of the
/// encoded library. Cloning a `LibraryIndex` likewise shares the table.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryIndex {
    kind: IndexedBackendKind,
    entries_per_shard: usize,
    entry_count: usize,
    build_stats: BuildStats,
    mlc: Option<MlcState>,
    shards: Vec<Shard>,
    /// The flat `id → hypervector` table shared with warm backends.
    references: SharedReferences,
    /// Dense `id → (neutral mass, is_decoy)` side table, derived from the
    /// shards, so per-PSM catalog lookups are O(1) instead of scanning
    /// every shard (rebuilt on construction and append).
    by_id: Vec<(f64, bool)>,
}

impl LibraryIndex {
    /// The backend kind the index was built for.
    pub fn kind(&self) -> &IndexedBackendKind {
        &self.kind
    }

    /// Library-encoding statistics captured at build time.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Number of indexed references.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// The precursor-mass shards, ascending in mass.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The persisted MLC programming state (RRAM kind only).
    pub fn mlc_state(&self) -> Option<&MlcState> {
        self.mlc.as_ref()
    }

    /// Hypervector dimension of the stored references.
    pub fn dim(&self) -> usize {
        self.kind.dim()
    }

    /// Iterate all entries in shard order (ascending mass).
    pub fn entries(&self) -> impl Iterator<Item = &IndexEntry> {
        self.shards.iter().flat_map(|s| s.entries.iter())
    }

    /// Peptide sequence of reference `id` (for PSM tables without the
    /// library file).
    pub fn peptides_by_id(&self) -> Vec<String> {
        let mut peptides = vec![String::new(); self.entry_count];
        for e in self.entries() {
            peptides[e.id as usize] = e.peptide.clone();
        }
        peptides
    }

    /// The encoded reference hypervectors laid out flat by dense id
    /// (`None` where preprocessing rejected the entry).
    pub fn references(&self) -> &[Option<BinaryHypervector>] {
        &self.references
    }

    /// The shared handle to the flat reference table. Warm backends built
    /// from this index hold clones of this `Arc` — compare with
    /// [`Arc::ptr_eq`] to verify storage is shared rather than copied.
    pub fn shared_references(&self) -> &SharedReferences {
        &self.references
    }

    /// Shard assignment by dense id (`shard_of[id]` = shard position).
    pub fn shard_assignment(&self) -> Vec<u32> {
        let mut assignment = vec![0u32; self.entry_count];
        for (s, shard) in self.shards.iter().enumerate() {
            for e in &shard.entries {
                assignment[e.id as usize] = s as u32;
            }
        }
        assignment
    }

    // -- backend reconstruction ------------------------------------------

    /// Reconstruct the software-exact backend without re-encoding.
    ///
    /// The returned backend **shares** this index's reference table — no
    /// hypervector words are copied, so index + backend together hold one
    /// copy of the encoded library.
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind.
    pub fn to_exact_backend(&self, threads: usize) -> Result<ExactBackend, IndexError> {
        let IndexedBackendKind::Exact(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not exact",
                self.kind.name()
            )));
        };
        let mut config = *config;
        config.threads = threads;
        Ok(ExactBackend::from_shared(
            config,
            Arc::clone(&self.references),
        ))
    }

    /// Reconstruct the HyperOMS-style backend without re-encoding (the
    /// reference table is shared, not cloned).
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind.
    pub fn to_hyperoms_backend(&self, threads: usize) -> Result<HyperOmsBackend, IndexError> {
        let IndexedBackendKind::HyperOms(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not hyperoms",
                self.kind.name()
            )));
        };
        let inner = ExactBackend::from_shared(
            hyperoms_exact_config(config, threads),
            Arc::clone(&self.references),
        );
        Ok(HyperOmsBackend::from_exact(inner))
    }

    /// Reconstruct the MLC-RRAM accelerator without re-encoding the
    /// library: the ID item memory is restored from the persisted
    /// differential weight pairs and the stored reference hypervectors
    /// become the search weights directly (shared with this index, not
    /// cloned).
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind or the MLC section is missing.
    pub fn to_accelerator(&self, threads: usize) -> Result<OmsAccelerator, IndexError> {
        let IndexedBackendKind::Rram(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not rram",
                self.kind.name()
            )));
        };
        let Some(mlc) = &self.mlc else {
            return Err(IndexError::Invalid(
                "rram index is missing its MLC programming state".to_owned(),
            ));
        };
        let mut config = *config;
        config.threads = threads;
        let encoder = InMemoryEncoder::from_programmed(
            config.encoder,
            config.crossbar,
            mlc.w_eff.clone(),
            mlc.sigma_delta,
            config.seed,
        );
        Ok(OmsAccelerator::from_parts(
            config,
            encoder,
            Arc::clone(&self.references),
            self.build_stats,
        ))
    }

    /// The sharded, shard-parallel search backend for this index's kind.
    ///
    /// Scores are identical to the corresponding flat backend — sharding
    /// only changes iteration order and parallel granularity, and every
    /// per-(query, reference) evaluation is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates the kind mismatch errors of the reconstruction methods.
    pub fn sharded_backend(&self, threads: usize) -> Result<ShardedBackend, IndexError> {
        let assignment = self.shard_assignment();
        let shard_count = self.shards.len();
        match &self.kind {
            IndexedBackendKind::Exact(_) => Ok(ShardedBackend::over_exact(
                self.to_exact_backend(threads)?,
                assignment,
                shard_count,
                threads,
            )),
            IndexedBackendKind::HyperOms(_) => Ok(ShardedBackend::over_hyperoms(
                self.to_hyperoms_backend(threads)?,
                assignment,
                shard_count,
                threads,
            )),
            IndexedBackendKind::Rram(_) => Ok(ShardedBackend::over_accelerator(
                self.to_accelerator(threads)?,
                assignment,
                shard_count,
                threads,
            )),
        }
    }

    // -- incremental append ----------------------------------------------

    /// Append new library spectra to the index, encoding **only** the new
    /// entries. New entries receive the next dense ids (`entry_count..`),
    /// exactly as if the library had contained them at build time, so an
    /// appended index searches identically to a cold rebuild over the
    /// concatenated library.
    ///
    /// Entries land in the shard whose mass range covers them; a shard
    /// grown past twice the configured target splits in half.
    ///
    /// # Panics
    ///
    /// Panics on invalid spectra (same contracts as the build path).
    pub fn append_entries(&mut self, new_entries: &[LibraryEntry], threads: usize) {
        if new_entries.is_empty() {
            return;
        }
        let first_id = self.entry_count as u32;
        let encoded: Vec<(Option<BinaryHypervector>, f64)> = match &self.kind {
            IndexedBackendKind::Exact(config) => {
                let encoder = IdLevelEncoder::new(config.encoder);
                let pre = Preprocessor::new(config.preprocess);
                let config = *config;
                let jobs: Vec<(usize, &LibraryEntry)> = new_entries.iter().enumerate().collect();
                par_map(&jobs, threads, |&(offset, entry)| {
                    let id = first_id + offset as u32;
                    (encode_exact_entry(&encoder, &pre, &config, entry, id), 0.0)
                })
            }
            IndexedBackendKind::HyperOms(config) => {
                let exact = hyperoms_exact_config(config, threads);
                let encoder = IdLevelEncoder::new(exact.encoder);
                let pre = Preprocessor::new(exact.preprocess);
                let jobs: Vec<(usize, &LibraryEntry)> = new_entries.iter().enumerate().collect();
                par_map(&jobs, threads, |&(offset, entry)| {
                    let id = first_id + offset as u32;
                    (encode_exact_entry(&encoder, &pre, &exact, entry, id), 0.0)
                })
            }
            IndexedBackendKind::Rram(config) => {
                let mlc = self
                    .mlc
                    .as_ref()
                    .expect("rram index carries MLC state by construction");
                let encoder = InMemoryEncoder::from_programmed(
                    config.encoder,
                    config.crossbar,
                    mlc.w_eff.clone(),
                    mlc.sigma_delta,
                    config.seed,
                );
                let pre = Preprocessor::new(config.preprocess);
                let jobs: Vec<(usize, &LibraryEntry)> = new_entries.iter().enumerate().collect();
                par_map(&jobs, threads, |&(offset, entry)| {
                    let id = first_id + offset as u32;
                    let mut spectrum = entry.spectrum.clone();
                    spectrum.id = id;
                    match pre.run(&spectrum) {
                        Err(_) => (None, 0.0),
                        Ok(binned) => {
                            let (hv, stats) = encoder.encode_with_stats(&binned);
                            (Some(hv), stats.bit_error_rate())
                        }
                    }
                })
            }
        };

        // Fold the new encodings into the build statistics (exact update:
        // the stored mean is re-weighted by the stored counts).
        let new_stored = encoded.iter().filter(|(hv, _)| hv.is_some()).count();
        let new_ber_sum: f64 = encoded
            .iter()
            .filter(|(hv, _)| hv.is_some())
            .map(|&(_, ber)| ber)
            .sum();
        let old_stored = self.build_stats.references_stored;
        let total_stored = old_stored + new_stored;
        self.build_stats.mean_encode_ber = if total_stored == 0 {
            0.0
        } else {
            (self.build_stats.mean_encode_ber * old_stored as f64 + new_ber_sum)
                / total_stored as f64
        };
        self.build_stats.references_stored = total_stored;
        self.build_stats.references_rejected += new_entries.len() - new_stored;

        // New ids are `entry_count..`, so the flat table simply extends.
        // `Arc::make_mut` is copy-on-write: appending while warm backends
        // still share the table pays a one-time copy; the common case
        // (append offline, then serve) stays zero-copy.
        Arc::make_mut(&mut self.references).extend(encoded.into_iter().map(|(hv, _)| hv));
        for (offset, entry) in new_entries.iter().enumerate() {
            let id = first_id + offset as u32;
            let indexed = IndexEntry {
                id,
                neutral_mass: entry.spectrum.neutral_mass(),
                precursor_mz: entry.spectrum.precursor_mz,
                precursor_charge: entry.spectrum.precursor_charge,
                is_decoy: entry.is_decoy,
                peptide: entry.peptide.to_string(),
            };
            self.insert_entry(indexed);
        }
        self.entry_count += new_entries.len();
        self.rebuild_by_id();
    }

    /// Recompute the dense `id → (mass, decoy)` side table from the
    /// shards.
    fn rebuild_by_id(&mut self) {
        let mut by_id = vec![(f64::NAN, false); self.entry_count];
        for shard in &self.shards {
            for e in &shard.entries {
                by_id[e.id as usize] = (e.neutral_mass, e.is_decoy);
            }
        }
        self.by_id = by_id;
    }

    /// Place one entry into the shard covering its mass, splitting the
    /// shard if it has grown past twice the target size.
    fn insert_entry(&mut self, entry: IndexEntry) {
        // The shard whose upper bound is the first ≥ the entry's mass;
        // masses above every shard land in the last shard.
        let position = self
            .shards
            .partition_point(|s| s.mass_hi().is_some_and(|hi| hi < entry.neutral_mass))
            .min(self.shards.len().saturating_sub(1));
        let shard = &mut self.shards[position];
        let at = shard
            .entries
            .partition_point(|e| (e.neutral_mass, e.id) < (entry.neutral_mass, entry.id));
        shard.entries.insert(at, entry);
        if shard.entries.len() > 2 * self.entries_per_shard {
            let tail = shard.entries.split_off(shard.entries.len() / 2);
            self.shards.insert(position + 1, Shard { entries: tail });
        }
    }

    // -- persistence -----------------------------------------------------

    /// Serialise to the `HDX` byte format (see [`crate::format`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let dim = self.dim();
        let mlc_bytes = self.mlc.as_ref().map(format::put_mlc_state);
        let shard_bytes: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| format::put_shard(s, dim, &self.references))
            .collect();

        let mut header = Writer::new();
        format::put_kind(&mut header, &self.kind);
        format::put_build_stats(&mut header, &self.build_stats);
        header.usize(self.entries_per_shard);
        header.usize(self.entry_count);
        header.usize(mlc_bytes.as_ref().map_or(0, Vec::len));
        header.usize(shard_bytes.len());
        for bytes in &shard_bytes {
            header.usize(bytes.len());
        }
        let header = header.into_bytes();

        let mut out = Writer::new();
        out.raw(&MAGIC);
        out.u32(FORMAT_VERSION);
        out.usize(header.len());
        out.raw(&header);
        out.u64(xxh64(&header, CHECKSUM_SEED));
        if let Some(bytes) = &mlc_bytes {
            out.raw(bytes);
            out.u64(xxh64(bytes, CHECKSUM_SEED));
        }
        for bytes in &shard_bytes {
            out.raw(bytes);
            out.u64(xxh64(bytes, CHECKSUM_SEED));
        }
        out.into_bytes()
    }

    /// Write the index to `path` (atomically: a temp file is renamed into
    /// place so a crashed write never leaves a half-index behind).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> Result<(), IndexError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("hdx.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Decode from bytes, verifying magic, version and every section
    /// checksum; shards decode in parallel over `threads`.
    ///
    /// # Errors
    ///
    /// Any structural, checksum or semantic problem aborts the load with
    /// a descriptive [`IndexError`] — a corrupted index never half-loads.
    pub fn from_bytes(bytes: &[u8], threads: usize) -> Result<LibraryIndex, IndexError> {
        let mut r = Reader::new(bytes);
        let magic = r.raw(8, "magic")?;
        if magic != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = r.u32("format_version")?;
        if version != FORMAT_VERSION {
            return Err(IndexError::UnsupportedVersion { found: version });
        }
        let header_len = r.checked_len("header_len", 1)?;
        let header_bytes = r.raw(header_len, "header")?;
        let header_hash = r.u64("header_checksum")?;
        if xxh64(header_bytes, CHECKSUM_SEED) != header_hash {
            return Err(IndexError::ChecksumMismatch {
                section: "header".to_owned(),
            });
        }

        let mut h = Reader::new(header_bytes);
        let kind = format::get_kind(&mut h)?;
        let build_stats = format::get_build_stats(&mut h)?;
        let entries_per_shard = h.u64("header.entries_per_shard")? as usize;
        let entry_count = h.u64("header.entry_count")? as usize;
        // Every entry costs well over one byte on disk, so a declared
        // count beyond the file size is corruption — reject it before any
        // count-sized allocation (validate/rebuild_by_id) can run.
        if entry_count > bytes.len() {
            return Err(IndexError::Invalid(format!(
                "declared entry count {entry_count} exceeds the file size ({} bytes)",
                bytes.len()
            )));
        }
        let mlc_len = h.u64("header.mlc_len")? as usize;
        let shard_count = h.checked_len("header.shard_count", 8)?;
        let mut shard_lens = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shard_lens.push(h.u64("header.shard_len")? as usize);
        }
        h.expect_end("header")?;
        if entries_per_shard == 0 {
            return Err(IndexError::Invalid("entries_per_shard is zero".to_owned()));
        }

        let mlc = if mlc_len == 0 {
            None
        } else {
            let payload = r.raw(mlc_len, "mlc_section")?;
            let hash = r.u64("mlc_checksum")?;
            if xxh64(payload, CHECKSUM_SEED) != hash {
                return Err(IndexError::ChecksumMismatch {
                    section: "mlc".to_owned(),
                });
            }
            Some(format::get_mlc_state(payload)?)
        };

        let mut shard_slices = Vec::with_capacity(shard_count);
        for (i, &len) in shard_lens.iter().enumerate() {
            let payload = r.raw(len, "shard_section")?;
            let hash = r.u64("shard_checksum")?;
            if xxh64(payload, CHECKSUM_SEED) != hash {
                return Err(IndexError::ChecksumMismatch {
                    section: format!("shard {i}"),
                });
            }
            shard_slices.push(payload);
        }
        r.expect_end("index file")?;

        let dim = kind.dim();
        let decoded = par_map(&shard_slices, threads, |payload| {
            format::get_shard(payload, dim)
        });
        let mut shards = Vec::with_capacity(decoded.len());
        let mut references = vec![None; entry_count];
        for shard in decoded {
            let (shard, hvs) = shard?;
            for (id, hv) in hvs {
                let slot = references.get_mut(id as usize).ok_or_else(|| {
                    IndexError::Invalid(format!(
                        "entry id {id} outside the declared count {entry_count}"
                    ))
                })?;
                *slot = Some(hv);
            }
            shards.push(shard);
        }

        let mut index = LibraryIndex {
            kind,
            entries_per_shard,
            entry_count,
            build_stats,
            mlc,
            shards,
            references: Arc::new(references),
            by_id: Vec::new(),
        };
        index.validate()?;
        index.rebuild_by_id();
        Ok(index)
    }

    /// Structural sanity: dense unique ids, mass-sorted shards, monotone
    /// shard ranges, MLC state present exactly for the RRAM kind, and a
    /// reference table the size of the declared entry count.
    fn validate(&self) -> Result<(), IndexError> {
        if self.entry_count == 0 || self.shards.is_empty() {
            return Err(IndexError::Invalid(
                "index holds no entries (the builder never produces one)".to_owned(),
            ));
        }
        if self.references.len() != self.entry_count {
            return Err(IndexError::Invalid(format!(
                "reference table holds {} slots for {} declared entries",
                self.references.len(),
                self.entry_count
            )));
        }
        let mut seen = vec![false; self.entry_count];
        let mut previous_hi = f64::NEG_INFINITY;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut previous = (f64::NEG_INFINITY, 0u32);
            for e in &shard.entries {
                let slot = seen.get_mut(e.id as usize).ok_or_else(|| {
                    IndexError::Invalid(format!(
                        "entry id {} outside the declared count {}",
                        e.id, self.entry_count
                    ))
                })?;
                if std::mem::replace(slot, true) {
                    return Err(IndexError::Invalid(format!("duplicate entry id {}", e.id)));
                }
                if (e.neutral_mass, e.id) < previous {
                    return Err(IndexError::Invalid(format!(
                        "shard {s} is not sorted by (mass, id) at entry {}",
                        e.id
                    )));
                }
                previous = (e.neutral_mass, e.id);
            }
            if let (Some(lo), Some(hi)) = (shard.mass_lo(), shard.mass_hi()) {
                if lo < previous_hi {
                    return Err(IndexError::Invalid(format!(
                        "shard {s} mass range overlaps its predecessor"
                    )));
                }
                previous_hi = hi;
            }
        }
        if seen.iter().any(|&present| !present) {
            return Err(IndexError::Invalid(
                "entry ids are not dense over the declared count".to_owned(),
            ));
        }
        match (&self.kind, &self.mlc) {
            (IndexedBackendKind::Rram(_), None) => Err(IndexError::Invalid(
                "rram index is missing its MLC section".to_owned(),
            )),
            (IndexedBackendKind::Exact(_) | IndexedBackendKind::HyperOms(_), Some(_)) => Err(
                IndexError::Invalid("software index carries an MLC section".to_owned()),
            ),
            _ => Ok(()),
        }
    }
}

/// Reads `HDX` index files.
///
/// ```
/// use hdoms_index::{IndexBuilder, IndexConfig, IndexReader, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
/// let mut config = IndexConfig { threads: 2, ..IndexConfig::default() };
/// if let IndexedBackendKind::Exact(exact) = &mut config.kind {
///     exact.encoder.dim = 512;
/// }
/// let index = IndexBuilder::new(config).from_library(&workload.library);
///
/// let path = std::env::temp_dir().join(format!("hdoms-reader-doc-{}.hdx", std::process::id()));
/// index.write(&path).unwrap();
/// let loaded = IndexReader::with_threads(2).open_with(&path).unwrap();
/// assert_eq!(loaded, index);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IndexReader {
    threads: usize,
}

impl Default for IndexReader {
    fn default() -> IndexReader {
        IndexReader {
            threads: hdoms_hdc::parallel::default_threads(),
        }
    }
}

impl IndexReader {
    /// A reader decoding shards over `threads` workers.
    pub fn with_threads(threads: usize) -> IndexReader {
        IndexReader {
            threads: threads.max(1),
        }
    }

    /// Load and validate an index from `path`.
    ///
    /// The file is read in one streamed pass and shard sections are
    /// checksum-verified and decoded in parallel; hypervector bit words
    /// are filled straight from the file buffer into each hypervector,
    /// with no intermediate per-entry buffers.
    ///
    /// # Errors
    ///
    /// Filesystem, format, checksum and semantic failures all surface as
    /// [`IndexError`].
    pub fn open(path: &Path) -> Result<LibraryIndex, IndexError> {
        IndexReader::default().open_with(path)
    }

    /// Like [`IndexReader::open`] with this reader's thread setting.
    ///
    /// # Errors
    ///
    /// See [`IndexReader::open`].
    pub fn open_with(&self, path: &Path) -> Result<LibraryIndex, IndexError> {
        let bytes = std::fs::read(path)?;
        LibraryIndex::from_bytes(&bytes, self.threads)
    }
}

impl ReferenceCatalog for LibraryIndex {
    fn reference_count(&self) -> usize {
        self.entry_count
    }

    fn reference_mass(&self, id: u32) -> Option<f64> {
        self.by_id.get(id as usize).map(|&(mass, _)| mass)
    }

    fn reference_is_decoy(&self, id: u32) -> Option<bool> {
        self.by_id.get(id as usize).map(|&(_, decoy)| decoy)
    }

    fn candidate_index(&self) -> CandidateIndex {
        CandidateIndex::from_masses(self.entries().map(|e| (e.neutral_mass, e.id)))
    }
}

/// The exact-backend configuration HyperOMS uses (mirrors
/// `HyperOmsBackend::build`).
fn hyperoms_exact_config(config: &HyperOmsConfig, threads: usize) -> ExactBackendConfig {
    ExactBackendConfig {
        preprocess: config.preprocess,
        encoder: EncoderConfig {
            dim: config.dim,
            q_levels: config.q_levels,
            id_precision: IdPrecision::Bits1,
            level_style: LevelStyle::Random,
            num_bins: config.preprocess.num_bins(),
            seed: config.seed,
        },
        threads,
        encode_ber: 0.0,
        storage_ber: 0.0,
        noise_seed: 0,
    }
}

/// Encode one appended entry exactly as `ExactBackend::build` would have
/// with the entry at dense id `id` (including the deterministic storage
/// bit-error injection).
fn encode_exact_entry(
    encoder: &IdLevelEncoder,
    pre: &Preprocessor,
    config: &ExactBackendConfig,
    entry: &LibraryEntry,
    id: u32,
) -> Option<BinaryHypervector> {
    let mut spectrum = entry.spectrum.clone();
    spectrum.id = id;
    pre.run(&spectrum).ok().map(|binned| {
        let mut hv = encoder.encode(&binned);
        if config.storage_ber > 0.0 {
            let mut rng = StdRng::seed_from_u64(
                config
                    .noise_seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(id)),
            );
            hdoms_hdc::corrupt::flip_bits_in_place(&mut rng, &mut hv, config.storage_ber);
        }
        hv
    })
}
