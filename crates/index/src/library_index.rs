//! The in-memory index, its builder, its reader, and incremental append.

use crate::format::{
    self, IndexEntry, IndexError, IndexedBackendKind, MlcState, Shard, CHECKSUM_SEED,
    FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
use crate::sharded::ShardedBackend;
use crate::wire::{Reader, Writer};
use crate::xxhash::xxh64;
use hdoms_baselines::hyperoms::{HyperOmsBackend, HyperOmsConfig};
use hdoms_core::accelerator::{BuildStats, OmsAccelerator};
use hdoms_core::encode::InMemoryEncoder;
use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
use hdoms_hdc::item_memory::LevelStyle;
use hdoms_hdc::multibit::IdPrecision;
use hdoms_hdc::parallel::par_map;
use hdoms_hdc::{BinaryHypervector, WordBuffer};
use hdoms_ms::library::{LibraryEntry, SpectralLibrary};
use hdoms_ms::preprocess::Preprocessor;
use hdoms_oms::candidates::CandidateIndex;
use hdoms_oms::pipeline::ReferenceCatalog;
use hdoms_oms::search::{ExactBackend, ExactBackendConfig, MappedReferences, SharedReferences};
use hdoms_prefilter::{SketchIndex, SKETCH_WORDS};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// How an index is built.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Which backend the stored hypervectors are encoded for.
    pub kind: IndexedBackendKind,
    /// Target entries per precursor-mass shard. Shards are cut at mass
    /// quantiles so every shard holds about this many references.
    pub entries_per_shard: usize,
    /// Worker threads for the build (encoding parallelises over library
    /// chunks).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig {
            kind: IndexedBackendKind::Exact(ExactBackendConfig::default()),
            entries_per_shard: 1024,
            threads: hdoms_hdc::parallel::default_threads(),
        }
    }
}

/// Builds a [`LibraryIndex`] from a spectral library.
///
/// The builder runs the configured backend's own constructor, so the
/// persisted hypervectors are byte-identical to a cold build:
///
/// ```
/// use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 7);
/// let mut config = IndexConfig {
///     entries_per_shard: 64,
///     threads: 2,
///     ..IndexConfig::default()
/// };
/// if let IndexedBackendKind::Exact(exact) = &mut config.kind {
///     exact.encoder.dim = 512;
/// }
/// let index = IndexBuilder::new(config).from_library(&workload.library);
/// assert_eq!(index.entry_count(), workload.library.len());
/// assert!(index.shards().len() > 1);
/// ```
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    config: IndexConfig,
}

impl IndexBuilder {
    /// A builder with `config`.
    pub fn new(config: IndexConfig) -> IndexBuilder {
        assert!(
            config.entries_per_shard > 0,
            "entries_per_shard must be positive"
        );
        IndexBuilder { config }
    }

    /// Encode the whole library once (in parallel, chunked over worker
    /// threads) and lay the result out as precursor-mass shards.
    ///
    /// The encoding path is byte-identical to a cold backend build: the
    /// builder literally runs the corresponding backend constructor and
    /// persists its reference hypervectors, so a warm-loaded search
    /// produces the same PSMs as a cold one.
    ///
    /// # Panics
    ///
    /// Panics on an empty library or invalid configuration (same
    /// contracts as the underlying backend constructors).
    pub fn from_library(&self, library: &SpectralLibrary) -> LibraryIndex {
        assert!(!library.is_empty(), "cannot index an empty library");
        let threads = self.config.threads;
        let (references, build_stats, mlc): (SharedReferences, _, _) = match &self.config.kind {
            IndexedBackendKind::Exact(config) => {
                let mut config = *config;
                config.threads = threads;
                let backend = ExactBackend::build(library, config);
                let stats = stats_from_shared(backend.shared_references());
                (backend.shared_references().clone(), stats, None)
            }
            IndexedBackendKind::HyperOms(config) => {
                let mut config = *config;
                config.threads = threads;
                let backend = HyperOmsBackend::build(library, config);
                let stats = stats_from_shared(backend.inner().shared_references());
                (backend.inner().shared_references().clone(), stats, None)
            }
            IndexedBackendKind::Rram(config) => {
                let mut config = *config;
                config.threads = threads;
                let accel = OmsAccelerator::build(library, config);
                let stats = *accel.build_stats();
                let mlc = MlcState {
                    w_eff: accel.encoder().programmed_weights().to_vec(),
                    sigma_delta: accel.encoder().sigma_delta(),
                };
                (
                    accel.search_engine().shared_references().clone(),
                    stats,
                    Some(mlc),
                )
            }
        };

        let mut entries: Vec<IndexEntry> = library
            .iter()
            .map(|e| IndexEntry {
                id: e.spectrum.id,
                neutral_mass: e.spectrum.neutral_mass(),
                precursor_mz: e.spectrum.precursor_mz,
                precursor_charge: e.spectrum.precursor_charge,
                is_decoy: e.is_decoy,
                peptide: e.peptide.to_string(),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.neutral_mass
                .total_cmp(&b.neutral_mass)
                .then(a.id.cmp(&b.id))
        });

        let per_shard = self.config.entries_per_shard;
        let shards: Vec<Shard> = entries
            .chunks(per_shard)
            .map(|chunk| Shard {
                entries: chunk.to_vec(),
            })
            .collect();

        let mut index = LibraryIndex {
            kind: self.config.kind.clone(),
            entries_per_shard: per_shard,
            entry_count: library.len(),
            build_stats,
            mlc,
            shards,
            references,
            by_id: Vec::new(),
            peptides: OnceLock::new(),
            sketches: OnceLock::new(),
        };
        index.rebuild_by_id();
        index
    }
}

fn stats_from_shared(refs: &SharedReferences) -> BuildStats {
    let stored = refs.present_count();
    BuildStats {
        references_stored: stored,
        references_rejected: refs.len() - stored,
        mean_encode_ber: 0.0,
    }
}

/// A persistent, sharded, encoded spectral library.
///
/// Holds everything a search needs — encoded reference hypervectors,
/// per-reference metadata (mass, charge, decoy flag, peptide), precursor
/// mass shard boundaries, and for the RRAM kind the MLC programming state
/// — so queries run **without re-encoding the library** and without the
/// raw library file.
///
/// The hypervectors live in one flat reference-counted table
/// ([`LibraryIndex::shared_references`]); the warm backend constructors
/// ([`LibraryIndex::to_exact_backend`] and friends) share that table
/// instead of cloning it, so a resident index plus any number of
/// backends reconstructed from it hold exactly **one** copy of the
/// encoded library. Cloning a `LibraryIndex` likewise shares the table.
///
/// Equality compares logical content: the peptide cache is derived
/// state and ignored, and owned vs mapped reference tables with the
/// same bits compare equal.
///
/// The table comes in two representations (see [`SharedReferences`]):
/// owned hypervectors (cold builds, v1 loads, appends) or word slices
/// inside the single file buffer a v2 index was loaded from
/// ([`LibraryIndex::open_mapped`]) — searches go through the same
/// lookup either way, so every backend above is representation-blind.
#[derive(Debug, Clone)]
pub struct LibraryIndex {
    kind: IndexedBackendKind,
    entries_per_shard: usize,
    entry_count: usize,
    build_stats: BuildStats,
    mlc: Option<MlcState>,
    shards: Vec<Shard>,
    /// The flat `id → hypervector` table shared with warm backends.
    references: SharedReferences,
    /// Dense `id → (neutral mass, is_decoy)` side table, derived from the
    /// shards, so per-PSM catalog lookups are O(1) instead of scanning
    /// every shard (rebuilt on construction and append).
    by_id: Vec<(f64, bool)>,
    /// Dense `id → peptide` table, built lazily on the first
    /// [`LibraryIndex::peptides_by_id`] call and then shared with every
    /// caller (cleared on mutation) — loads stay free of per-peptide
    /// clones, and per-session serve calls cost one `Arc` bump.
    peptides: OnceLock<Arc<[String]>>,
    /// The prefilter's folded-hypervector sketch table, pre-populated on
    /// a v3 load and derived lazily otherwise (see
    /// [`LibraryIndex::sketch_index`]); cleared on mutation.
    sketches: OnceLock<Arc<SketchIndex>>,
}

impl PartialEq for LibraryIndex {
    fn eq(&self, other: &LibraryIndex) -> bool {
        self.kind == other.kind
            && self.entries_per_shard == other.entries_per_shard
            && self.entry_count == other.entry_count
            && self.build_stats == other.build_stats
            && self.mlc == other.mlc
            && self.shards == other.shards
            && self.references == other.references
        // `by_id`, `peptides` and `sketches` are derived state.
    }
}

impl LibraryIndex {
    /// The backend kind the index was built for.
    pub fn kind(&self) -> &IndexedBackendKind {
        &self.kind
    }

    /// Library-encoding statistics captured at build time.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Number of indexed references.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// The precursor-mass shards, ascending in mass.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The persisted MLC programming state (RRAM kind only).
    pub fn mlc_state(&self) -> Option<&MlcState> {
        self.mlc.as_ref()
    }

    /// Hypervector dimension of the stored references.
    pub fn dim(&self) -> usize {
        self.kind.dim()
    }

    /// Iterate all entries in shard order (ascending mass).
    pub fn entries(&self) -> impl Iterator<Item = &IndexEntry> {
        self.shards.iter().flat_map(|s| s.entries.iter())
    }

    /// Peptide sequences by dense reference id (for PSM tables without
    /// the library file). The table is built once per index mutation and
    /// shared — calling this per session (as the serve layer does) costs
    /// one `Arc` bump, not an allocation per peptide.
    pub fn peptides_by_id(&self) -> Arc<[String]> {
        Arc::clone(self.peptides.get_or_init(|| {
            let mut peptides = vec![String::new(); self.entry_count];
            for e in self.entries() {
                peptides[e.id as usize] = e.peptide.clone();
            }
            peptides.into()
        }))
    }

    /// The shared handle to the flat reference table. Warm backends built
    /// from this index hold clones of this handle — compare with
    /// [`SharedReferences::ptr_eq`] to verify storage is shared rather
    /// than copied.
    pub fn shared_references(&self) -> &SharedReferences {
        &self.references
    }

    /// The prefilter's folded-hypervector sketch table over this index's
    /// references (see [`hdoms_prefilter::SketchIndex`]). Pre-populated
    /// when a v3 file carried the persisted sketch section; derived on
    /// the fly (once, then shared) for cold builds and v1/v2 loads — the
    /// derivation samples the same words [`IndexBuilder`] persists, so
    /// the two paths produce identical sketches.
    pub fn sketch_index(&self) -> Arc<SketchIndex> {
        Arc::clone(self.sketches.get_or_init(|| {
            Arc::new(SketchIndex::build(
                self.dim(),
                SKETCH_WORDS,
                self.references.iter().map(|hv| hv.map(|h| h.words())),
            ))
        }))
    }

    /// Shard assignment by dense id (`shard_of[id]` = shard position).
    pub fn shard_assignment(&self) -> Vec<u32> {
        let mut assignment = vec![0u32; self.entry_count];
        for (s, shard) in self.shards.iter().enumerate() {
            for e in &shard.entries {
                assignment[e.id as usize] = s as u32;
            }
        }
        assignment
    }

    // -- residency --------------------------------------------------------

    /// Byte footprint of each shard's stored hypervector words
    /// (`present entries × ceil(dim / 64) × 8`), indexed by shard
    /// position. This is the unit the serve layer budgets residency in:
    /// it is what [`LibraryIndex::release_shard_words`] can hand back to
    /// the OS for a cold shard, and what a touched shard re-occupies.
    pub fn shard_word_bytes(&self) -> Vec<u64> {
        let hv_bytes = (self.dim().div_ceil(64) * 8) as u64;
        self.shards
            .iter()
            .map(|s| {
                let present = s
                    .entries
                    .iter()
                    .filter(|e| self.references.hv(e.id as usize).is_some())
                    .count();
                present as u64 * hv_bytes
            })
            .collect()
    }

    /// Release the resident pages holding `shard`'s hypervector words
    /// back to the OS (mapped indexes only — owned tables cannot drop
    /// pages piecemeal). Returns the bytes actually released: 0 for
    /// owned tables, unknown shard positions, or word spans too small to
    /// cover one whole page. Released words refault from the backing
    /// file on the next touch, so a later search over the shard scores
    /// identically — it just pays the page faults to reload.
    pub fn release_shard_words(&self, shard: usize) -> usize {
        let Some(mapped) = self.references.as_mapped() else {
            return 0;
        };
        let Some(entries) = self.shards.get(shard).map(|s| &s.entries) else {
            return 0;
        };
        // A v2+ shard section lays its word blocks out contiguously, so
        // the shard's words occupy exactly [min offset, max offset +
        // hv_bytes) of the backing buffer.
        let hv_bytes = mapped.hv_bytes() as u64;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in entries {
            if let Some(at) = mapped.offset_of(e.id as usize) {
                lo = lo.min(at);
                hi = hi.max(at + hv_bytes);
            }
        }
        if lo >= hi {
            return 0;
        }
        mapped
            .buffer()
            .release_range(lo as usize, (hi - lo) as usize)
    }

    // -- backend reconstruction ------------------------------------------

    /// Reconstruct the software-exact backend without re-encoding.
    ///
    /// The returned backend **shares** this index's reference table — no
    /// hypervector words are copied, so index + backend together hold one
    /// copy of the encoded library.
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind.
    pub fn to_exact_backend(&self, threads: usize) -> Result<ExactBackend, IndexError> {
        let IndexedBackendKind::Exact(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not exact",
                self.kind.name()
            )));
        };
        let mut config = *config;
        config.threads = threads;
        Ok(ExactBackend::from_shared(config, self.references.clone()))
    }

    /// Reconstruct the HyperOMS-style backend without re-encoding (the
    /// reference table is shared, not cloned).
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind.
    pub fn to_hyperoms_backend(&self, threads: usize) -> Result<HyperOmsBackend, IndexError> {
        let IndexedBackendKind::HyperOms(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not hyperoms",
                self.kind.name()
            )));
        };
        let inner = ExactBackend::from_shared(
            hyperoms_exact_config(config, threads),
            self.references.clone(),
        );
        Ok(HyperOmsBackend::from_exact(inner))
    }

    /// Reconstruct the MLC-RRAM accelerator without re-encoding the
    /// library: the ID item memory is restored from the persisted
    /// differential weight pairs and the stored reference hypervectors
    /// become the search weights directly (shared with this index, not
    /// cloned).
    ///
    /// # Errors
    ///
    /// Fails with [`IndexError::Invalid`] when the index was built for a
    /// different backend kind or the MLC section is missing.
    pub fn to_accelerator(&self, threads: usize) -> Result<OmsAccelerator, IndexError> {
        let IndexedBackendKind::Rram(config) = &self.kind else {
            return Err(IndexError::Invalid(format!(
                "index was built for the {:?} backend, not rram",
                self.kind.name()
            )));
        };
        let Some(mlc) = &self.mlc else {
            return Err(IndexError::Invalid(
                "rram index is missing its MLC programming state".to_owned(),
            ));
        };
        let mut config = *config;
        config.threads = threads;
        let encoder = InMemoryEncoder::from_programmed(
            config.encoder,
            config.crossbar,
            mlc.w_eff.clone(),
            mlc.sigma_delta,
            config.seed,
        );
        Ok(OmsAccelerator::from_parts(
            config,
            encoder,
            self.references.clone(),
            self.build_stats,
        ))
    }

    /// The sharded, shard-parallel search backend for this index's kind.
    ///
    /// Scores are identical to the corresponding flat backend — sharding
    /// only changes iteration order and parallel granularity, and every
    /// per-(query, reference) evaluation is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates the kind mismatch errors of the reconstruction methods.
    pub fn sharded_backend(&self, threads: usize) -> Result<ShardedBackend, IndexError> {
        let assignment = self.shard_assignment();
        let shard_count = self.shards.len();
        match &self.kind {
            IndexedBackendKind::Exact(_) => Ok(ShardedBackend::over_exact(
                self.to_exact_backend(threads)?,
                assignment,
                shard_count,
                threads,
            )),
            IndexedBackendKind::HyperOms(_) => Ok(ShardedBackend::over_hyperoms(
                self.to_hyperoms_backend(threads)?,
                assignment,
                shard_count,
                threads,
            )),
            IndexedBackendKind::Rram(_) => Ok(ShardedBackend::over_accelerator(
                self.to_accelerator(threads)?,
                assignment,
                shard_count,
                threads,
            )),
        }
    }

    // -- incremental append ----------------------------------------------

    /// Append new library spectra to the index, encoding **only** the new
    /// entries. New entries receive the next dense ids (`entry_count..`),
    /// exactly as if the library had contained them at build time, so an
    /// appended index searches identically to a cold rebuild over the
    /// concatenated library.
    ///
    /// Entries land in the shard whose mass range covers them; a shard
    /// grown past twice the configured target splits in half.
    ///
    /// # Panics
    ///
    /// Panics on invalid spectra (same contracts as the build path).
    pub fn append_entries(&mut self, new_entries: &[LibraryEntry], threads: usize) {
        if new_entries.is_empty() {
            return;
        }
        let first_id = self.entry_count as u32;
        let encoded: Vec<(Option<BinaryHypervector>, f64)> = match &self.kind {
            IndexedBackendKind::Exact(config) => {
                let encoder = IdLevelEncoder::new(config.encoder);
                let pre = Preprocessor::new(config.preprocess);
                let mut config = *config;
                config.threads = threads;
                ExactBackend::encode_chunk(&encoder, &pre, &config, new_entries, first_id)
                    .into_iter()
                    .map(|hv| (hv, 0.0))
                    .collect()
            }
            IndexedBackendKind::HyperOms(config) => {
                let exact = hyperoms_exact_config(config, threads);
                let encoder = IdLevelEncoder::new(exact.encoder);
                let pre = Preprocessor::new(exact.preprocess);
                ExactBackend::encode_chunk(&encoder, &pre, &exact, new_entries, first_id)
                    .into_iter()
                    .map(|hv| (hv, 0.0))
                    .collect()
            }
            IndexedBackendKind::Rram(config) => {
                let mlc = self
                    .mlc
                    .as_ref()
                    .expect("rram index carries MLC state by construction");
                let encoder = InMemoryEncoder::from_programmed(
                    config.encoder,
                    config.crossbar,
                    mlc.w_eff.clone(),
                    mlc.sigma_delta,
                    config.seed,
                );
                let pre = Preprocessor::new(config.preprocess);
                OmsAccelerator::encode_chunk(&encoder, &pre, new_entries, first_id, threads)
                    .into_iter()
                    .map(|slot| match slot {
                        Some((hv, ber)) => (Some(hv), ber),
                        None => (None, 0.0),
                    })
                    .collect()
            }
        };

        // Fold the new encodings into the build statistics (exact update:
        // the stored mean is re-weighted by the stored counts).
        let new_stored = encoded.iter().filter(|(hv, _)| hv.is_some()).count();
        let new_ber_sum: f64 = encoded
            .iter()
            .filter(|(hv, _)| hv.is_some())
            .map(|&(_, ber)| ber)
            .sum();
        let old_stored = self.build_stats.references_stored;
        let total_stored = old_stored + new_stored;
        self.build_stats.mean_encode_ber = if total_stored == 0 {
            0.0
        } else {
            (self.build_stats.mean_encode_ber * old_stored as f64 + new_ber_sum)
                / total_stored as f64
        };
        self.build_stats.references_stored = total_stored;
        self.build_stats.references_rejected += new_entries.len() - new_stored;

        // New ids are `entry_count..`, so the flat table simply extends.
        // Appending is copy-on-write: an owned table shared with warm
        // backends (or a mapped table pinned to its file buffer) pays a
        // one-time materialisation; the common case (append offline,
        // then serve) stays zero-copy.
        self.references
            .append(encoded.into_iter().map(|(hv, _)| hv));
        for (offset, entry) in new_entries.iter().enumerate() {
            let id = first_id + offset as u32;
            let indexed = IndexEntry {
                id,
                neutral_mass: entry.spectrum.neutral_mass(),
                precursor_mz: entry.spectrum.precursor_mz,
                precursor_charge: entry.spectrum.precursor_charge,
                is_decoy: entry.is_decoy,
                peptide: entry.peptide.to_string(),
            };
            self.insert_entry(indexed);
        }
        self.entry_count += new_entries.len();
        self.rebuild_by_id();
        // The sketch table covers the old slots only — rebuild on the
        // next prefiltered search (or persist).
        self.sketches = OnceLock::new();
    }

    /// Recompute the dense `id → (mass, decoy)` side table from the
    /// shards and invalidate the lazy peptide cache.
    fn rebuild_by_id(&mut self) {
        let mut by_id = vec![(f64::NAN, false); self.entry_count];
        for shard in &self.shards {
            for e in &shard.entries {
                by_id[e.id as usize] = (e.neutral_mass, e.is_decoy);
            }
        }
        self.by_id = by_id;
        self.peptides = OnceLock::new();
    }

    /// Place one entry into the shard covering its mass, splitting the
    /// shard if it has grown past twice the target size.
    fn insert_entry(&mut self, entry: IndexEntry) {
        // The shard whose upper bound is the first ≥ the entry's mass;
        // masses above every shard land in the last shard.
        let position = self
            .shards
            .partition_point(|s| s.mass_hi().is_some_and(|hi| hi < entry.neutral_mass))
            .min(self.shards.len().saturating_sub(1));
        let shard = &mut self.shards[position];
        let at = shard
            .entries
            .partition_point(|e| (e.neutral_mass, e.id) < (entry.neutral_mass, entry.id));
        shard.entries.insert(at, entry);
        if shard.entries.len() > 2 * self.entries_per_shard {
            let tail = shard.entries.split_off(shard.entries.len() / 2);
            self.shards.insert(position + 1, Shard { entries: tail });
        }
    }

    // -- persistence -----------------------------------------------------

    /// Serialise to the current `HDX` byte format (see [`crate::format`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_version(FORMAT_VERSION)
    }

    /// Serialise with an explicit format version: `3` (the default) adds
    /// the persisted prefilter sketch section; `2` lays shard
    /// hypervector words out 8-aligned for in-place mapped loads without
    /// the sketch section; `1` reproduces the original inline-words
    /// layout for older readers.
    ///
    /// # Panics
    ///
    /// Panics on a version outside the supported range.
    pub fn to_bytes_version(&self, version: u32) -> Vec<u8> {
        assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "unsupported format version {version}"
        );
        let dim = self.dim();
        let mlc_bytes = self.mlc.as_ref().map(format::put_mlc_state);
        let sketch_bytes = (version >= 3).then(|| format::put_sketches(&self.sketch_index()));
        let shard_bytes: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| {
                if version >= 2 {
                    format::put_shard_v2(s, dim, &self.references)
                } else {
                    format::put_shard(s, dim, &self.references)
                }
            })
            .collect();

        let shard_lens: Vec<usize> = shard_bytes.iter().map(Vec::len).collect();
        let header = format::encode_header(
            &self.kind,
            &self.build_stats,
            self.entries_per_shard,
            self.entry_count,
            mlc_bytes.as_ref().map_or(0, Vec::len),
            (version >= 3).then(|| sketch_bytes.as_ref().map_or(0, Vec::len)),
            &shard_lens,
        );

        let mut out = Writer::new();
        out.raw(&MAGIC);
        out.u32(version);
        out.usize(header.len());
        out.raw(&header);
        out.u64(xxh64(&header, CHECKSUM_SEED));
        // In v2+, zero padding brings every section payload to an
        // 8-aligned absolute offset, so the word blocks inside v2 shard
        // payloads land 8-aligned in the file.
        let pad_if_v2 = |out: &mut Writer| {
            if version >= 2 {
                for _ in 0..format::pad_to_8(out.len()) {
                    out.u8(0);
                }
            }
        };
        if let Some(bytes) = &mlc_bytes {
            pad_if_v2(&mut out);
            out.raw(bytes);
            out.u64(xxh64(bytes, CHECKSUM_SEED));
        }
        if let Some(bytes) = &sketch_bytes {
            pad_if_v2(&mut out);
            out.raw(bytes);
            out.u64(xxh64(bytes, CHECKSUM_SEED));
        }
        for bytes in &shard_bytes {
            pad_if_v2(&mut out);
            out.raw(bytes);
            out.u64(xxh64(bytes, CHECKSUM_SEED));
        }
        out.into_bytes()
    }

    /// Write the index to `path` (atomically: a temp file is renamed into
    /// place so a crashed write never leaves a half-index behind).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> Result<(), IndexError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("hdx.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Decode from bytes, verifying magic, version and every section
    /// checksum; shards are checksum-verified and decoded in parallel
    /// over `threads`. Hypervectors are **materialised** regardless of
    /// format version (the copying path; see
    /// [`LibraryIndex::from_buffer`] for the zero-copy one).
    ///
    /// # Errors
    ///
    /// Any structural, checksum or semantic problem aborts the load with
    /// a descriptive [`IndexError`] — a corrupted index never half-loads.
    pub fn from_bytes(bytes: &[u8], threads: usize) -> Result<LibraryIndex, IndexError> {
        let sections = parse_sections(bytes)?;
        let dim = sections.kind.dim();
        let version = sections.version;
        let jobs: Vec<(usize, SectionRange)> =
            sections.shards.iter().copied().enumerate().collect();
        let decoded = par_map(&jobs, threads, |&(i, section)| {
            let payload = section.verify(bytes, &format!("shard {i}"))?;
            if version >= 2 {
                let (shard, offsets) = format::get_shard_v2(payload, dim)?;
                let words = dim.div_ceil(64);
                let hvs = offsets
                    .into_iter()
                    .map(|(id, at)| {
                        (
                            id,
                            format::hypervector_from_bytes(dim, &payload[at..at + words * 8]),
                        )
                    })
                    .collect();
                Ok((shard, hvs))
            } else {
                format::get_shard(payload, dim)
            }
        });
        let mut shards = Vec::with_capacity(decoded.len());
        let mut references = vec![None; sections.entry_count];
        for shard in decoded {
            let (shard, hvs) = shard?;
            for (id, hv) in hvs {
                let slot = references.get_mut(id as usize).ok_or_else(|| {
                    IndexError::Invalid(format!(
                        "entry id {id} outside the declared count {}",
                        sections.entry_count
                    ))
                })?;
                *slot = Some(hv);
            }
            shards.push(shard);
        }
        sections.into_index(shards, SharedReferences::from(references))
    }

    /// **Zero-copy** load: search the index straight out of `buffer`
    /// (typically a whole `.hdx` file read or mapped into one
    /// allocation). For a v2 file the reference table becomes offsets
    /// into `buffer` — no per-reference hypervector is materialised, so
    /// load time and resident memory stop scaling with the hypervector
    /// payload. A v1 file falls back to the copying decoder.
    ///
    /// Searches score identically to [`LibraryIndex::from_bytes`]
    /// loads: both representations expose the same words.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`LibraryIndex::from_bytes`].
    pub fn from_buffer(buffer: WordBuffer, threads: usize) -> Result<LibraryIndex, IndexError> {
        let bytes = buffer.as_bytes();
        let sections = parse_sections(bytes)?;
        if sections.version < 2 {
            return LibraryIndex::from_bytes(bytes, threads);
        }
        let dim = sections.kind.dim();
        let entry_count = sections.entry_count;
        let jobs: Vec<(usize, SectionRange)> =
            sections.shards.iter().copied().enumerate().collect();
        let decoded = par_map(&jobs, threads, |&(i, section)| {
            let payload = section.verify(bytes, &format!("shard {i}"))?;
            let (shard, offsets) = format::get_shard_v2(payload, dim)?;
            // Lift payload-relative word offsets to absolute buffer
            // offsets (the payload itself starts 8-aligned, so absolute
            // offsets stay 8-aligned).
            let absolute: Vec<(u32, u64)> = offsets
                .into_iter()
                .map(|(id, at)| (id, (section.start + at) as u64))
                .collect();
            Ok::<_, IndexError>((shard, absolute))
        });
        let mut shards = Vec::with_capacity(decoded.len());
        let mut offsets = vec![u64::MAX; entry_count];
        for shard in decoded {
            let (shard, absolute) = shard?;
            for (id, at) in absolute {
                let slot = offsets.get_mut(id as usize).ok_or_else(|| {
                    IndexError::Invalid(format!(
                        "entry id {id} outside the declared count {entry_count}"
                    ))
                })?;
                *slot = at;
            }
            shards.push(shard);
        }
        let references = MappedReferences::new(buffer.clone(), dim, offsets);
        sections.into_index(shards, SharedReferences::Mapped(references))
    }

    /// Open `path` for **in-place search**: the file is read once into a
    /// single aligned buffer (or `mmap`ed with the `mmap` feature) and
    /// handed to [`LibraryIndex::from_buffer`].
    ///
    /// # Errors
    ///
    /// Filesystem, format, checksum and semantic failures all surface as
    /// [`IndexError`].
    pub fn open_mapped(path: &Path, threads: usize) -> Result<LibraryIndex, IndexError> {
        #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
        let buffer = WordBuffer::map_file(path)?;
        #[cfg(not(all(unix, target_pointer_width = "64", feature = "mmap")))]
        let buffer = {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            WordBuffer::from_reader(file, len)?
        };
        LibraryIndex::from_buffer(buffer, threads)
    }

    /// Structural sanity: dense unique ids, mass-sorted shards, monotone
    /// shard ranges, MLC state present exactly for the RRAM kind, and a
    /// reference table the size of the declared entry count.
    fn validate(&self) -> Result<(), IndexError> {
        if self.entry_count == 0 || self.shards.is_empty() {
            return Err(IndexError::Invalid(
                "index holds no entries (the builder never produces one)".to_owned(),
            ));
        }
        if self.references.len() != self.entry_count {
            return Err(IndexError::Invalid(format!(
                "reference table holds {} slots for {} declared entries",
                self.references.len(),
                self.entry_count
            )));
        }
        let mut seen = vec![false; self.entry_count];
        let mut previous_hi = f64::NEG_INFINITY;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut previous = (f64::NEG_INFINITY, 0u32);
            for e in &shard.entries {
                let slot = seen.get_mut(e.id as usize).ok_or_else(|| {
                    IndexError::Invalid(format!(
                        "entry id {} outside the declared count {}",
                        e.id, self.entry_count
                    ))
                })?;
                if std::mem::replace(slot, true) {
                    return Err(IndexError::Invalid(format!("duplicate entry id {}", e.id)));
                }
                if (e.neutral_mass, e.id) < previous {
                    return Err(IndexError::Invalid(format!(
                        "shard {s} is not sorted by (mass, id) at entry {}",
                        e.id
                    )));
                }
                previous = (e.neutral_mass, e.id);
            }
            if let (Some(lo), Some(hi)) = (shard.mass_lo(), shard.mass_hi()) {
                if lo < previous_hi {
                    return Err(IndexError::Invalid(format!(
                        "shard {s} mass range overlaps its predecessor"
                    )));
                }
                previous_hi = hi;
            }
        }
        if seen.iter().any(|&present| !present) {
            return Err(IndexError::Invalid(
                "entry ids are not dense over the declared count".to_owned(),
            ));
        }
        match (&self.kind, &self.mlc) {
            (IndexedBackendKind::Rram(_), None) => Err(IndexError::Invalid(
                "rram index is missing its MLC section".to_owned(),
            )),
            (IndexedBackendKind::Exact(_) | IndexedBackendKind::HyperOms(_), Some(_)) => Err(
                IndexError::Invalid("software index carries an MLC section".to_owned()),
            ),
            _ => Ok(()),
        }
    }
}

/// One checksummed section's location inside an index file (the payload
/// is *not* yet verified — verification happens in parallel per shard).
#[derive(Debug, Clone, Copy)]
struct SectionRange {
    /// Absolute byte offset of the payload (8-aligned in v2 files).
    start: usize,
    /// Payload length in bytes.
    len: usize,
    /// The stored XXH64 trailer.
    hash: u64,
}

impl SectionRange {
    /// The payload slice, after verifying its checksum.
    fn verify<'a>(&self, bytes: &'a [u8], section: &str) -> Result<&'a [u8], IndexError> {
        let payload = &bytes[self.start..self.start + self.len];
        if xxh64(payload, CHECKSUM_SEED) != self.hash {
            return Err(IndexError::ChecksumMismatch {
                section: section.to_owned(),
            });
        }
        Ok(payload)
    }
}

/// Everything the container walk establishes before shard payloads are
/// touched: the verified header fields plus where each shard section
/// lives. Shared by the copying ([`LibraryIndex::from_bytes`]) and
/// mapped ([`LibraryIndex::from_buffer`]) loaders, so the two paths
/// cannot drift.
struct ParsedSections {
    version: u32,
    kind: IndexedBackendKind,
    build_stats: BuildStats,
    entries_per_shard: usize,
    entry_count: usize,
    mlc: Option<MlcState>,
    sketches: Option<SketchIndex>,
    shards: Vec<SectionRange>,
}

impl ParsedSections {
    /// Assemble, validate, and finish a [`LibraryIndex`] once a loader
    /// has produced the shards and a reference table.
    fn into_index(
        self,
        shards: Vec<Shard>,
        references: SharedReferences,
    ) -> Result<LibraryIndex, IndexError> {
        let mut index = LibraryIndex {
            kind: self.kind,
            entries_per_shard: self.entries_per_shard,
            entry_count: self.entry_count,
            build_stats: self.build_stats,
            mlc: self.mlc,
            shards,
            references,
            by_id: Vec::new(),
            peptides: OnceLock::new(),
            sketches: OnceLock::new(),
        };
        if let Some(sketches) = self.sketches {
            if sketches.len() != index.entry_count {
                return Err(IndexError::Invalid(format!(
                    "sketch section covers {} slots for {} declared entries",
                    sketches.len(),
                    index.entry_count
                )));
            }
            if sketches.full_words() != index.dim().div_ceil(64) {
                return Err(IndexError::Invalid(format!(
                    "sketch section samples a {}-word hypervector, dimension {} has {}",
                    sketches.full_words(),
                    index.dim(),
                    index.dim().div_ceil(64)
                )));
            }
            index
                .sketches
                .set(Arc::new(sketches))
                .expect("freshly constructed cache is empty");
        }
        index.validate()?;
        index.rebuild_by_id();
        Ok(index)
    }
}

/// Walk the container: magic, version, header (checksum-verified), MLC
/// section (checksum-verified), and the location of every shard section.
/// In v2 files the zero padding preceding each section payload is
/// consumed and must actually be zero — pad bytes sit outside the
/// checksummed payloads, so this is what keeps "any flipped bit fails
/// the load" true.
fn parse_sections(bytes: &[u8]) -> Result<ParsedSections, IndexError> {
    let mut r = Reader::new(bytes);
    let magic = r.raw(8, "magic")?;
    if magic != MAGIC {
        return Err(IndexError::BadMagic);
    }
    let version = r.u32("format_version")?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(IndexError::UnsupportedVersion { found: version });
    }
    let header_len = r.checked_len("header_len", 1)?;
    let header_bytes = r.raw(header_len, "header")?;
    let header_hash = r.u64("header_checksum")?;
    if xxh64(header_bytes, CHECKSUM_SEED) != header_hash {
        return Err(IndexError::ChecksumMismatch {
            section: "header".to_owned(),
        });
    }

    let mut h = Reader::new(header_bytes);
    let kind = format::get_kind(&mut h)?;
    let build_stats = format::get_build_stats(&mut h)?;
    let entries_per_shard = h.u64("header.entries_per_shard")? as usize;
    let entry_count = h.u64("header.entry_count")? as usize;
    // Every entry costs well over one byte on disk, so a declared
    // count beyond the file size is corruption — reject it before any
    // count-sized allocation (validate/rebuild_by_id) can run.
    if entry_count > bytes.len() {
        return Err(IndexError::Invalid(format!(
            "declared entry count {entry_count} exceeds the file size ({} bytes)",
            bytes.len()
        )));
    }
    let mlc_len = h.u64("header.mlc_len")? as usize;
    let sketch_len = if version >= 3 {
        h.u64("header.sketch_len")? as usize
    } else {
        0
    };
    let shard_count = h.checked_len("header.shard_count", 8)?;
    let mut shard_lens = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shard_lens.push(h.u64("header.shard_len")? as usize);
    }
    h.expect_end("header")?;
    if entries_per_shard == 0 {
        return Err(IndexError::Invalid("entries_per_shard is zero".to_owned()));
    }

    let skip_pad = |r: &mut Reader<'_>| -> Result<(), IndexError> {
        if version >= 2 {
            let pad = r.raw(format::pad_to_8(bytes.len() - r.remaining()), "section_pad")?;
            if pad.iter().any(|&b| b != 0) {
                return Err(IndexError::Invalid(
                    "nonzero alignment padding between sections".to_owned(),
                ));
            }
        }
        Ok(())
    };

    let mlc = if mlc_len == 0 {
        None
    } else {
        skip_pad(&mut r)?;
        let payload = r.raw(mlc_len, "mlc_section")?;
        let hash = r.u64("mlc_checksum")?;
        if xxh64(payload, CHECKSUM_SEED) != hash {
            return Err(IndexError::ChecksumMismatch {
                section: "mlc".to_owned(),
            });
        }
        Some(format::get_mlc_state(payload)?)
    };

    let sketches = if sketch_len == 0 {
        None
    } else {
        skip_pad(&mut r)?;
        let payload = r.raw(sketch_len, "sketch_section")?;
        let hash = r.u64("sketch_checksum")?;
        if xxh64(payload, CHECKSUM_SEED) != hash {
            return Err(IndexError::ChecksumMismatch {
                section: "sketch".to_owned(),
            });
        }
        Some(format::get_sketches(payload)?)
    };

    let mut shards = Vec::with_capacity(shard_count);
    for &len in &shard_lens {
        skip_pad(&mut r)?;
        let start = bytes.len() - r.remaining();
        let _payload = r.raw(len, "shard_section")?;
        let hash = r.u64("shard_checksum")?;
        shards.push(SectionRange { start, len, hash });
    }
    r.expect_end("index file")?;

    Ok(ParsedSections {
        version,
        kind,
        build_stats,
        entries_per_shard,
        entry_count,
        mlc,
        sketches,
        shards,
    })
}

/// Reads `HDX` index files.
///
/// ```
/// use hdoms_index::{IndexBuilder, IndexConfig, IndexReader, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
/// let mut config = IndexConfig { threads: 2, ..IndexConfig::default() };
/// if let IndexedBackendKind::Exact(exact) = &mut config.kind {
///     exact.encoder.dim = 512;
/// }
/// let index = IndexBuilder::new(config).from_library(&workload.library);
///
/// let path = std::env::temp_dir().join(format!("hdoms-reader-doc-{}.hdx", std::process::id()));
/// index.write(&path).unwrap();
/// let loaded = IndexReader::with_threads(2).open_with(&path).unwrap();
/// assert_eq!(loaded, index);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IndexReader {
    threads: usize,
}

impl Default for IndexReader {
    fn default() -> IndexReader {
        IndexReader {
            threads: hdoms_hdc::parallel::default_threads(),
        }
    }
}

impl IndexReader {
    /// A reader decoding shards over `threads` workers.
    pub fn with_threads(threads: usize) -> IndexReader {
        IndexReader {
            threads: threads.max(1),
        }
    }

    /// Load and validate an index from `path`.
    ///
    /// The file is read in one streamed pass and shard sections are
    /// checksum-verified and decoded in parallel; hypervector bit words
    /// are filled straight from the file buffer into each hypervector,
    /// with no intermediate per-entry buffers.
    ///
    /// # Errors
    ///
    /// Filesystem, format, checksum and semantic failures all surface as
    /// [`IndexError`].
    pub fn open(path: &Path) -> Result<LibraryIndex, IndexError> {
        IndexReader::default().open_with(path)
    }

    /// Like [`IndexReader::open`] with this reader's thread setting.
    ///
    /// # Errors
    ///
    /// See [`IndexReader::open`].
    pub fn open_with(&self, path: &Path) -> Result<LibraryIndex, IndexError> {
        let bytes = std::fs::read(path)?;
        LibraryIndex::from_bytes(&bytes, self.threads)
    }

    /// Load an index for **in-place search** (see
    /// [`LibraryIndex::open_mapped`]): a v2 file is searched straight
    /// out of its single backing buffer with no per-reference
    /// materialisation; a v1 file falls back to the copying path.
    ///
    /// # Errors
    ///
    /// See [`IndexReader::open`].
    pub fn open_mapped(path: &Path) -> Result<LibraryIndex, IndexError> {
        IndexReader::default().open_mapped_with(path)
    }

    /// Like [`IndexReader::open_mapped`] with this reader's thread
    /// setting.
    ///
    /// # Errors
    ///
    /// See [`IndexReader::open`].
    pub fn open_mapped_with(&self, path: &Path) -> Result<LibraryIndex, IndexError> {
        LibraryIndex::open_mapped(path, self.threads)
    }
}

impl ReferenceCatalog for LibraryIndex {
    fn reference_count(&self) -> usize {
        self.entry_count
    }

    fn reference_mass(&self, id: u32) -> Option<f64> {
        self.by_id.get(id as usize).map(|&(mass, _)| mass)
    }

    fn reference_is_decoy(&self, id: u32) -> Option<bool> {
        self.by_id.get(id as usize).map(|&(_, decoy)| decoy)
    }

    fn candidate_index(&self) -> CandidateIndex {
        CandidateIndex::from_masses(self.entries().map(|e| (e.neutral_mass, e.id)))
    }
}

/// The exact-backend configuration HyperOMS uses (mirrors
/// `HyperOmsBackend::build`).
pub(crate) fn hyperoms_exact_config(config: &HyperOmsConfig, threads: usize) -> ExactBackendConfig {
    ExactBackendConfig {
        preprocess: config.preprocess,
        encoder: EncoderConfig {
            dim: config.dim,
            q_levels: config.q_levels,
            id_precision: IdPrecision::Bits1,
            level_style: LevelStyle::Random,
            num_bins: config.preprocess.num_bins(),
            seed: config.seed,
        },
        threads,
        encode_ber: 0.0,
        storage_ber: 0.0,
        noise_seed: 0,
    }
}
