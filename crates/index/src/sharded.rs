//! Shard-parallel open-modification search over an indexed library.
//!
//! An open precursor window reaches only a contiguous band of reference
//! masses, so a query's candidates fall into a handful of consecutive
//! precursor-mass shards. [`ShardedBackend`] exploits that twice:
//!
//! * **fan-out** — each query's candidate list is partitioned into its
//!   shard runs (one linear pass: candidates arrive mass-sorted, shards
//!   are mass-contiguous, so shard ids form non-decreasing runs), and
//!   only shards overlapping the precursor window are ever touched;
//! * **parallelism** — with many queries in flight the batch parallelises
//!   over queries; with few queries each query parallelises over its
//!   shard runs, so even a single interactive query saturates the
//!   workers.
//!
//! Scores are bit-identical to the flat backends: every per-(query,
//! reference) evaluation is deterministic and the merge applies the same
//! `(score desc, id asc)` tie-break the flat scan applies.

use hdoms_baselines::hyperoms::HyperOmsBackend;
use hdoms_core::accelerator::OmsAccelerator;
use hdoms_hdc::parallel::par_map;
use hdoms_hdc::BinaryHypervector;
use hdoms_ms::preprocess::BinnedSpectrum;
use hdoms_obs::metrics::{Counter, Histogram, Registry};
use hdoms_oms::search::{ExactBackend, SearchHit, SimilarityBackend};
use hdoms_prefilter::{PrefilterStats, SketchIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A backend whose per-query evaluation splits into "encode once" and
/// "score a candidate subset", which is what shard fan-out needs (the flat
/// [`SimilarityBackend`] entry point re-encodes per call).
#[allow(clippy::large_enum_variant)] // one instance per backend, never collected
enum Scorer {
    Exact(ExactBackend),
    HyperOms(HyperOmsBackend),
    Rram(OmsAccelerator),
}

impl Scorer {
    fn name(&self) -> String {
        match self {
            Scorer::Exact(b) => b.name(),
            Scorer::HyperOms(b) => b.name(),
            Scorer::Rram(b) => b.name(),
        }
    }

    /// Encode one query (with the backend's configured error injection).
    fn prepare(&self, binned: &BinnedSpectrum) -> BinaryHypervector {
        match self {
            Scorer::Exact(b) => b.encode_query(binned),
            Scorer::HyperOms(b) => b.inner().encode_query(binned),
            Scorer::Rram(b) => b.encoder().encode(binned),
        }
    }

    /// Best hit among `candidates` for an already-encoded query.
    fn best(
        &self,
        query_hv: &BinaryHypervector,
        query_id: u32,
        candidates: &[u32],
    ) -> Option<SearchHit> {
        match self {
            Scorer::Exact(b) => exact_best(b, query_hv, candidates),
            Scorer::HyperOms(b) => exact_best(b.inner(), query_hv, candidates),
            Scorer::Rram(b) => b
                .search_engine()
                .search_best(query_hv, query_id, candidates)
                .map(|(reference, score)| SearchHit { reference, score }),
        }
    }
}

/// The flat exact scan over a candidate subset: the shared kernel-tiled
/// scan (same scoring and tie-break as `ExactBackend::search_batch`).
fn exact_best(
    backend: &ExactBackend,
    query_hv: &BinaryHypervector,
    candidates: &[u32],
) -> Option<SearchHit> {
    hdoms_oms::search::best_hit(
        backend.shared_references(),
        backend.encoder().config().dim,
        query_hv,
        candidates,
    )
}

/// Wall-clock spent scoring one shard during a traced batch search.
///
/// Produced by [`ShardedBackend::search_batch_traced`], sorted by shard
/// position, covering only shards the batch actually visited. `ms` sums
/// every scoring visit the batch paid the shard (across queries and
/// worker threads — on a parallel batch the per-shard figures can sum
/// to more than the batch's wall-clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardTiming {
    /// Shard position (as in [`crate::LibraryIndex::shards`]).
    pub shard: u32,
    /// Scoring visits the batch paid this shard.
    pub visits: u64,
    /// Wall-clock summed over those visits, in milliseconds.
    pub ms: f64,
}

/// Per-shard accumulators for one traced batch: plain atomics so the
/// scoring closures can record from any worker thread without locks.
struct ShardClock {
    ns: Vec<AtomicU64>,
    visits: Vec<AtomicU64>,
}

impl ShardClock {
    fn new(shard_count: usize) -> ShardClock {
        ShardClock {
            ns: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            visits: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, shard: usize, ns: u64) {
        self.ns[shard].fetch_add(ns, Ordering::Relaxed);
        self.visits[shard].fetch_add(1, Ordering::Relaxed);
    }

    fn timings(&self) -> Vec<ShardTiming> {
        (0..self.ns.len())
            .filter_map(|shard| {
                let visits = self.visits[shard].load(Ordering::Relaxed);
                (visits > 0).then(|| ShardTiming {
                    shard: shard as u32,
                    visits,
                    ms: self.ns[shard].load(Ordering::Relaxed) as f64 / 1e6,
                })
            })
            .collect()
    }
}

/// Registry handles the backend records into during traced searches.
struct BackendMetrics {
    score_ms: Arc<Histogram>,
    visits: Arc<Counter>,
}

/// Batch-wide cascade accumulators: plain atomics so the per-query
/// narrowing closures can record from any worker thread without locks
/// (sketch wall-clock is summed in integer nanoseconds and converted
/// once).
struct PrefilterClock {
    pre: AtomicU64,
    post: AtomicU64,
    ns: AtomicU64,
}

impl PrefilterClock {
    fn new() -> PrefilterClock {
        PrefilterClock {
            pre: AtomicU64::new(0),
            post: AtomicU64::new(0),
            ns: AtomicU64::new(0),
        }
    }

    fn record(&self, pre: u64, post: u64, ns: u64) {
        self.pre.fetch_add(pre, Ordering::Relaxed);
        self.post.fetch_add(post, Ordering::Relaxed);
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn stats(&self) -> PrefilterStats {
        PrefilterStats {
            candidates_pre: self.pre.load(Ordering::Relaxed),
            candidates_post: self.post.load(Ordering::Relaxed),
            sketch_ms: self.ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Merge per-shard best hits with the flat scan's tie-break.
fn merge_hits(hits: impl IntoIterator<Item = Option<SearchHit>>) -> Option<SearchHit> {
    let mut best: Option<SearchHit> = None;
    for hit in hits.into_iter().flatten() {
        let better = match &best {
            None => true,
            Some(b) => hit.score > b.score || (hit.score == b.score && hit.reference < b.reference),
        };
        if better {
            best = Some(hit);
        }
    }
    best
}

/// Sharded, shard-parallel search backend over an indexed library.
///
/// Construct through
/// [`LibraryIndex::sharded_backend`](crate::LibraryIndex::sharded_backend);
/// the backend shares the index's reference-hypervector table rather
/// than cloning it, so index + backend hold one copy of the encoded
/// library.
///
/// ```
/// use hdoms_index::{IndexBuilder, IndexConfig, IndexedBackendKind};
/// use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
/// use hdoms_oms::pipeline::{OmsPipeline, PipelineConfig};
///
/// let workload = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 5);
/// let mut config = IndexConfig {
///     entries_per_shard: 64,
///     threads: 2,
///     ..IndexConfig::default()
/// };
/// if let IndexedBackendKind::Exact(exact) = &mut config.kind {
///     exact.encoder.dim = 512;
/// }
/// let index = IndexBuilder::new(config).from_library(&workload.library);
///
/// let backend = index.sharded_backend(2).unwrap();
/// assert_eq!(backend.shard_count(), index.shards().len());
///
/// let mut pipeline_config = PipelineConfig::fast_test();
/// pipeline_config.exact.encoder.dim = 512;
/// let outcome = OmsPipeline::new(pipeline_config)
///     .run_catalog(&workload.queries, &index, &backend);
/// assert!(!outcome.psms.is_empty());
/// ```
pub struct ShardedBackend {
    scorer: Scorer,
    /// Dense id → shard position.
    shard_of: Vec<u32>,
    shard_count: usize,
    threads: usize,
    metrics: Option<BackendMetrics>,
}

impl ShardedBackend {
    pub(crate) fn over_exact(
        backend: ExactBackend,
        shard_of: Vec<u32>,
        shard_count: usize,
        threads: usize,
    ) -> ShardedBackend {
        ShardedBackend {
            scorer: Scorer::Exact(backend),
            shard_of,
            shard_count,
            threads: threads.max(1),
            metrics: None,
        }
    }

    pub(crate) fn over_hyperoms(
        backend: HyperOmsBackend,
        shard_of: Vec<u32>,
        shard_count: usize,
        threads: usize,
    ) -> ShardedBackend {
        ShardedBackend {
            scorer: Scorer::HyperOms(backend),
            shard_of,
            shard_count,
            threads: threads.max(1),
            metrics: None,
        }
    }

    pub(crate) fn over_accelerator(
        backend: OmsAccelerator,
        shard_of: Vec<u32>,
        shard_count: usize,
        threads: usize,
    ) -> ShardedBackend {
        ShardedBackend {
            scorer: Scorer::Rram(backend),
            shard_of,
            shard_count,
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Number of shards the library is split into.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Register this backend's series with a metrics [`Registry`]:
    /// `hdoms_shard_score_ms` (a histogram of per-shard-visit scoring
    /// wall-clock) and `hdoms_shard_visits_total`. Both are recorded
    /// only on the traced path ([`ShardedBackend::search_batch_traced`])
    /// — the untraced entry points stay timer-free.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(BackendMetrics {
            score_ms: registry.histogram(
                "hdoms_shard_score_ms",
                "Wall-clock of one shard-scoring visit (one query x one shard run)",
            ),
            visits: registry.counter(
                "hdoms_shard_visits_total",
                "Shard-scoring visits performed by traced batch searches",
            ),
        });
    }

    /// How many shard visits a batch of candidate lists costs: the sum
    /// over queries of the number of shard runs each query's (mass-sorted)
    /// candidate list spans. This is the "shards touched" figure the serve
    /// layer reports per batch — it is a pure accounting walk and performs
    /// no scoring.
    pub fn shards_touched(&self, candidates: &[Vec<u32>]) -> usize {
        candidates.iter().map(|c| self.shard_runs(c).len()).sum()
    }

    /// Partition a mass-sorted candidate list into its shard runs.
    ///
    /// Candidates belonging to shards the precursor window does not reach
    /// simply do not occur in the list, so the returned runs are exactly
    /// the overlapping shards.
    fn shard_runs<'c>(&self, candidates: &'c [u32]) -> Vec<&'c [u32]> {
        let mut runs = Vec::new();
        let mut start = 0usize;
        while start < candidates.len() {
            let shard = self.shard_of[candidates[start] as usize];
            let mut end = start + 1;
            while end < candidates.len() && self.shard_of[candidates[end] as usize] == shard {
                end += 1;
            }
            runs.push(&candidates[start..end]);
            start = end;
        }
        runs
    }

    /// Evaluate one query: encode once, score each shard run, merge.
    ///
    /// `parallel_shards` (> 1) switches the per-shard scoring onto that
    /// many worker threads (used when the batch itself is too small to
    /// parallelise over queries).
    fn search_one(
        &self,
        binned: &BinnedSpectrum,
        candidates: &[u32],
        parallel_shards: usize,
    ) -> Option<SearchHit> {
        self.search_one_clocked(binned, candidates, parallel_shards, None, None)
    }

    /// [`ShardedBackend::search_one`], optionally timing each shard
    /// run into `clock` (and the attached registry series), and
    /// optionally narrowing the candidate list through the prefilter's
    /// sketch stage first. The untimed, unfiltered call compiles down
    /// to the pre-tracing code path: no clock reads or sketch work
    /// happen unless the respective option is passed.
    fn search_one_clocked(
        &self,
        binned: &BinnedSpectrum,
        candidates: &[u32],
        parallel_shards: usize,
        clock: Option<&ShardClock>,
        prefilter: Option<(&SketchIndex, usize, &PrefilterClock)>,
    ) -> Option<SearchHit> {
        if candidates.is_empty() {
            return None;
        }
        let query_hv = self.scorer.prepare(binned);
        // The sketch stage sits between encode and the shard walk: the
        // narrowed list keeps the original (ascending-mass) candidate
        // order, so the run partition below stays valid.
        let narrowed: Vec<u32>;
        let candidates = match prefilter {
            None => candidates,
            Some((sketch, k, pclock)) => {
                let start = Instant::now();
                let signature = sketch.sketch_query(query_hv.words());
                narrowed = sketch.narrow(&signature, candidates, k);
                pclock.record(
                    candidates.len() as u64,
                    narrowed.len() as u64,
                    start.elapsed().as_nanos() as u64,
                );
                &narrowed
            }
        };
        let runs = self.shard_runs(candidates);
        let score = |run: &[u32]| -> Option<SearchHit> {
            let Some(clock) = clock else {
                return self.scorer.best(&query_hv, binned.id, run);
            };
            let start = Instant::now();
            let hit = self.scorer.best(&query_hv, binned.id, run);
            let ns = start.elapsed().as_nanos() as u64;
            clock.record(self.shard_of[run[0] as usize] as usize, ns);
            if let Some(metrics) = &self.metrics {
                metrics.score_ms.record_ms(ns as f64 / 1e6);
                metrics.visits.inc();
            }
            hit
        };
        if parallel_shards > 1 && runs.len() > 1 {
            let hits = par_map(&runs, parallel_shards, |run| score(run));
            merge_hits(hits)
        } else {
            merge_hits(runs.into_iter().map(score))
        }
    }

    /// [`SimilarityBackend::search_batch`] with an explicit worker
    /// budget: the batch uses at most `workers` threads, whatever the
    /// backend was constructed with. This is the entry point the serve
    /// layer's scheduler drives — a granted batch must not oversubscribe
    /// the machine beyond its share — and `workers == 1` runs entirely
    /// inline on the calling thread.
    ///
    /// Scores are bit-identical across worker budgets (every evaluation
    /// is deterministic and order-preserving), so a budgeted search
    /// renders the same PSM table a full-parallelism search renders.
    ///
    /// # Panics
    ///
    /// Panics when `queries` and `candidates` do not pair up.
    pub fn search_batch_with(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
        workers: usize,
    ) -> Vec<Option<SearchHit>> {
        let workers = workers.max(1);
        assert_eq!(
            queries.len(),
            candidates.len(),
            "queries and candidate lists must pair up"
        );
        if queries.len() >= workers {
            // Enough queries to keep every worker busy: parallelise over
            // queries, keep each query's shard walk sequential (better
            // locality, no nested parallelism).
            let jobs: Vec<usize> = (0..queries.len()).collect();
            par_map(&jobs, workers, |&i| {
                self.search_one(&queries[i], &candidates[i], 1)
            })
        } else {
            // Few queries (interactive / tail of a batch): go wide over
            // each query's shards instead.
            queries
                .iter()
                .zip(candidates)
                .map(|(q, c)| self.search_one(q, c, workers))
                .collect()
        }
    }

    /// [`ShardedBackend::search_batch_with`], additionally timing every
    /// shard-scoring visit: returns the identical hits **plus** one
    /// [`ShardTiming`] per visited shard (sorted by shard position).
    /// This is the entry point the engine's span tracing drives; the
    /// timing accumulators are atomics, so the figures are exact
    /// whichever way the batch was parallelised, and the hits are
    /// byte-identical to the untraced path (timing wraps the scoring
    /// calls, it never reorders or alters them).
    ///
    /// `workers` of `None` uses the backend's configured parallelism
    /// (the unscheduled paths); `Some(n)` caps the batch at `n` worker
    /// threads (the serve scheduler's grants).
    ///
    /// # Panics
    ///
    /// Panics when `queries` and `candidates` do not pair up.
    pub fn search_batch_traced(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
        workers: Option<usize>,
    ) -> (Vec<Option<SearchHit>>, Vec<ShardTiming>) {
        let (hits, timings, _) = self.search_batch_prefiltered(queries, candidates, workers, None);
        (hits, timings)
    }

    /// [`ShardedBackend::search_batch_traced`] with the two-stage
    /// cascade: when `prefilter` is `Some((sketch, k))`, every query's
    /// candidate list is narrowed to its top-`k` sketch scorers
    /// ([`SketchIndex::narrow`]) between the one-time query encode and
    /// the shard walk, and the returned [`PrefilterStats`] account the
    /// pre/post candidate counts plus the sketch stage's summed
    /// wall-clock.
    ///
    /// With `prefilter` of `None` the scan, hits and timings are
    /// byte-identical to [`ShardedBackend::search_batch_traced`] and the
    /// stats come back zeroed (the caller reports the unfiltered
    /// candidate total for both stage counts). With `k` at or above
    /// every window size the narrowed lists equal the input lists, so
    /// hits, timings *and* per-stage counts match the unfiltered scan
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics when `queries` and `candidates` do not pair up, or the
    /// sketch does not cover the backend's reference ids.
    pub fn search_batch_prefiltered(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
        workers: Option<usize>,
        prefilter: Option<(&SketchIndex, usize)>,
    ) -> (Vec<Option<SearchHit>>, Vec<ShardTiming>, PrefilterStats) {
        let group_of = vec![0u32; queries.len()];
        let (hits, mut timings, mut stats) =
            self.search_batch_grouped(queries, candidates, workers, prefilter, &group_of, 1);
        (
            hits,
            timings.pop().expect("one group was requested"),
            stats.pop().expect("one group was requested"),
        )
    }

    /// [`ShardedBackend::search_batch_prefiltered`] over a **merged**
    /// batch of several request groups: query `i` belongs to group
    /// `group_of[i]` (`0..group_count`), and the per-shard timings and
    /// prefilter stats come back **per group**, exactly as if each
    /// group had been searched alone — the clocks are indexed by group,
    /// so the accounting is precise even when the prefilter narrows
    /// different groups by different amounts.
    ///
    /// The hits come back in input order. Scoring is per-query and
    /// independent of batch composition, so they are bit-identical to
    /// searching each group separately; only the accounting needs the
    /// group map. This is the cross-request coalescing seam: the serve
    /// layer merges concurrent interactive requests into one batch here
    /// and splits receipts back out per request.
    ///
    /// # Panics
    ///
    /// Panics when `queries`, `candidates` and `group_of` do not pair
    /// up, a group id is at or beyond `group_count`, or the sketch does
    /// not cover the backend's reference ids.
    pub fn search_batch_grouped(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
        workers: Option<usize>,
        prefilter: Option<(&SketchIndex, usize)>,
        group_of: &[u32],
        group_count: usize,
    ) -> (
        Vec<Option<SearchHit>>,
        Vec<Vec<ShardTiming>>,
        Vec<PrefilterStats>,
    ) {
        let workers = workers.unwrap_or(self.threads).max(1);
        assert_eq!(
            queries.len(),
            candidates.len(),
            "queries and candidate lists must pair up"
        );
        assert_eq!(
            queries.len(),
            group_of.len(),
            "queries and group ids must pair up"
        );
        assert!(
            group_of.iter().all(|&g| (g as usize) < group_count),
            "group id out of range"
        );
        let clocks: Vec<ShardClock> = (0..group_count)
            .map(|_| ShardClock::new(self.shard_count))
            .collect();
        let pclocks: Vec<PrefilterClock> =
            (0..group_count).map(|_| PrefilterClock::new()).collect();
        let search = |i: usize, parallel_shards: usize| {
            let group = group_of[i] as usize;
            let narrowing = prefilter.map(|(sketch, k)| (sketch, k, &pclocks[group]));
            self.search_one_clocked(
                &queries[i],
                &candidates[i],
                parallel_shards,
                Some(&clocks[group]),
                narrowing,
            )
        };
        let hits = if queries.len() >= workers {
            let jobs: Vec<usize> = (0..queries.len()).collect();
            par_map(&jobs, workers, |&i| search(i, 1))
        } else {
            (0..queries.len()).map(|i| search(i, workers)).collect()
        };
        (
            hits,
            clocks.iter().map(ShardClock::timings).collect(),
            pclocks.iter().map(PrefilterClock::stats).collect(),
        )
    }
}

impl SimilarityBackend for ShardedBackend {
    fn name(&self) -> String {
        format!(
            "sharded({}, {} shards)",
            self.scorer.name(),
            self.shard_count
        )
    }

    fn search_batch(
        &self,
        queries: &[BinnedSpectrum],
        candidates: &[Vec<u32>],
    ) -> Vec<Option<SearchHit>> {
        self.search_batch_with(queries, candidates, self.threads)
    }
}
