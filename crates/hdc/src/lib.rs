//! Hyperdimensional computing (HD) substrate for the HD-OMS accelerator.
//!
//! HD encodes information into very long vectors ("hypervectors", D in the
//! thousands) where information is distributed across all dimensions —
//! which is what makes the paper's design robust to the 10 %-level bit
//! errors of multi-level-cell RRAM (§4.1.3).
//!
//! This crate provides:
//!
//! * bit-packed binary hypervectors with fast Hamming/dot operations
//!   ([`hv`], [`similarity`]),
//! * multi-bit hypervectors with the 1/2/3-bit ID alphabets of §4.2.2
//!   ([`multibit`]),
//! * the ID and level item memories of ID-Level encoding, including the
//!   *chunked* level hypervectors of §4.2.1 ([`item_memory`]),
//! * the ID-Level encoder itself, Eq. (1) of the paper ([`encoder`]),
//! * runtime-dispatched SIMD distance kernels (AVX2 / AVX-512
//!   `vpopcntdq` with a portable fallback) plus the query-blocked batch
//!   kernel every scan tiles through ([`kernels`]),
//! * exact top-k Hamming search with thread-parallel batching ([`search`]),
//! * bit-error injection for robustness studies ([`corrupt`]), and
//! * a tiny scoped-thread parallel-map helper shared by the search stacks
//!   ([`parallel`]).
//!
//! # Example
//!
//! ```
//! use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
//! use hdoms_hdc::similarity::normalized_similarity;
//! use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
//! use hdoms_ms::preprocess::Preprocessor;
//!
//! let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 1);
//! let pre = Preprocessor::default();
//! let enc = IdLevelEncoder::new(EncoderConfig {
//!     dim: 2048,
//!     ..EncoderConfig::default()
//! });
//! let a = enc.encode(&pre.run(&w.queries[0]).unwrap());
//! let b = enc.encode(&pre.run(&w.queries[1]).unwrap());
//! let sim = normalized_similarity(&a, &b);
//! assert!(sim.abs() < 0.5, "unrelated spectra are near-orthogonal");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod buffer;
pub mod corrupt;
pub mod encoder;
pub mod hv;
pub mod item_memory;
pub mod kernels;
pub mod multibit;
pub mod ops;
pub mod parallel;
pub mod search;
pub mod similarity;

pub use buffer::WordBuffer;
pub use encoder::{EncoderConfig, IdLevelEncoder};
pub use hv::{BinaryHypervector, HvRef, HvView};
pub use item_memory::LevelStyle;
pub use kernels::{KernelDispatch, KernelKind};
pub use multibit::{IdPrecision, MultiBitHypervector};
pub use similarity::{hamming_distance, normalized_similarity};
