//! Hamming similarity between binary hypervectors (§3.3).
//!
//! Because hypervectors are binary, the cosine similarity of the underlying
//! bipolar vectors reduces to a Hamming computation: for `a, b ∈ {-1,+1}^D`
//! the dot product is `D - 2·hamming(a, b)`, computable with XOR +
//! popcount over the packed words.
//!
//! The XOR + popcount itself runs on the process-wide active kernel
//! ([`crate::kernels::active`]) — scalar, AVX2, or AVX-512 depending on
//! the CPU and the `HDOMS_KERNEL` override. Kernel choice never changes
//! a result, only how fast it arrives.

use crate::hv::HvView;
use crate::kernels;

/// Hamming distance: the number of dimensions where `a` and `b` differ.
///
/// Generic over [`HvView`], so it scans owned
/// [`BinaryHypervector`](crate::hv::BinaryHypervector)s and borrowed
/// [`HvRef`](crate::hv::HvRef) views (e.g. words living inside a mapped
/// index buffer) with the same code.
///
/// # Panics
///
/// Panics on dimension mismatch.
///
/// ```
/// use hdoms_hdc::hv::BinaryHypervector;
/// use hdoms_hdc::similarity::hamming_distance;
/// let mut a = BinaryHypervector::zeros(128);
/// let b = BinaryHypervector::zeros(128);
/// a.flip(3);
/// a.flip(90);
/// assert_eq!(hamming_distance(&a, &b), 2);
/// assert_eq!(hamming_distance(&a.as_view(), &b), 2);
/// ```
#[inline]
pub fn hamming_distance<A, B>(a: &A, b: &B) -> u32
where
    A: HvView + ?Sized,
    B: HvView + ?Sized,
{
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    kernels::active().hamming_words(a.dim(), a.words(), b.words())
}

/// Bipolar dot product `⟨a, b⟩ = D - 2·hamming(a, b)`.
///
/// This is the integer score the in-memory search approximates with analog
/// MACs; exact backends use it directly.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[inline]
pub fn dot<A, B>(a: &A, b: &B) -> i64
where
    A: HvView + ?Sized,
    B: HvView + ?Sized,
{
    let d = a.dim() as i64;
    d - 2 * i64::from(hamming_distance(a, b))
}

/// Normalised similarity in `[-1, 1]`: `dot / D`. `1` means identical,
/// `0` orthogonal (expected for unrelated random hypervectors), `-1`
/// antipodal.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[inline]
pub fn normalized_similarity<A, B>(a: &A, b: &B) -> f64
where
    A: HvView + ?Sized,
    B: HvView + ?Sized,
{
    dot(a, b) as f64 / a.dim() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hv::BinaryHypervector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_vectors() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BinaryHypervector::random(&mut rng, 1000);
        assert_eq!(hamming_distance(&a, &a), 0);
        assert_eq!(dot(&a, &a), 1000);
        assert!((normalized_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antipodal_vectors() {
        let mut a = BinaryHypervector::zeros(100);
        let mut b = BinaryHypervector::zeros(100);
        for i in 0..100 {
            a.set(i, true);
            b.set(i, false);
        }
        assert_eq!(hamming_distance(&a, &b), 100);
        assert_eq!(dot(&a, &b), -100);
    }

    #[test]
    fn random_vectors_near_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BinaryHypervector::random(&mut rng, 8192);
        let b = BinaryHypervector::random(&mut rng, 8192);
        let s = normalized_similarity(&a, &b);
        // Standard deviation is 1/sqrt(D) ≈ 0.011; 6 sigma bound.
        assert!(s.abs() < 0.07, "similarity {s}");
    }

    #[test]
    fn symmetry() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BinaryHypervector::random(&mut rng, 333);
        let b = BinaryHypervector::random(&mut rng, 333);
        assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let a = BinaryHypervector::random(&mut rng, 200);
            let b = BinaryHypervector::random(&mut rng, 200);
            let c = BinaryHypervector::random(&mut rng, 200);
            assert!(
                hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c)
            );
        }
    }

    #[test]
    fn dot_consistent_with_naive_bipolar() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BinaryHypervector::random(&mut rng, 129);
        let b = BinaryHypervector::random(&mut rng, 129);
        let naive: i64 = a
            .to_bipolar()
            .iter()
            .zip(b.to_bipolar().iter())
            .map(|(&x, &y)| i64::from(x) * i64::from(y))
            .sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = BinaryHypervector::zeros(10);
        let b = BinaryHypervector::zeros(11);
        let _ = hamming_distance(&a, &b);
    }
}
