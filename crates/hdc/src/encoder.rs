//! The ID-Level encoder (Eq. (1) of the paper).
//!
//! A preprocessed spectrum — a sparse set of (m/z bin, intensity) pairs —
//! is encoded into a binary hypervector:
//!
//! ```text
//! h = Sign( Σ_{i ∈ S} ID_i ⊗ LV_i )
//! ```
//!
//! where `ID_i` is the position hypervector of the peak's m/z bin and
//! `LV_i` the level hypervector of its quantised intensity. The encoder
//! exposes the raw accumulator alongside the signed result because the
//! RRAM backend needs to inject analog error *before* the sign
//! quantisation (§4.2.3).

use crate::hv::BinaryHypervector;
use crate::item_memory::{IdMemory, LevelMemory, LevelStyle};
use crate::multibit::IdPrecision;
use crate::parallel::par_map;
use hdoms_ms::preprocess::{BinnedSpectrum, PreprocessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Hypervector dimension `D`. The paper uses 8192 for its quality
    /// results and sweeps 1024–8192 in Fig. 13.
    pub dim: usize,
    /// Number of intensity quantisation levels `Q` (16–32 in the paper;
    /// the choice "does not significantly impact the results").
    pub q_levels: usize,
    /// ID component precision (§4.2.2); the paper's headline setting is
    /// 3-bit.
    pub id_precision: IdPrecision,
    /// Level hypervector style; `Chunked` enables the MVM-style in-memory
    /// encoding of §4.2.1.
    pub level_style: LevelStyle,
    /// Number of m/z bins (the ID memory size). Must cover every bin the
    /// preprocessor can emit.
    pub num_bins: usize,
    /// Seed for the item memories and the sign tie-break vector.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> EncoderConfig {
        EncoderConfig {
            dim: 8192,
            q_levels: 32,
            id_precision: IdPrecision::Bits3,
            level_style: LevelStyle::Chunked { num_chunks: 128 },
            num_bins: PreprocessConfig::default().num_bins(),
            seed: 0x0d5e_ed00,
        }
    }
}

/// ID-Level encoder: owns the item memories and turns binned spectra into
/// binary hypervectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdLevelEncoder {
    config: EncoderConfig,
    id_memory: IdMemory,
    level_memory: LevelMemory,
    /// Bipolar (±1 as i8) expansion of each level hypervector, precomputed
    /// so the accumulation loop is a branch-free multiply-add.
    level_bipolar: Vec<Vec<i8>>,
    /// Resolves `Sign(0)` deterministically: a random but fixed ±1 per
    /// dimension.
    tie_break: BinaryHypervector,
}

impl IdLevelEncoder {
    /// Build an encoder (generates both item memories deterministically
    /// from `config.seed`).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero dim, fewer than two
    /// levels, chunk constraints) — see [`LevelMemory::generate`].
    pub fn new(config: EncoderConfig) -> IdLevelEncoder {
        let id_memory = IdMemory::generate(
            config.seed ^ 0x1d,
            config.num_bins,
            config.dim,
            config.id_precision,
        );
        let level_memory = LevelMemory::generate(
            config.seed ^ 0x7e,
            config.dim,
            config.q_levels,
            config.level_style,
        );
        let level_bipolar = (0..config.q_levels)
            .map(|q| level_memory.level(q).to_bipolar())
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x71e);
        let tie_break = BinaryHypervector::random(&mut rng, config.dim);
        IdLevelEncoder {
            config,
            id_memory,
            level_memory,
            level_bipolar,
            tie_break,
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The position-ID item memory.
    pub fn id_memory(&self) -> &IdMemory {
        &self.id_memory
    }

    /// The level item memory.
    pub fn level_memory(&self) -> &LevelMemory {
        &self.level_memory
    }

    /// The raw encoding accumulator `Σ ID_i ⊗ LV_i` (before `Sign`).
    ///
    /// The in-memory encoding path perturbs this accumulator with the
    /// analog error model before quantising, so it is public API
    /// (C-INTERMEDIATE).
    ///
    /// # Panics
    ///
    /// Panics if a peak's bin index is outside `0..num_bins` — that means
    /// the preprocessor and encoder configurations disagree.
    pub fn accumulate(&self, spectrum: &BinnedSpectrum) -> Vec<i32> {
        let dim = self.config.dim;
        let mut acc = vec![0i32; dim];
        for peak in spectrum.peaks() {
            let bin = peak.bin as usize;
            assert!(
                bin < self.config.num_bins,
                "bin {bin} outside ID memory ({} bins) — preprocessor/encoder mismatch",
                self.config.num_bins
            );
            let level = self.level_memory.quantize(peak.intensity);
            let id = self.id_memory.id(bin);
            let lv = &self.level_bipolar[level];
            for d in 0..dim {
                acc[d] += i32::from(id[d]) * i32::from(lv[d]);
            }
        }
        acc
    }

    /// Quantise an accumulator to a binary hypervector with `Sign`,
    /// breaking `0` ties with the encoder's fixed tie-break vector.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len()` differs from the configured dimension.
    pub fn quantize_accumulator(&self, acc: &[i32]) -> BinaryHypervector {
        assert_eq!(acc.len(), self.config.dim, "accumulator length mismatch");
        let mut hv = BinaryHypervector::zeros(self.config.dim);
        for (d, &v) in acc.iter().enumerate() {
            let bit = match v.cmp(&0) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => self.tie_break.bit(d),
            };
            hv.set(d, bit);
        }
        hv
    }

    /// Encode one spectrum: [`IdLevelEncoder::accumulate`] then
    /// [`IdLevelEncoder::quantize_accumulator`].
    pub fn encode(&self, spectrum: &BinnedSpectrum) -> BinaryHypervector {
        self.quantize_accumulator(&self.accumulate(spectrum))
    }

    /// Encode a batch on `threads` threads, preserving order.
    pub fn encode_batch(
        &self,
        spectra: &[BinnedSpectrum],
        threads: usize,
    ) -> Vec<BinaryHypervector> {
        par_map(spectra, threads, |s| self.encode(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::normalized_similarity;
    use hdoms_ms::dataset::{SyntheticWorkload, WorkloadSpec};
    use hdoms_ms::noise::NoiseModel;
    use hdoms_ms::preprocess::Preprocessor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> EncoderConfig {
        EncoderConfig {
            dim: 2048,
            q_levels: 16,
            id_precision: IdPrecision::Bits3,
            level_style: LevelStyle::Random,
            ..EncoderConfig::default()
        }
    }

    fn encoded_pair(style: LevelStyle) -> (f64, f64) {
        // Returns (similarity of noisy re-measurement, similarity of
        // unrelated spectra) under the given level style.
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 77);
        let pre = Preprocessor::default();
        let enc = IdLevelEncoder::new(EncoderConfig {
            level_style: style,
            ..small_config()
        });
        let clean = &w.library.entries()[0].spectrum;
        let noisy = NoiseModel::default().apply(&mut StdRng::seed_from_u64(1), clean);
        let other = &w.library.entries()[1].spectrum;
        let h_clean = enc.encode(&pre.run(clean).unwrap());
        let h_noisy = enc.encode(&pre.run(&noisy).unwrap());
        let h_other = enc.encode(&pre.run(other).unwrap());
        (
            normalized_similarity(&h_clean, &h_noisy),
            normalized_similarity(&h_clean, &h_other),
        )
    }

    #[test]
    fn encoding_is_deterministic() {
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 5);
        let pre = Preprocessor::default();
        let b = pre.run(&w.queries[0]).unwrap();
        let enc1 = IdLevelEncoder::new(small_config());
        let enc2 = IdLevelEncoder::new(small_config());
        assert_eq!(enc1.encode(&b), enc2.encode(&b));
    }

    #[test]
    fn noisy_remeasurement_stays_similar() {
        let (sim_noisy, sim_other) = encoded_pair(LevelStyle::Random);
        assert!(
            sim_noisy > 0.25,
            "noisy re-measurement similarity too low: {sim_noisy}"
        );
        assert!(
            sim_other < sim_noisy / 2.0,
            "unrelated spectrum too similar: {sim_other} vs {sim_noisy}"
        );
    }

    #[test]
    fn chunked_levels_preserve_quality() {
        let (sim_noisy, sim_other) = encoded_pair(LevelStyle::Chunked { num_chunks: 128 });
        assert!(
            sim_noisy > 0.25,
            "chunked: noisy similarity too low: {sim_noisy}"
        );
        assert!(sim_other < sim_noisy / 2.0);
    }

    #[test]
    fn accumulator_bounds() {
        // |acc[d]| can never exceed peaks * max_abs(ID).
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 6);
        let pre = Preprocessor::default();
        let enc = IdLevelEncoder::new(small_config());
        let b = pre.run(&w.queries[0]).unwrap();
        let acc = enc.accumulate(&b);
        let bound = (b.peaks().len() as i32) * 4;
        assert!(acc.iter().all(|&v| v.abs() <= bound));
        // And the accumulator is not trivially zero.
        assert!(acc.iter().any(|&v| v != 0));
    }

    #[test]
    fn quantize_ties_use_tie_break() {
        let enc = IdLevelEncoder::new(small_config());
        let zeros = vec![0i32; 2048];
        let hv = enc.quantize_accumulator(&zeros);
        // Sign(0) must equal the tie-break vector — check determinism and
        // rough balance.
        assert_eq!(hv, enc.quantize_accumulator(&zeros));
        let ones = hv.count_ones() as f64;
        assert!((ones - 1024.0).abs() < 200.0);
    }

    #[test]
    #[should_panic(expected = "accumulator length mismatch")]
    fn quantize_checks_length() {
        let enc = IdLevelEncoder::new(small_config());
        let _ = enc.quantize_accumulator(&[0i32; 7]);
    }

    #[test]
    fn batch_matches_sequential() {
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 8);
        let pre = Preprocessor::default();
        let (batch, _) = pre.run_batch(&w.queries);
        let enc = IdLevelEncoder::new(small_config());
        let seq: Vec<_> = batch.iter().map(|b| enc.encode(b)).collect();
        let par = enc.encode_batch(&batch, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn binary_ids_also_work() {
        let enc = IdLevelEncoder::new(EncoderConfig {
            id_precision: IdPrecision::Bits1,
            ..small_config()
        });
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 9);
        let pre = Preprocessor::default();
        let b = pre.run(&w.queries[0]).unwrap();
        let hv = enc.encode(&b);
        assert_eq!(hv.dim(), 2048);
    }

    #[test]
    fn encodings_use_full_dimensionality() {
        let w = SyntheticWorkload::generate(&WorkloadSpec::tiny(), 10);
        let pre = Preprocessor::default();
        let enc = IdLevelEncoder::new(small_config());
        let hv = enc.encode(&pre.run(&w.queries[0]).unwrap());
        let ones = hv.count_ones() as f64;
        // A healthy encoding is near-balanced.
        assert!((ones - 1024.0).abs() < 250.0, "ones = {ones}");
    }
}
