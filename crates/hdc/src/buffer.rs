//! An 8-byte-aligned, reference-counted, read-only byte buffer.
//!
//! [`WordBuffer`] backs the zero-copy index load path: a whole `.hdx`
//! file is read (or mapped) into **one** allocation whose base address is
//! `u64`-aligned, so any 8-aligned byte range inside it can be handed out
//! directly as a `&[u64]` hypervector word slice — the packed words the
//! distance kernels scan *are* the file bytes, with no per-reference
//! materialisation.
//!
//! Alignment is guaranteed by construction: the owned storage is a
//! `Vec<u64>` viewed as bytes (never the other way round), and the
//! optional `mmap` storage (feature `mmap`, 64-bit Unix only — the
//! hand-declared FFI signature assumes 64-bit `off_t`/`size_t`) is
//! page-aligned by the kernel.

use std::fmt;
use std::io::Read;
use std::sync::Arc;

/// The storage behind a [`WordBuffer`].
enum Storage {
    /// Heap storage: a `u64` vector viewed as bytes (base is 8-aligned
    /// because the allocation was made *as* `u64`s).
    Owned(Vec<u64>),
    /// A read-only file mapping (page-aligned, unmapped on drop).
    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    Mapped(mmap::Mapping),
}

/// A shared, immutable, 8-byte-aligned byte buffer that hands out `u64`
/// word slices at aligned offsets.
///
/// Cloning is cheap (one `Arc` bump) and every clone views the same
/// bytes — compare handles with [`WordBuffer::ptr_eq`].
#[derive(Clone)]
pub struct WordBuffer {
    storage: Arc<Storage>,
    /// Logical length in bytes (the storage may be padded to a whole
    /// number of words).
    len: usize,
}

impl WordBuffer {
    /// Read exactly `len` bytes from `reader` into one aligned buffer.
    ///
    /// # Errors
    ///
    /// Propagates read failures (including a short stream).
    pub fn from_reader<R: Read>(mut reader: R, len: usize) -> std::io::Result<WordBuffer> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // Viewing zero-initialised u64 storage as bytes is sound: u8 has
        // no validity requirements and the region is fully initialised.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        reader.read_exact(&mut bytes[..len])?;
        Ok(WordBuffer {
            storage: Arc::new(Storage::Owned(words)),
            len,
        })
    }

    /// Copy `bytes` into an aligned buffer (tests and in-memory loads;
    /// the zero-copy path uses [`WordBuffer::from_reader`] so the file is
    /// read straight into place).
    pub fn from_bytes(bytes: &[u8]) -> WordBuffer {
        WordBuffer::from_reader(bytes, bytes.len()).expect("reading from a slice cannot fail")
    }

    /// Map the file at `path` read-only into memory (no copy at all; the
    /// kernel pages bytes in on demand).
    ///
    /// # Errors
    ///
    /// Propagates open/stat/map failures.
    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    pub fn map_file(path: &std::path::Path) -> std::io::Result<WordBuffer> {
        let mapping = mmap::Mapping::open(path)?;
        let len = mapping.len();
        Ok(WordBuffer {
            storage: Arc::new(Storage::Mapped(mapping)),
            len,
        })
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer contents as bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &*self.storage {
            Storage::Owned(words) => {
                // Safe by construction: the u64 storage is initialised
                // and outlives the borrow.
                let all = unsafe {
                    std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8)
                };
                &all[..self.len]
            }
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Storage::Mapped(mapping) => mapping.as_bytes(),
        }
    }

    /// The `count` words starting at `byte_offset`.
    ///
    /// # Panics
    ///
    /// Panics unless `byte_offset` is 8-aligned and the range lies inside
    /// the buffer.
    pub fn words(&self, byte_offset: usize, count: usize) -> &[u64] {
        assert_eq!(byte_offset % 8, 0, "word slices need an 8-aligned offset");
        // Checked arithmetic: a huge offset must fail here, not wrap
        // past the bound and reach the unsafe pointer math below.
        let end = count
            .checked_mul(8)
            .and_then(|len| byte_offset.checked_add(len));
        assert!(
            end.is_some_and(|end| end <= self.len),
            "word slice {byte_offset}+{count}w out of bounds for {} bytes",
            self.len
        );
        match &*self.storage {
            Storage::Owned(words) => &words[byte_offset / 8..byte_offset / 8 + count],
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Storage::Mapped(mapping) => mapping.words(byte_offset, count),
        }
    }

    /// Whether the buffer is a file mapping (whose resident pages can be
    /// released with [`WordBuffer::release_range`]).
    pub fn is_mapped(&self) -> bool {
        match &*self.storage {
            Storage::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Storage::Mapped(_) => true,
        }
    }

    /// Release the resident pages backing `len` bytes at `byte_offset`
    /// back to the kernel (`madvise(MADV_DONTNEED)`), returning how many
    /// bytes of whole pages were dropped. The bytes stay addressable —
    /// the mapping is read-only and private, so the next access simply
    /// faults the page back in from the file. This is the shard-eviction
    /// primitive: cold shards give their memory back, and "reload" is a
    /// free page fault.
    ///
    /// Only whole pages inside the range are dropped (the range is
    /// shrunk to page boundaries; partial edge pages stay resident
    /// because neighbouring data shares them). Returns 0 — releasing
    /// nothing — on owned storage, on a sub-page range, or if the
    /// kernel refuses the advice.
    ///
    /// # Panics
    ///
    /// Panics when the range lies outside the buffer.
    pub fn release_range(&self, byte_offset: usize, len: usize) -> usize {
        let end = byte_offset
            .checked_add(len)
            .expect("release range must not overflow");
        assert!(
            end <= self.len,
            "release range {byte_offset}+{len} out of bounds for {} bytes",
            self.len
        );
        match &*self.storage {
            Storage::Owned(_) => 0,
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Storage::Mapped(mapping) => mapping.release_range(byte_offset, len),
        }
    }

    /// Whether two handles view the same storage.
    pub fn ptr_eq(a: &WordBuffer, b: &WordBuffer) -> bool {
        Arc::ptr_eq(&a.storage, &b.storage)
    }

    /// Number of live handles on this buffer's storage.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.storage)
    }
}

impl fmt::Debug for WordBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &*self.storage {
            Storage::Owned(_) => "owned",
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Storage::Mapped(_) => "mmap",
        };
        write!(f, "WordBuffer({kind}, {} bytes)", self.len)
    }
}

#[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
mod mmap {
    //! A minimal read-only `mmap` wrapper declared straight against the
    //! C library (the workspace builds offline, so the `libc` crate is
    //! not available — the two syscalls it would wrap are declared here
    //! instead).

    use std::os::fd::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_DONTNEED: i32 = 4;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn madvise(addr: *mut core::ffi::c_void, len: usize, advice: i32) -> i32;
        fn getpagesize() -> i32;
    }

    /// A read-only private file mapping, unmapped on drop.
    pub(super) struct Mapping {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is immutable after construction and the pages are
    // process-shared, so handing references across threads is safe.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub(super) fn open(path: &std::path::Path) -> std::io::Result<Mapping> {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "cannot map an empty file",
                ));
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub(super) fn len(&self) -> usize {
            self.len
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }

        pub(super) fn words(&self, byte_offset: usize, count: usize) -> &[u64] {
            // The page-aligned base plus an 8-aligned offset (checked by
            // the caller) keeps the u64 reads aligned.
            unsafe {
                std::slice::from_raw_parts(self.ptr.cast::<u8>().add(byte_offset).cast(), count)
            }
        }

        /// Drop the whole pages inside `[byte_offset, byte_offset+len)`
        /// from residency; returns the bytes released. See
        /// [`super::WordBuffer::release_range`] for the contract.
        pub(super) fn release_range(&self, byte_offset: usize, len: usize) -> usize {
            let page = unsafe { getpagesize() }.max(1) as usize;
            // Shrink to whole pages: the first page boundary at or after
            // the start, the last at or before the end. Edge pages are
            // shared with neighbouring data and must stay resident.
            let start = byte_offset.div_ceil(page) * page;
            let end = (byte_offset + len) / page * page;
            if start >= end {
                return 0;
            }
            // MADV_DONTNEED on a read-only private file mapping cannot
            // lose data: there are no dirty pages, so the next access
            // refaults the bytes straight from the file.
            let rc = unsafe {
                madvise(
                    self.ptr.cast::<u8>().add(start).cast(),
                    end - start,
                    MADV_DONTNEED,
                )
            };
            if rc == 0 {
                end - start
            } else {
                0
            }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_bytes_and_words() {
        let mut bytes = Vec::new();
        for w in [1u64, u64::MAX, 0x0123_4567_89ab_cdef] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.push(7); // a trailing partial word
        let buffer = WordBuffer::from_bytes(&bytes);
        assert_eq!(buffer.len(), 25);
        assert_eq!(buffer.as_bytes(), &bytes[..]);
        assert_eq!(buffer.words(0, 2), &[1, u64::MAX]);
        assert_eq!(buffer.words(8, 2), &[u64::MAX, 0x0123_4567_89ab_cdef]);
    }

    #[test]
    fn base_is_word_aligned() {
        let buffer = WordBuffer::from_bytes(&[0u8; 17]);
        assert_eq!(buffer.as_bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn clones_share_storage() {
        let buffer = WordBuffer::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let other = buffer.clone();
        assert!(WordBuffer::ptr_eq(&buffer, &other));
        assert_eq!(buffer.handle_count(), 2);
        assert_eq!(other.as_bytes(), buffer.as_bytes());
    }

    #[test]
    #[should_panic(expected = "8-aligned")]
    fn misaligned_word_slice_rejected() {
        let buffer = WordBuffer::from_bytes(&[0u8; 32]);
        let _ = buffer.words(4, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_word_slice_rejected() {
        let buffer = WordBuffer::from_bytes(&[0u8; 15]);
        let _ = buffer.words(8, 1);
    }

    #[test]
    fn short_reader_is_an_error() {
        let bytes = [0u8; 4];
        assert!(WordBuffer::from_reader(&bytes[..], 8).is_err());
    }

    #[test]
    fn owned_storage_releases_nothing() {
        let buffer = WordBuffer::from_bytes(&[7u8; 64]);
        assert!(!buffer.is_mapped());
        assert_eq!(buffer.release_range(0, 64), 0);
        assert_eq!(buffer.as_bytes(), &[7u8; 64]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn release_range_checks_bounds() {
        let buffer = WordBuffer::from_bytes(&[0u8; 16]);
        let _ = buffer.release_range(8, 16);
    }

    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    #[test]
    fn released_mapped_pages_refault_from_the_file() {
        // Map a multi-page file, drop the middle pages, and read the
        // whole buffer back: the kernel must refault the released pages
        // from the file with the original bytes intact.
        let path = std::env::temp_dir().join(format!("hdoms-madv-{}.bin", std::process::id()));
        let bytes: Vec<u8> = (0..64 * 1024usize).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &bytes).unwrap();
        let mapped = WordBuffer::map_file(&path).unwrap();
        assert!(mapped.is_mapped());
        let released = mapped.release_range(4096, 3 * 4096);
        assert!(released > 0, "whole pages inside the range were dropped");
        assert!(released <= 3 * 4096);
        assert_eq!(mapped.as_bytes(), &bytes[..], "refaulted bytes differ");
        // A sub-page range has no whole page to drop.
        assert_eq!(mapped.release_range(1, 16), 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    #[test]
    fn mapped_file_reads_like_owned() {
        let path = std::env::temp_dir().join(format!("hdoms-mmap-{}.bin", std::process::id()));
        let bytes: Vec<u8> = (0..100u8).collect();
        std::fs::write(&path, &bytes).unwrap();
        let mapped = WordBuffer::map_file(&path).unwrap();
        assert_eq!(mapped.as_bytes(), &bytes[..]);
        assert_eq!(
            mapped.words(8, 1),
            WordBuffer::from_bytes(&bytes).words(8, 1)
        );
        std::fs::remove_file(&path).ok();
    }
}
