//! Scoped-thread parallel map.
//!
//! The sanctioned dependency set has no rayon, so this module provides the
//! one parallel primitive the search stacks need: map a function over a
//! slice on several threads, preserving order. Built on
//! [`std::thread::scope`], so borrowed inputs work without `'static`
//! bounds.
//!
//! The `threads` argument is the seam the serving stack's admission
//! control plugs into: a scheduled batch runs its shard scoring with
//! the worker budget the scheduler granted (what the
//! `hdoms_workers_busy` gauge and per-batch `workers` stats report —
//! see `docs/SCHEDULER.md` and `docs/OBSERVABILITY.md`).

/// Map `f` over `items` using up to `threads` OS threads, preserving input
/// order in the output.
///
/// With `threads <= 1` (or a single chunk) the map runs inline on the
/// calling thread — callers can pass `1` to disable parallelism without a
/// separate code path.
///
/// # Panics
///
/// Propagates panics from `f` (the scope join panics on worker panic).
///
/// ```
/// let squares = hdoms_hdc::parallel::par_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("parallel map worker panicked"));
        }
        out
    })
}

/// A sensible default thread count: the machine's available parallelism,
/// capped at 16 (the search stacks are memory-bound well before that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_inline() {
        let out = par_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(&[5], 64, |&x| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn borrows_environment() {
        let offset = 10;
        let out = par_map(&[1, 2], 2, |&x| x + offset);
        assert_eq!(out, vec![11, 12]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
