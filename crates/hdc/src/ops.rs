//! Core hyperdimensional operators: binding, bundling and permutation.
//!
//! ID-Level encoding (Eq. 1 of the paper) is one composition of the three
//! classical HD operators — bind (element-wise multiply), bundle
//! (majority sum) and permute (rotation). They are exposed here as
//! standalone operations so downstream users can build other encoders
//! (n-gram, positional, associative memories) on the same bit-packed
//! representation the accelerator consumes.

use crate::hv::BinaryHypervector;

/// Bind two binary hypervectors: element-wise bipolar multiplication,
/// which for the bit representation is XNOR. Binding is its own inverse
/// (`bind(bind(a, b), b) = a`) and preserves distances.
///
/// # Panics
///
/// Panics on dimension mismatch.
///
/// ```
/// use hdoms_hdc::hv::BinaryHypervector;
/// use hdoms_hdc::ops::bind;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = BinaryHypervector::random(&mut rng, 256);
/// let b = BinaryHypervector::random(&mut rng, 256);
/// assert_eq!(bind(&bind(&a, &b), &b), a);
/// ```
pub fn bind(a: &BinaryHypervector, b: &BinaryHypervector) -> BinaryHypervector {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    let mut out = BinaryHypervector::zeros(a.dim());
    for (o, (&x, &y)) in out
        .words_mut()
        .iter_mut()
        .zip(a.words().iter().zip(b.words()))
    {
        *o = !(x ^ y);
    }
    out.mask_tail();
    out
}

/// Bundle hypervectors by majority vote per dimension; ties (even counts)
/// resolve with `tie_break`.
///
/// The bundle is similar to each input (similarity ≈ `1/√n` for random
/// inputs), which is what makes it the HD superposition operator.
///
/// # Panics
///
/// Panics if `inputs` is empty or dimensions disagree.
pub fn bundle(inputs: &[&BinaryHypervector], tie_break: &BinaryHypervector) -> BinaryHypervector {
    assert!(!inputs.is_empty(), "bundle of nothing");
    let dim = inputs[0].dim();
    assert!(
        inputs.iter().all(|hv| hv.dim() == dim) && tie_break.dim() == dim,
        "dimension mismatch"
    );
    let mut out = BinaryHypervector::zeros(dim);
    let half = inputs.len();
    for d in 0..dim {
        // count in {-n..n} with ±1 per input.
        let ones = inputs.iter().filter(|hv| hv.bit(d)).count();
        let bit = match (2 * ones).cmp(&half) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tie_break.bit(d),
        };
        out.set(d, bit);
    }
    out
}

/// Cyclically permute (rotate) the dimensions by `shift` — the HD
/// sequence/position operator. `permute(hv, 0)` is the identity and a
/// shift of `dim` wraps back to the identity.
pub fn permute(hv: &BinaryHypervector, shift: usize) -> BinaryHypervector {
    let dim = hv.dim();
    let shift = shift % dim;
    let mut out = BinaryHypervector::zeros(dim);
    for d in 0..dim {
        out.set((d + shift) % dim, hv.bit(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{hamming_distance, normalized_similarity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn bind_is_involutive_and_distance_preserving() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 300);
        let b = BinaryHypervector::random(&mut rng, 300);
        let c = BinaryHypervector::random(&mut rng, 300);
        assert_eq!(bind(&bind(&a, &c), &c), a);
        assert_eq!(
            hamming_distance(&a, &b),
            hamming_distance(&bind(&a, &c), &bind(&b, &c)),
            "binding preserves distances"
        );
    }

    #[test]
    fn bind_randomises_similarity() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 4096);
        let b = BinaryHypervector::random(&mut rng, 4096);
        let bound = bind(&a, &b);
        assert!(normalized_similarity(&a, &bound).abs() < 0.1);
    }

    #[test]
    fn bind_masks_tail() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 70);
        let b = BinaryHypervector::random(&mut rng, 70);
        let bound = bind(&a, &b); // XNOR sets tail bits without masking
        assert_eq!(bound.words()[1] >> 6, 0, "tail must stay masked");
    }

    #[test]
    fn bundle_resembles_members() {
        let mut rng = rng();
        let members: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(&mut rng, 4096))
            .collect();
        let tie = BinaryHypervector::random(&mut rng, 4096);
        let refs: Vec<&BinaryHypervector> = members.iter().collect();
        let bundled = bundle(&refs, &tie);
        let outsider = BinaryHypervector::random(&mut rng, 4096);
        for m in &members {
            assert!(
                normalized_similarity(&bundled, m) > 0.25,
                "bundle must stay similar to members"
            );
        }
        assert!(normalized_similarity(&bundled, &outsider).abs() < 0.1);
    }

    #[test]
    fn bundle_of_one_is_identity() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 128);
        let tie = BinaryHypervector::random(&mut rng, 128);
        assert_eq!(bundle(&[&a], &tie), a);
    }

    #[test]
    fn bundle_ties_use_tie_break() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 128);
        let mut not_a = a.clone();
        for d in 0..128 {
            not_a.flip(d);
        }
        let tie = BinaryHypervector::random(&mut rng, 128);
        assert_eq!(bundle(&[&a, &not_a], &tie), tie);
    }

    #[test]
    fn permute_wraps_and_inverts() {
        let mut rng = rng();
        let a = BinaryHypervector::random(&mut rng, 100);
        assert_eq!(permute(&a, 0), a);
        assert_eq!(permute(&a, 100), a);
        let shifted = permute(&a, 37);
        assert_eq!(permute(&shifted, 63), a, "complementary shifts invert");
        assert!(normalized_similarity(&a, &shifted).abs() < 0.35);
    }

    #[test]
    #[should_panic(expected = "bundle of nothing")]
    fn empty_bundle_rejected() {
        let tie = BinaryHypervector::zeros(8);
        let _ = bundle(&[], &tie);
    }
}
