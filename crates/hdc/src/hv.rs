//! Bit-packed binary hypervectors.
//!
//! A binary hypervector is a vector in `{-1, +1}^D` stored one bit per
//! dimension (`1 ↔ +1`, `0 ↔ -1`) in `u64` words, so Hamming distance is a
//! handful of XOR + popcount instructions per 64 dimensions.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary (bipolar) hypervector of fixed dimension, bit-packed into
/// `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHypervector {
    /// Number of `u64` words needed for `dim` bits.
    #[inline]
    pub(crate) fn word_count(dim: usize) -> usize {
        dim.div_ceil(64)
    }

    /// The all `-1` hypervector (all bits zero).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn zeros(dim: usize) -> BinaryHypervector {
        assert!(dim > 0, "hypervector dimension must be positive");
        BinaryHypervector {
            dim,
            words: vec![0; Self::word_count(dim)],
        }
    }

    /// A uniformly random hypervector drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn random<R: Rng>(rng: &mut R, dim: usize) -> BinaryHypervector {
        let mut hv = BinaryHypervector::zeros(dim);
        for w in &mut hv.words {
            *w = rng.gen();
        }
        hv.mask_tail();
        hv
    }

    /// Build from bipolar components (`+1`/`-1`).
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or contains values other than ±1.
    pub fn from_bipolar(components: &[i8]) -> BinaryHypervector {
        let mut hv = BinaryHypervector::zeros(components.len());
        for (i, &c) in components.iter().enumerate() {
            match c {
                1 => hv.set(i, true),
                -1 => {}
                other => panic!("bipolar component must be ±1, got {other}"),
            }
        }
        hv
    }

    /// Expand to a bipolar `i8` vector (`+1`/`-1` per dimension).
    pub fn to_bipolar(&self) -> Vec<i8> {
        (0..self.dim).map(|i| self.component(i)).collect()
    }

    /// Dimension of the hypervector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words. The final word's unused high bits are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words.
    ///
    /// Callers must keep the unused tail bits of the last word zero; use
    /// [`BinaryHypervector::mask_tail`] after bulk edits.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Zero any bits beyond `dim` in the last word.
    pub fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// The bit at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim, "index {i} out of bounds for dim {}", self.dim);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The bipolar component at dimension `i` (`+1` or `-1`).
    #[inline]
    pub fn component(&self, i: usize) -> i8 {
        if self.bit(i) {
            1
        } else {
            -1
        }
    }

    /// Set the bit at dimension `i` (`true ↔ +1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.dim, "index {i} out of bounds for dim {}", self.dim);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flip the bit at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.dim, "index {i} out of bounds for dim {}", self.dim);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of `+1` components.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Reassemble a hypervector from packed words (the inverse of
    /// [`BinaryHypervector::words`]).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, the word count is not `ceil(dim / 64)`,
    /// or unused tail bits of the last word are set.
    pub fn from_words(dim: usize, words: Vec<u64>) -> BinaryHypervector {
        assert!(dim > 0, "hypervector dimension must be positive");
        assert_eq!(
            words.len(),
            Self::word_count(dim),
            "word count must match the dimension"
        );
        let hv = BinaryHypervector { dim, words };
        assert!(hv.tail_is_masked(), "unused tail bits must be zero");
        hv
    }

    /// Whether every bit beyond `dim` in the last word is zero.
    pub fn tail_is_masked(&self) -> bool {
        let rem = self.dim % 64;
        rem == 0 || self.words[self.words.len() - 1] & !((1u64 << rem) - 1) == 0
    }

    /// A borrowed view of this hypervector (dimension + packed words).
    #[inline]
    pub fn as_view(&self) -> HvRef<'_> {
        HvRef {
            dim: self.dim,
            words: &self.words,
        }
    }
}

/// A borrowed, bit-packed hypervector view: a dimension plus a `&[u64]`
/// word slice that lives somewhere else — inside an owned
/// [`BinaryHypervector`], or directly inside a loaded index file's
/// backing buffer (the zero-copy search path).
///
/// Every read-only operation the distance kernels need is available
/// through [`HvView`], which both this type and [`BinaryHypervector`]
/// implement, so kernels are written once and scan either representation.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HvRef<'a> {
    dim: usize,
    words: &'a [u64],
}

impl<'a> HvRef<'a> {
    /// A view over `words` interpreted as a `dim`-bit hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, the word count is not `ceil(dim / 64)`,
    /// or unused tail bits of the last word are set (the tail invariant
    /// every [`BinaryHypervector`] maintains — distance kernels rely on
    /// it, so views must too).
    pub fn new(dim: usize, words: &'a [u64]) -> HvRef<'a> {
        assert!(dim > 0, "hypervector dimension must be positive");
        assert_eq!(
            words.len(),
            BinaryHypervector::word_count(dim),
            "word count must match the dimension"
        );
        let rem = dim % 64;
        assert!(
            rem == 0 || words[words.len() - 1] & !((1u64 << rem) - 1) == 0,
            "unused tail bits must be zero"
        );
        HvRef { dim, words }
    }

    /// Like [`HvRef::new`] without the validation — for hot paths whose
    /// caller already validated the slice once (e.g. a mapped reference
    /// table checks every offset at load time). Violating the
    /// invariants gives wrong distances, never memory unsafety; debug
    /// builds still assert them.
    #[inline]
    pub fn new_unchecked(dim: usize, words: &'a [u64]) -> HvRef<'a> {
        debug_assert_eq!(words.len(), BinaryHypervector::word_count(dim));
        debug_assert!({
            let rem = dim % 64;
            rem == 0 || words[words.len() - 1] & !((1u64 << rem) - 1) == 0
        });
        HvRef { dim, words }
    }

    /// Dimension of the viewed hypervector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Copy the view into an owned [`BinaryHypervector`].
    pub fn to_hypervector(&self) -> BinaryHypervector {
        BinaryHypervector {
            dim: self.dim,
            words: self.words.to_vec(),
        }
    }
}

impl fmt::Debug for HvRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HvRef(dim={}, ones={})",
            self.dim,
            self.words.iter().map(|w| w.count_ones()).sum::<u32>()
        )
    }
}

/// Read-only access to a bit-packed hypervector — implemented by the
/// owned [`BinaryHypervector`] and the borrowed [`HvRef`], so similarity
/// kernels accept either without copying.
pub trait HvView {
    /// Dimension in bits.
    fn dim(&self) -> usize;

    /// The packed words; unused tail bits of the last word are zero.
    fn words(&self) -> &[u64];
}

impl HvView for BinaryHypervector {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn words(&self) -> &[u64] {
        &self.words
    }
}

impl HvView for HvRef<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn words(&self) -> &[u64] {
        self.words
    }
}

impl fmt::Debug for BinaryHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full bit dumps are unreadable; show dimension, population count
        // and the first few bits.
        let prefix: String = (0..self.dim.min(16))
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect();
        write!(
            f,
            "BinaryHypervector(dim={}, ones={}, bits={}…)",
            self.dim,
            self.count_ones(),
            prefix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_all_minus_one() {
        let hv = BinaryHypervector::zeros(100);
        assert_eq!(hv.count_ones(), 0);
        assert!(hv.to_bipolar().iter().all(|&c| c == -1));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut hv = BinaryHypervector::zeros(130);
        hv.set(0, true);
        hv.set(64, true);
        hv.set(129, true);
        assert!(hv.bit(0) && hv.bit(64) && hv.bit(129));
        assert!(!hv.bit(1) && !hv.bit(63) && !hv.bit(128));
        assert_eq!(hv.count_ones(), 3);
        hv.set(64, false);
        assert!(!hv.bit(64));
    }

    #[test]
    fn flip_toggles() {
        let mut hv = BinaryHypervector::zeros(70);
        hv.flip(69);
        assert!(hv.bit(69));
        hv.flip(69);
        assert!(!hv.bit(69));
    }

    #[test]
    fn bipolar_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let hv = BinaryHypervector::random(&mut rng, 257);
        let bipolar = hv.to_bipolar();
        assert_eq!(BinaryHypervector::from_bipolar(&bipolar), hv);
    }

    #[test]
    #[should_panic(expected = "bipolar component must be ±1")]
    fn from_bipolar_rejects_zero() {
        let _ = BinaryHypervector::from_bipolar(&[1, 0, -1]);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let hv = BinaryHypervector::random(&mut rng, 8192);
        let ones = hv.count_ones() as f64;
        assert!((ones - 4096.0).abs() < 300.0, "ones = {ones}");
    }

    #[test]
    fn random_masks_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let hv = BinaryHypervector::random(&mut rng, 65);
        // Only bits 0..65 may be set; the last word has exactly 1 usable bit.
        assert_eq!(hv.words()[1] & !1, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bit_bounds_checked() {
        let hv = BinaryHypervector::zeros(10);
        let _ = hv.bit(10);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = BinaryHypervector::zeros(0);
    }

    #[test]
    fn debug_is_compact() {
        let hv = BinaryHypervector::zeros(8192);
        let s = format!("{hv:?}");
        assert!(s.len() < 100);
        assert!(s.contains("dim=8192"));
    }

    #[test]
    fn view_roundtrips_through_words() {
        let mut rng = StdRng::seed_from_u64(21);
        let hv = BinaryHypervector::random(&mut rng, 130);
        let view = hv.as_view();
        assert_eq!(view.dim(), 130);
        assert_eq!(view.words(), hv.words());
        assert_eq!(view.to_hypervector(), hv);
        let rebuilt = BinaryHypervector::from_words(130, hv.words().to_vec());
        assert_eq!(rebuilt, hv);
        let external = HvRef::new(130, hv.words());
        assert_eq!(external, view);
    }

    #[test]
    #[should_panic(expected = "tail bits")]
    fn view_rejects_dirty_tail() {
        let _ = HvRef::new(65, &[0, 0b100]);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_rejects_wrong_count() {
        let _ = BinaryHypervector::from_words(130, vec![0; 2]);
    }
}
