//! Bit-error injection for robustness experiments (Fig. 11).
//!
//! The paper sweeps bit error rates from 0.15 % to 20 % on both encoding
//! outputs and stored reference hypervectors and measures how many
//! identifications survive. This module provides the corruption primitive:
//! flip each bit independently with probability `ber`.

use crate::hv::BinaryHypervector;
use rand::Rng;

/// Flip each bit of `hv` independently with probability `ber`, in place.
///
/// Uses per-word sampling when `ber` is large enough that bit-by-bit
/// sampling dominates, but the straightforward per-bit Bernoulli is kept
/// for exactness: the experiments depend on the *rate* being faithful.
///
/// # Panics
///
/// Panics unless `0.0 <= ber <= 1.0`.
pub fn flip_bits_in_place<R: Rng>(rng: &mut R, hv: &mut BinaryHypervector, ber: f64) {
    assert!(
        (0.0..=1.0).contains(&ber),
        "bit error rate must be in [0, 1]"
    );
    if ber == 0.0 {
        return;
    }
    let dim = hv.dim();
    for i in 0..dim {
        if rng.gen_bool(ber) {
            hv.flip(i);
        }
    }
}

/// Return a corrupted copy of `hv` (see [`flip_bits_in_place`]).
///
/// # Panics
///
/// Panics unless `0.0 <= ber <= 1.0`.
pub fn flip_bits<R: Rng>(rng: &mut R, hv: &BinaryHypervector, ber: f64) -> BinaryHypervector {
    let mut out = hv.clone();
    flip_bits_in_place(rng, &mut out, ber);
    out
}

/// Corrupt every hypervector in `hvs` with independent errors at rate
/// `ber`.
///
/// # Panics
///
/// Panics unless `0.0 <= ber <= 1.0`.
pub fn flip_bits_batch<R: Rng>(
    rng: &mut R,
    hvs: &[BinaryHypervector],
    ber: f64,
) -> Vec<BinaryHypervector> {
    hvs.iter().map(|hv| flip_bits(rng, hv, ber)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::hamming_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_ber_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let hv = BinaryHypervector::random(&mut rng, 1024);
        assert_eq!(flip_bits(&mut rng, &hv, 0.0), hv);
    }

    #[test]
    fn one_ber_flips_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let hv = BinaryHypervector::random(&mut rng, 512);
        let flipped = flip_bits(&mut rng, &hv, 1.0);
        assert_eq!(hamming_distance(&hv, &flipped), 512);
    }

    #[test]
    fn flip_rate_matches_requested_ber() {
        let mut rng = StdRng::seed_from_u64(3);
        let hv = BinaryHypervector::random(&mut rng, 65_536);
        for &ber in &[0.01, 0.05, 0.10, 0.20] {
            let corrupted = flip_bits(&mut rng, &hv, ber);
            let rate = f64::from(hamming_distance(&hv, &corrupted)) / 65_536.0;
            assert!(
                (rate - ber).abs() < ber * 0.25 + 0.002,
                "requested {ber}, observed {rate}"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let hv = BinaryHypervector::random(&mut StdRng::seed_from_u64(4), 256);
        let a = flip_bits(&mut StdRng::seed_from_u64(9), &hv, 0.1);
        let b = flip_bits(&mut StdRng::seed_from_u64(9), &hv, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_corrupts_independently() {
        let mut rng = StdRng::seed_from_u64(5);
        let hv = BinaryHypervector::random(&mut rng, 2048);
        let batch = flip_bits_batch(&mut rng, &[hv.clone(), hv.clone()], 0.1);
        // Same source vector, independent errors → the two corruptions
        // should differ from each other.
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    #[should_panic(expected = "bit error rate must be in [0, 1]")]
    fn rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hv = BinaryHypervector::zeros(8);
        flip_bits_in_place(&mut rng, &mut hv, 1.5);
    }
}
