//! Runtime-dispatched SIMD distance kernels.
//!
//! Every similarity the system computes — Hamming distance, bipolar dot
//! product, the masked `matching_bits` partial MACs of the RRAM model —
//! reduces to XOR + popcount over packed `u64` words. This module owns
//! that inner loop and provides three interchangeable implementations
//! behind one [`KernelDispatch`] handle:
//!
//! * **scalar** — portable `u64::count_ones` (compiles to `POPCNT` on
//!   x86), the safe fallback every box runs;
//! * **avx2** — 256-bit XOR + the Mula nibble-LUT popcount
//!   (`_mm256_shuffle_epi8` + `_mm256_sad_epu8`), 4 words per vector;
//! * **avx512-vpopcntdq** — 512-bit XOR + the hardware
//!   `_mm512_popcnt_epi64`, 8 words per vector, where the CPU has it.
//!
//! Above the single-pair calls sits the **query-blocked batch kernel**
//! [`KernelDispatch::score_block`]: it tiles Q queries × R references so
//! each reference's cache lines are scored against a whole query block
//! before being evicted — the CPU analogue of HyperOMS's massively
//! parallel GPU formulation, and what the flat scan cannot do one pair
//! at a time.
//!
//! # Selection
//!
//! The process-wide active kernel ([`active`]) resolves once from the
//! `HDOMS_KERNEL` environment variable (`scalar` | `simd` | `auto`,
//! default `auto` = best SIMD the CPU reports, scalar otherwise) and can
//! be swapped at runtime with [`set_active`] — which is how the
//! equivalence suites and `kernel_bench` run every variant inside one
//! process. Explicit [`KernelDispatch`] values ([`KernelDispatch::scalar`],
//! [`KernelDispatch::resolve`]) bypass the global entirely.
//!
//! # The output contract
//!
//! Kernel selection must never change output bytes. All variants
//! compute the same integers over the same words, and every
//! tail-carrying entry point masks the final word's padding bits itself
//! (`hamming` of a 100-bit vector ignores bits 100..128 even if they
//! are dirty), so a view that slipped past the
//! [`HvRef::new_unchecked`](crate::hv::HvRef::new_unchecked) debug-only
//! validation still scores correctly. The property suite
//! (`crates/hdc/tests/kernel_equivalence.rs`) asserts scalar ≡ SIMD ≡
//! blocked over arbitrary dims, patterns, and ragged block shapes, and
//! that poisoned padding bits never reach a distance.

use crate::hv::{BinaryHypervector, HvView};
use std::sync::atomic::{AtomicU8, Ordering};

/// How many references a [`KernelDispatch::score_block`] reference tile
/// holds; callers feeding the blocked kernel incrementally (tiled scans
/// over candidate lists) use the same width so reference tiles fit L1.
pub const REFERENCE_TILE: usize = 32;

/// Queries per tile in the blocked kernels: each reference is scored
/// against this many queries while its cache lines are hot. Callers
/// grouping queries for [`KernelDispatch::score_block`] use this as the
/// natural block size.
pub const QUERY_TILE: usize = 8;

/// A kernel *request*: what the caller asked for, before resolving
/// against what the CPU supports (parsed from `HDOMS_KERNEL` or passed
/// to [`set_active`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The portable `u64::count_ones` path.
    Scalar,
    /// The best SIMD path the CPU supports (resolves to scalar on a
    /// machine with none — the request never fails).
    Simd,
    /// Alias for [`KernelKind::Simd`]: pick the best available path.
    Auto,
}

impl KernelKind {
    /// Parse an override spelling (`scalar` | `simd` | `auto`,
    /// case-insensitive). Returns `None` for anything else.
    pub fn parse(spelling: &str) -> Option<KernelKind> {
        match spelling.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "simd" => Some(KernelKind::Simd),
            "auto" => Some(KernelKind::Auto),
            _ => None,
        }
    }
}

/// A resolved implementation (what will actually run, as opposed to the
/// [`KernelKind`] request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Impl {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// The word-pair primitive every distance reduces to: XOR + popcount
/// over two equal-length word slices. Selected once per dispatch so the
/// blocked kernels pay no per-pair branch.
type PairFn = fn(&[u64], &[u64]) -> u64;

/// A resolved distance-kernel implementation. `Copy` and stateless —
/// methods take `&self` only for call-site ergonomics.
///
/// Obtain one from [`active`] (the process-wide selection),
/// [`KernelDispatch::resolve`] (explicit request), or the
/// [`KernelDispatch::scalar`] / [`KernelDispatch::simd`] shorthands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    imp: Impl,
}

impl KernelDispatch {
    /// The portable scalar kernel (always available).
    pub fn scalar() -> KernelDispatch {
        KernelDispatch { imp: Impl::Scalar }
    }

    /// The best SIMD kernel this CPU supports, or the scalar kernel on a
    /// machine with none (check [`KernelDispatch::is_simd`]).
    pub fn simd() -> KernelDispatch {
        KernelDispatch { imp: best_simd() }
    }

    /// Resolve a request against the running CPU.
    pub fn resolve(kind: KernelKind) -> KernelDispatch {
        match kind {
            KernelKind::Scalar => KernelDispatch::scalar(),
            KernelKind::Simd | KernelKind::Auto => KernelDispatch::simd(),
        }
    }

    /// The implementation's report name: `"scalar"`, `"avx2"`, or
    /// `"avx512-vpopcntdq"`.
    pub fn name(&self) -> &'static str {
        match self.imp {
            Impl::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Impl::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            Impl::Avx512 => "avx512-vpopcntdq",
        }
    }

    /// Whether this dispatch runs a vectorised path.
    pub fn is_simd(&self) -> bool {
        self.imp != Impl::Scalar
    }

    /// The resolved word-pair primitive.
    #[inline]
    fn pair_fn(&self) -> PairFn {
        match self.imp {
            Impl::Scalar => scalar_xor_popcount,
            #[cfg(target_arch = "x86_64")]
            Impl::Avx2 => x86::xor_popcount_avx2_shim,
            #[cfg(target_arch = "x86_64")]
            Impl::Avx512 => x86::xor_popcount_avx512_shim,
        }
    }

    /// XOR + popcount over two equal-length word slices — the raw
    /// primitive, no dimension semantics and **no tail masking** (every
    /// bit of every word counts).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn xor_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len(), "word slices must pair up");
        (self.pair_fn())(a, b)
    }

    /// Hamming distance between two `dim`-bit vectors stored in packed
    /// words. Padding bits beyond `dim` in the final word are masked off
    /// here, so dirty tails can never change a distance.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length is not `ceil(dim / 64)`.
    #[inline]
    pub fn hamming_words(&self, dim: usize, a: &[u64], b: &[u64]) -> u32 {
        hamming_with(self.pair_fn(), dim, a, b)
    }

    /// [`KernelDispatch::hamming_words`] over [`HvView`]s.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[inline]
    pub fn hamming<A, B>(&self, a: &A, b: &B) -> u32
    where
        A: HvView + ?Sized,
        B: HvView + ?Sized,
    {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        self.hamming_words(a.dim(), a.words(), b.words())
    }

    /// Bipolar dot product `D − 2·hamming` over packed words.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length is not `ceil(dim / 64)`.
    #[inline]
    pub fn dot_words(&self, dim: usize, a: &[u64], b: &[u64]) -> i64 {
        dim as i64 - 2 * i64::from(self.hamming_words(dim, a, b))
    }

    /// Number of equal bits between `a` and `b` within dimensions
    /// `[start, end)`: masked XOR popcounts on the partial edge words,
    /// the dispatched primitive on the full words between them.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end` and `end` fits in both slices.
    pub fn matching_bits_words(&self, a: &[u64], b: &[u64], start: usize, end: usize) -> u32 {
        assert!(start < end, "empty bit range");
        assert!(
            end <= a.len() * 64 && end <= b.len() * 64,
            "bit range {start}..{end} out of bounds"
        );
        let first_word = start / 64;
        let last_word = (end - 1) / 64;
        let low_mask = u64::MAX << (start % 64);
        let top = end - last_word * 64;
        let high_mask = if top < 64 {
            (1u64 << top) - 1
        } else {
            u64::MAX
        };
        let mismatches = if first_word == last_word {
            ((a[first_word] ^ b[first_word]) & low_mask & high_mask).count_ones() as u64
        } else {
            ((a[first_word] ^ b[first_word]) & low_mask).count_ones() as u64
                + (self.pair_fn())(&a[first_word + 1..last_word], &b[first_word + 1..last_word])
                + ((a[last_word] ^ b[last_word]) & high_mask).count_ones() as u64
        };
        (end - start) as u32 - mismatches as u32
    }

    /// Score one query against many references: `out[i]` becomes the
    /// bipolar dot of `query` and `references[i]`. This is the 1 × R
    /// slice of the blocked kernel — flat candidate scans feed it a
    /// [`REFERENCE_TILE`]-sized tile at a time.
    ///
    /// # Panics
    ///
    /// Panics if `out` and `references` differ in length, or any slice's
    /// length is not `ceil(dim / 64)`.
    pub fn dot_many(&self, dim: usize, query: &[u64], references: &[&[u64]], out: &mut [i64]) {
        assert_eq!(
            references.len(),
            out.len(),
            "references and out must pair up"
        );
        let f = self.pair_fn();
        for (slot, reference) in out.iter_mut().zip(references) {
            *slot = dim as i64 - 2 * i64::from(hamming_with(f, dim, query, reference));
        }
    }

    /// The query-blocked batch kernel: Hamming distances of Q queries ×
    /// R references, `out[q * R + r] = hamming(queries[q],
    /// references[r])`. Queries are tiled so each reference's words are
    /// scored against a whole query block while they are cache-hot;
    /// ragged tails (Q or R not a multiple of the tile) are handled.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != queries.len() * references.len()` or any
    /// slice's length is not `ceil(dim / 64)`.
    pub fn hamming_block(
        &self,
        dim: usize,
        queries: &[&[u64]],
        references: &[&[u64]],
        out: &mut [u32],
    ) {
        assert_eq!(
            out.len(),
            queries.len() * references.len(),
            "out must hold one distance per (query, reference) pair"
        );
        let f = self.pair_fn();
        let r_count = references.len();
        for (tile_idx, q_tile) in queries.chunks(QUERY_TILE).enumerate() {
            let q_base = tile_idx * QUERY_TILE;
            for (ri, reference) in references.iter().enumerate() {
                for (qi, query) in q_tile.iter().enumerate() {
                    out[(q_base + qi) * r_count + ri] = hamming_with(f, dim, query, reference);
                }
            }
        }
    }

    /// [`KernelDispatch::hamming_block`] emitting bipolar dot products:
    /// `out[q * R + r] = dim − 2·hamming(queries[q], references[r])` —
    /// the score every backend ranks by, one query block per reference
    /// sweep.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != queries.len() * references.len()` or any
    /// slice's length is not `ceil(dim / 64)`.
    pub fn score_block(
        &self,
        dim: usize,
        queries: &[&[u64]],
        references: &[&[u64]],
        out: &mut [i64],
    ) {
        assert_eq!(
            out.len(),
            queries.len() * references.len(),
            "out must hold one score per (query, reference) pair"
        );
        let f = self.pair_fn();
        let d = dim as i64;
        let r_count = references.len();
        for (tile_idx, q_tile) in queries.chunks(QUERY_TILE).enumerate() {
            let q_base = tile_idx * QUERY_TILE;
            for (ri, reference) in references.iter().enumerate() {
                for (qi, query) in q_tile.iter().enumerate() {
                    out[(q_base + qi) * r_count + ri] =
                        d - 2 * i64::from(hamming_with(f, dim, query, reference));
                }
            }
        }
    }
}

/// Tail-masked Hamming distance over a resolved pair primitive: full
/// words go through `f`, the final word is masked to `dim % 64` bits so
/// padding can never leak into a distance.
#[inline]
fn hamming_with(f: PairFn, dim: usize, a: &[u64], b: &[u64]) -> u32 {
    let n = BinaryHypervector::word_count(dim);
    assert_eq!(a.len(), n, "word count must match the dimension");
    assert_eq!(b.len(), n, "word count must match the dimension");
    let rem = dim % 64;
    if rem == 0 {
        f(a, b) as u32
    } else {
        let tail = ((a[n - 1] ^ b[n - 1]) & ((1u64 << rem) - 1)).count_ones();
        f(&a[..n - 1], &b[..n - 1]) as u32 + tail
    }
}

/// The portable primitive: one `POPCNT` per word on x86, plain bit
/// tricks elsewhere.
fn scalar_xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

/// The best SIMD implementation this CPU reports, or scalar.
fn best_simd() -> Impl {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            return Impl::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Impl::Avx2;
        }
    }
    Impl::Scalar
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vectorised primitives. Each `#[target_feature]` function is
    //! only reachable through its safe shim, and the shims are only
    //! selected by [`super::best_simd`] after `is_x86_feature_detected!`
    //! confirmed the ISA — the sole safety precondition of the calls.
    //! The functions take plain `&[u64]` slices, perform unaligned
    //! loads, and hand the (word count % vector width) remainder to the
    //! scalar path, so any slice the safe API accepts is sound here.

    use std::arch::x86_64::*;

    /// Safe entry to the AVX2 primitive (caller: dispatch resolved
    /// after feature detection).
    pub(super) fn xor_popcount_avx2_shim(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only installed as a pair fn when `avx2` was detected.
        unsafe { xor_popcount_avx2(a, b) }
    }

    /// Safe entry to the AVX-512 primitive (caller: dispatch resolved
    /// after feature detection).
    pub(super) fn xor_popcount_avx512_shim(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only installed as a pair fn when `avx512f` +
        // `avx512vpopcntdq` were detected.
        unsafe { xor_popcount_avx512(a, b) }
    }

    /// XOR + popcount via the Mula nibble-LUT algorithm: per 256-bit
    /// vector, split bytes into nibbles, look each nibble's popcount up
    /// with `_mm256_shuffle_epi8`, and horizontally sum the byte counts
    /// into four u64 lanes with `_mm256_sad_epu8`. Processes 8 words
    /// (two vectors) per iteration.
    #[target_feature(enable = "avx2")]
    unsafe fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let mut i = 0usize;
        while i + 8 <= n {
            let x0 = _mm256_xor_si256(
                _mm256_loadu_si256(ap.add(i).cast()),
                _mm256_loadu_si256(bp.add(i).cast()),
            );
            let x1 = _mm256_xor_si256(
                _mm256_loadu_si256(ap.add(i + 4).cast()),
                _mm256_loadu_si256(bp.add(i + 4).cast()),
            );
            let c0 = _mm256_add_epi8(
                _mm256_shuffle_epi8(lut, _mm256_and_si256(x0, low_mask)),
                _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi32(x0, 4), low_mask)),
            );
            let c1 = _mm256_add_epi8(
                _mm256_shuffle_epi8(lut, _mm256_and_si256(x1, low_mask)),
                _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi32(x1, 4), low_mask)),
            );
            // Byte counts top out at 8 per byte and 16 after the add,
            // far below overflow; SAD widens them to u64 lanes.
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_add_epi8(c0, c1), zero));
            i += 8;
        }
        if i + 4 <= n {
            let x = _mm256_xor_si256(
                _mm256_loadu_si256(ap.add(i).cast()),
                _mm256_loadu_si256(bp.add(i).cast()),
            );
            let c = _mm256_add_epi8(
                _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low_mask)),
                _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi32(x, 4), low_mask)),
            );
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, zero));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total: u64 = lanes.iter().sum();
        for (x, y) in a[i..].iter().zip(&b[i..]) {
            total += u64::from((x ^ y).count_ones());
        }
        total
    }

    /// XOR + the hardware 64-bit popcount (`vpopcntdq`), 8 words per
    /// vector.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn xor_popcount_avx512(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            let x = _mm512_xor_si512(
                _mm512_loadu_si512(ap.add(i).cast()),
                _mm512_loadu_si512(bp.add(i).cast()),
            );
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64;
        for (x, y) in a[i..].iter().zip(&b[i..]) {
            total += u64::from((x ^ y).count_ones());
        }
        total
    }
}

/// Codes for the process-wide selection (0 = not yet resolved).
const ACTIVE_UNSET: u8 = 0;
const ACTIVE_SCALAR: u8 = 1;
const ACTIVE_AVX2: u8 = 2;
const ACTIVE_AVX512: u8 = 3;

static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

fn code_of(dispatch: KernelDispatch) -> u8 {
    match dispatch.imp {
        Impl::Scalar => ACTIVE_SCALAR,
        #[cfg(target_arch = "x86_64")]
        Impl::Avx2 => ACTIVE_AVX2,
        #[cfg(target_arch = "x86_64")]
        Impl::Avx512 => ACTIVE_AVX512,
    }
}

fn dispatch_of(code: u8) -> Option<KernelDispatch> {
    let imp = match code {
        ACTIVE_SCALAR => Impl::Scalar,
        #[cfg(target_arch = "x86_64")]
        ACTIVE_AVX2 => Impl::Avx2,
        #[cfg(target_arch = "x86_64")]
        ACTIVE_AVX512 => Impl::Avx512,
        _ => return None,
    };
    Some(KernelDispatch { imp })
}

/// The kernel requested by the `HDOMS_KERNEL` environment variable
/// (default [`KernelKind::Auto`]).
///
/// # Panics
///
/// Panics on an unrecognised spelling — a mistyped override silently
/// running the wrong kernel would defeat the point of setting it.
pub fn env_kind() -> KernelKind {
    match std::env::var("HDOMS_KERNEL") {
        Ok(value) => KernelKind::parse(&value)
            .unwrap_or_else(|| panic!("HDOMS_KERNEL={value:?} is not one of scalar|simd|auto")),
        Err(_) => KernelKind::Auto,
    }
}

/// The process-wide active kernel: resolved from `HDOMS_KERNEL` on
/// first use, swappable with [`set_active`]. Every similarity in the
/// workspace ([`crate::similarity`], the search backends, the RRAM
/// model's partial MACs) routes through this selection.
pub fn active() -> KernelDispatch {
    if let Some(dispatch) = dispatch_of(ACTIVE.load(Ordering::Relaxed)) {
        return dispatch;
    }
    let resolved = KernelDispatch::resolve(env_kind());
    ACTIVE.store(code_of(resolved), Ordering::Relaxed);
    resolved
}

/// Override the process-wide kernel, returning what the request
/// resolved to. Output bytes are identical across kernels (the
/// equivalence suites' contract), so swapping mid-run only changes
/// speed — the equivalence tests and `kernel_bench` use exactly that to
/// compare variants inside one process.
pub fn set_active(kind: KernelKind) -> KernelDispatch {
    let resolved = KernelDispatch::resolve(kind);
    ACTIVE.store(code_of(resolved), Ordering::Relaxed);
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_kinds() {
        assert_eq!(KernelKind::parse("scalar"), Some(KernelKind::Scalar));
        assert_eq!(KernelKind::parse("SIMD"), Some(KernelKind::Simd));
        assert_eq!(KernelKind::parse("Auto"), Some(KernelKind::Auto));
        assert_eq!(KernelKind::parse("gpu"), None);
    }

    #[test]
    fn scalar_never_reports_simd() {
        let scalar = KernelDispatch::scalar();
        assert_eq!(scalar.name(), "scalar");
        assert!(!scalar.is_simd());
    }

    #[test]
    fn resolve_simd_is_available_or_scalar() {
        let simd = KernelDispatch::resolve(KernelKind::Simd);
        // Whatever the box, the request resolves to something runnable.
        let a = [0xdead_beef_0123_4567u64; 9];
        let b = [0x0fed_cba9_8765_4321u64; 9];
        assert_eq!(
            simd.xor_popcount(&a, &b),
            KernelDispatch::scalar().xor_popcount(&a, &b)
        );
    }

    #[test]
    fn variants_agree_on_random_words() {
        let mut rng = StdRng::seed_from_u64(77);
        let scalar = KernelDispatch::scalar();
        let simd = KernelDispatch::simd();
        for len in [0usize, 1, 3, 4, 7, 8, 9, 16, 33, 128, 129] {
            let a: Vec<u64> = (0..len).map(|_| rand::Rng::gen(&mut rng)).collect();
            let b: Vec<u64> = (0..len).map(|_| rand::Rng::gen(&mut rng)).collect();
            let expected: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum();
            assert_eq!(scalar.xor_popcount(&a, &b), expected, "scalar len {len}");
            assert_eq!(simd.xor_popcount(&a, &b), expected, "simd len {len}");
        }
    }

    #[test]
    fn tail_bits_are_masked() {
        // 100-bit vectors whose second word carries garbage above bit 36:
        // every variant must ignore it.
        let clean_a = [u64::MAX, (1u64 << 36) - 1];
        let clean_b = [0u64, 0u64];
        let dirty_b = [0u64, u64::MAX << 36];
        for k in [KernelDispatch::scalar(), KernelDispatch::simd()] {
            assert_eq!(k.hamming_words(100, &clean_a, &clean_b), 100);
            assert_eq!(
                k.hamming_words(100, &clean_a, &dirty_b),
                100,
                "{} let padding bits into a distance",
                k.name()
            );
            assert_eq!(k.dot_words(100, &clean_a, &dirty_b), -100);
        }
    }

    #[test]
    fn set_active_swaps_and_sticks() {
        let scalar = set_active(KernelKind::Scalar);
        assert_eq!(scalar, KernelDispatch::scalar());
        assert_eq!(active(), scalar);
        let auto = set_active(KernelKind::Auto);
        assert_eq!(active(), auto);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn xor_popcount_rejects_mismatched_lengths() {
        let _ = KernelDispatch::scalar().xor_popcount(&[0], &[0, 0]);
    }
}
