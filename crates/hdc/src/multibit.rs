//! Multi-bit hypervectors and the ID precision scheme of §4.2.2.
//!
//! The paper observes that MLC hardware can store several bits per cell at
//! no extra area cost, so the position (`ID`) hypervectors need not be
//! binary: with a 3-bit alphabet `{-4,…,-1, +1,…,+4}` the encoding MAC
//! carries more information into the final `Sign`, improving identification
//! counts (Fig. 11) with zero additional cycles.

use crate::hv::BinaryHypervector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bit width of ID hypervector components (§4.2.2).
///
/// `Bits1` is the conventional binary scheme; `Bits3` is the paper's
/// best-performing setting (`ID ∈ {-4,…,4} \ {0}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdPrecision {
    /// Components in `{-1, +1}`.
    Bits1,
    /// Components in `{-2, -1, +1, +2}`.
    Bits2,
    /// Components in `{-4, …, -1, +1, …, +4}`.
    Bits3,
}

impl IdPrecision {
    /// All precisions, for sweeps.
    pub const ALL: [IdPrecision; 3] = [IdPrecision::Bits1, IdPrecision::Bits2, IdPrecision::Bits3];

    /// Largest magnitude in the alphabet (1, 2 or 4).
    pub fn max_abs(self) -> i8 {
        match self {
            IdPrecision::Bits1 => 1,
            IdPrecision::Bits2 => 2,
            IdPrecision::Bits3 => 4,
        }
    }

    /// Number of bits per component (1, 2 or 3).
    pub fn bits(self) -> u8 {
        match self {
            IdPrecision::Bits1 => 1,
            IdPrecision::Bits2 => 2,
            IdPrecision::Bits3 => 3,
        }
    }

    /// The signed alphabet (zero excluded — a zero weight would waste a
    /// differential pair and encode no information).
    pub fn alphabet(self) -> Vec<i8> {
        let m = self.max_abs();
        (-m..=m).filter(|&v| v != 0).collect()
    }

    /// Sample one component uniformly from the alphabet.
    pub fn sample<R: Rng>(self, rng: &mut R) -> i8 {
        let m = i16::from(self.max_abs());
        // Uniform over 2m values: {-m..-1, 1..m}.
        let v = rng.gen_range(0..2 * m);
        let signed = if v < m { v - m } else { v - m + 1 };
        signed as i8
    }
}

/// A hypervector with small signed integer components, used for position
/// (`ID`) hypervectors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MultiBitHypervector {
    precision: IdPrecision,
    components: Vec<i8>,
}

impl MultiBitHypervector {
    /// A uniformly random multi-bit hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn random<R: Rng>(rng: &mut R, dim: usize, precision: IdPrecision) -> MultiBitHypervector {
        assert!(dim > 0, "hypervector dimension must be positive");
        MultiBitHypervector {
            precision,
            components: (0..dim).map(|_| precision.sample(rng)).collect(),
        }
    }

    /// Build from raw components.
    ///
    /// # Panics
    ///
    /// Panics if any component is zero or exceeds the precision's range, or
    /// if `components` is empty.
    pub fn from_components(components: Vec<i8>, precision: IdPrecision) -> MultiBitHypervector {
        assert!(
            !components.is_empty(),
            "hypervector dimension must be positive"
        );
        let m = precision.max_abs();
        for &c in &components {
            assert!(
                c != 0 && c.abs() <= m,
                "component {c} outside alphabet ±1..±{m}"
            );
        }
        MultiBitHypervector {
            precision,
            components,
        }
    }

    /// The component precision.
    pub fn precision(&self) -> IdPrecision {
        self.precision
    }

    /// The components.
    #[inline]
    pub fn components(&self) -> &[i8] {
        &self.components
    }

    /// Dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Dot product with a binary hypervector (`±1` per dimension) — the
    /// element-wise multiply inside the encoding MAC of Eq. (1).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn dot_binary(&self, other: &BinaryHypervector) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let mut acc = 0i64;
        for (i, &c) in self.components.iter().enumerate() {
            if other.bit(i) {
                acc += i64::from(c);
            } else {
                acc -= i64::from(c);
            }
        }
        acc
    }

    /// Collapse to a binary hypervector by sign (positive → `+1`).
    pub fn to_binary(&self) -> BinaryHypervector {
        let mut hv = BinaryHypervector::zeros(self.dim());
        for (i, &c) in self.components.iter().enumerate() {
            hv.set(i, c > 0);
        }
        hv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alphabets() {
        assert_eq!(IdPrecision::Bits1.alphabet(), vec![-1, 1]);
        assert_eq!(IdPrecision::Bits2.alphabet(), vec![-2, -1, 1, 2]);
        assert_eq!(
            IdPrecision::Bits3.alphabet(),
            vec![-4, -3, -2, -1, 1, 2, 3, 4]
        );
    }

    #[test]
    fn sample_stays_in_alphabet_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in IdPrecision::ALL {
            let alphabet = p.alphabet();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..2000 {
                let v = p.sample(&mut rng);
                assert!(alphabet.contains(&v), "{v} not in alphabet of {p:?}");
                seen.insert(v);
            }
            assert_eq!(seen.len(), alphabet.len(), "all symbols reachable");
        }
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 16_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts
                .entry(IdPrecision::Bits3.sample(&mut rng))
                .or_insert(0usize) += 1;
        }
        let expect = n as f64 / 8.0;
        for (v, c) in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "symbol {v} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn dot_binary_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mb = MultiBitHypervector::random(&mut rng, 500, IdPrecision::Bits3);
        let b = BinaryHypervector::random(&mut rng, 500);
        let naive: i64 = mb
            .components()
            .iter()
            .enumerate()
            .map(|(i, &c)| i64::from(c) * i64::from(b.component(i)))
            .sum();
        assert_eq!(mb.dot_binary(&b), naive);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_binary_checks_dims() {
        let mut rng = StdRng::seed_from_u64(4);
        let mb = MultiBitHypervector::random(&mut rng, 10, IdPrecision::Bits1);
        let b = BinaryHypervector::zeros(11);
        let _ = mb.dot_binary(&b);
    }

    #[test]
    fn to_binary_signs() {
        let mb = MultiBitHypervector::from_components(vec![3, -2, 1, -4], IdPrecision::Bits3);
        let b = mb.to_binary();
        assert_eq!(b.to_bipolar(), vec![1, -1, 1, -1]);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn from_components_validates() {
        let _ = MultiBitHypervector::from_components(vec![3], IdPrecision::Bits1);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn from_components_rejects_zero() {
        let _ = MultiBitHypervector::from_components(vec![0], IdPrecision::Bits3);
    }
}
