//! Exact Hamming similarity search over collections of hypervectors.
//!
//! This is the software ground truth the in-memory (RRAM) search
//! approximates: given a query hypervector and a candidate subset of
//! reference hypervectors, return the best (or top-k) matches by bipolar
//! dot product.
//!
//! Scans run on the process-wide active kernel
//! ([`crate::kernels::active`]) in [`REFERENCE_TILE`]-sized reference
//! tiles — the 1 × R slice of the query-blocked batch kernel — so the
//! dispatched XOR+popcount primitive is resolved once per scan, not once
//! per pair. Results are identical to the pairwise formulation: the
//! best-hit tie-break (highest score, then lowest reference id) is
//! independent of scan order.

use crate::hv::BinaryHypervector;
use crate::kernels::{self, KernelDispatch, REFERENCE_TILE};
use crate::parallel::par_map;
use serde::{Deserialize, Serialize};

/// One search hit: a reference index and its bipolar dot-product score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hit {
    /// Index of the reference hypervector (library entry id).
    pub reference: u32,
    /// Bipolar dot product `D - 2·hamming` (higher is more similar).
    pub score: i64,
}

/// Tiled best-of-scan over resolved word slices: score `ids` against
/// `query` one [`REFERENCE_TILE`] at a time on `kernel`, keeping the
/// (max score, min id) winner. Shared by every flat scan in the
/// workspace via the public wrappers.
fn scan_best<'a>(
    kernel: KernelDispatch,
    dim: usize,
    query: &[u64],
    ids: &[u32],
    words_of: impl Fn(u32) -> &'a [u64],
) -> Option<Hit> {
    let mut best: Option<Hit> = None;
    let mut scores = [0i64; REFERENCE_TILE];
    let mut tile: Vec<&[u64]> = Vec::with_capacity(REFERENCE_TILE.min(ids.len()));
    for chunk in ids.chunks(REFERENCE_TILE) {
        tile.clear();
        tile.extend(chunk.iter().map(|&id| words_of(id)));
        let out = &mut scores[..chunk.len()];
        kernel.dot_many(dim, query, &tile, out);
        for (&reference, &score) in chunk.iter().zip(out.iter()) {
            let better = match best {
                None => true,
                Some(b) => score > b.score || (score == b.score && reference < b.reference),
            };
            if better {
                best = Some(Hit { reference, score });
            }
        }
    }
    best
}

/// The tiled best-of-scan for callers that already hold word slices —
/// the seam the mapped (zero-copy) backends use to feed `.hdx` buffer
/// words straight into the tiled kernel.
///
/// # Panics
///
/// Panics if a candidate id is out of range for `words_of`, or a slice's
/// length is not `ceil(dim / 64)`.
pub fn best_hit_words<'a>(
    kernel: KernelDispatch,
    dim: usize,
    query: &[u64],
    candidates: &[u32],
    words_of: impl Fn(u32) -> &'a [u64],
) -> Option<Hit> {
    scan_best(kernel, dim, query, candidates, words_of)
}

/// Find the best-scoring reference among `candidates`.
///
/// Returns `None` when `candidates` is empty. Ties resolve to the lowest
/// reference index, making results independent of candidate order.
///
/// # Panics
///
/// Panics if a candidate index is out of bounds for `references`.
pub fn search_best(
    query: &BinaryHypervector,
    references: &[BinaryHypervector],
    candidates: impl IntoIterator<Item = u32>,
) -> Option<Hit> {
    let ids: Vec<u32> = candidates.into_iter().collect();
    scan_best(
        kernels::active(),
        query.dim(),
        query.words(),
        &ids,
        |reference| references[reference as usize].words(),
    )
}

/// Find the `k` best-scoring references among `candidates`, sorted by
/// descending score (ties by ascending reference index).
///
/// # Panics
///
/// Panics if a candidate index is out of bounds for `references`.
pub fn search_top_k(
    query: &BinaryHypervector,
    references: &[BinaryHypervector],
    candidates: impl IntoIterator<Item = u32>,
    k: usize,
) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let kernel = kernels::active();
    let dim = query.dim();
    let ids: Vec<u32> = candidates.into_iter().collect();
    let mut hits: Vec<Hit> = Vec::with_capacity(ids.len());
    let mut scores = [0i64; REFERENCE_TILE];
    let mut tile: Vec<&[u64]> = Vec::with_capacity(REFERENCE_TILE.min(ids.len()));
    for chunk in ids.chunks(REFERENCE_TILE) {
        tile.clear();
        tile.extend(chunk.iter().map(|&id| references[id as usize].words()));
        let out = &mut scores[..chunk.len()];
        kernel.dot_many(dim, query.words(), &tile, out);
        hits.extend(
            chunk
                .iter()
                .zip(out.iter())
                .map(|(&reference, &score)| Hit { reference, score }),
        );
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.reference.cmp(&b.reference)));
    hits.truncate(k);
    hits
}

/// Batched best-match search: for each query (paired with its candidate
/// list), find the best hit, in parallel on `threads` threads.
pub fn search_batch(
    queries: &[(BinaryHypervector, Vec<u32>)],
    references: &[BinaryHypervector],
    threads: usize,
) -> Vec<Option<Hit>> {
    par_map(queries, threads, |(query, candidates)| {
        search_best(query, references, candidates.iter().copied())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn refs(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| BinaryHypervector::random(&mut rng, dim))
            .collect()
    }

    #[test]
    fn finds_exact_copy() {
        let references = refs(50, 512, 1);
        for (i, q) in references.iter().enumerate().step_by(7) {
            let hit = search_best(q, &references, 0..50).unwrap();
            assert_eq!(hit.reference, i as u32);
            assert_eq!(hit.score, 512);
        }
    }

    #[test]
    fn respects_candidate_subset() {
        let references = refs(20, 256, 2);
        let q = references[3].clone();
        // Exclude the true match from candidates.
        let hit = search_best(&q, &references, (0..20).filter(|&c| c != 3)).unwrap();
        assert_ne!(hit.reference, 3);
        assert!(hit.score < 256);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let references = refs(5, 128, 3);
        assert_eq!(search_best(&references[0], &references, []), None);
    }

    #[test]
    fn top_k_sorted_and_truncated() {
        let references = refs(30, 256, 4);
        let q = references[10].clone();
        let hits = search_top_k(&q, &references, 0..30, 5);
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].reference, 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_zero() {
        let references = refs(5, 128, 5);
        assert!(search_top_k(&references[0], &references, 0..5, 0).is_empty());
    }

    #[test]
    fn tie_breaks_to_lowest_index() {
        let a = BinaryHypervector::zeros(64);
        let references = vec![a.clone(), a.clone(), a.clone()];
        let hit = search_best(&a, &references, [2u32, 0, 1]).unwrap();
        assert_eq!(hit.reference, 0);
        let hits = search_top_k(&a, &references, [2u32, 0, 1], 3);
        assert_eq!(
            hits.iter().map(|h| h.reference).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let references = refs(40, 256, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<(BinaryHypervector, Vec<u32>)> = (0..10)
            .map(|_| {
                (
                    BinaryHypervector::random(&mut rng, 256),
                    (0..40).collect::<Vec<u32>>(),
                )
            })
            .collect();
        let seq: Vec<Option<Hit>> = queries
            .iter()
            .map(|(q, c)| search_best(q, &references, c.iter().copied()))
            .collect();
        assert_eq!(search_batch(&queries, &references, 4), seq);
    }

    #[test]
    fn tiled_scan_matches_pairwise_on_more_than_one_tile() {
        // 100 candidates = 3 full tiles + a ragged remainder; the tiled
        // scan must agree with a naive pairwise max on every query.
        let references = refs(100, 300, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let q = BinaryHypervector::random(&mut rng, 300);
            let naive = (0..100u32)
                .map(|r| Hit {
                    reference: r,
                    score: crate::similarity::dot(&q, &references[r as usize]),
                })
                .max_by(|a, b| a.score.cmp(&b.score).then(b.reference.cmp(&a.reference)))
                .unwrap();
            assert_eq!(search_best(&q, &references, 0..100), Some(naive));
        }
    }
}
