//! Item memories for ID-Level encoding (§3.2, §4.2.1).
//!
//! * The **ID memory** maps each m/z bin position to a quasi-orthogonal
//!   *position hypervector* (`ID_i`). Following §4.2.2 these may carry
//!   multi-bit components.
//! * The **level memory** maps each of `Q` quantised intensity levels to a
//!   binary *level hypervector* (`l_j`). `l_0` is random and each
//!   subsequent level flips `D/(2Q)` previously-unflipped bits of its
//!   predecessor, so similarity between levels falls off linearly with
//!   their distance — nearby intensities stay similar in hyperspace.
//! * The **chunked** level memory style implements the paper's co-design
//!   (§4.2.1): the `D` dimensions are split into equal chunks and all bits
//!   in a chunk share one value, letting the in-memory encoder feed level
//!   inputs chunk-by-chunk (MVM-style) instead of bit-serially.

use crate::hv::BinaryHypervector;
use crate::multibit::IdPrecision;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How level hypervectors are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LevelStyle {
    /// Fully random base vector with bit-granular flips (the conventional
    /// scheme; requires bit-serial input feeding in hardware).
    Random,
    /// Chunked level hypervectors (§4.2.1): all bits within one of
    /// `num_chunks` equal chunks share a value, enabling chunk-parallel
    /// (MVM-style) in-memory encoding.
    Chunked {
        /// Number of chunks `D` is divided into. Must satisfy
        /// `num_chunks >= 2 * q_levels` so each level can flip at least one
        /// whole chunk.
        num_chunks: usize,
    },
}

/// The position-ID item memory: one multi-bit hypervector per m/z bin.
///
/// Stored flattened (`num_positions × dim` components) for cache-friendly
/// sequential encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdMemory {
    num_positions: usize,
    dim: usize,
    precision: IdPrecision,
    data: Vec<i8>,
}

impl IdMemory {
    /// Generate deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_positions` or `dim` is zero.
    pub fn generate(
        seed: u64,
        num_positions: usize,
        dim: usize,
        precision: IdPrecision,
    ) -> IdMemory {
        assert!(num_positions > 0, "need at least one position");
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..num_positions * dim)
            .map(|_| precision.sample(&mut rng))
            .collect();
        IdMemory {
            num_positions,
            dim,
            precision,
            data,
        }
    }

    /// The ID hypervector components for `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= num_positions`.
    #[inline]
    pub fn id(&self, position: usize) -> &[i8] {
        assert!(
            position < self.num_positions,
            "position {position} out of bounds ({} positions)",
            self.num_positions
        );
        &self.data[position * self.dim..(position + 1) * self.dim]
    }

    /// Number of positions (m/z bins).
    pub fn num_positions(&self) -> usize {
        self.num_positions
    }

    /// Hypervector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Component precision.
    pub fn precision(&self) -> IdPrecision {
        self.precision
    }
}

/// The level item memory: `q` binary hypervectors with linearly decaying
/// mutual similarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMemory {
    dim: usize,
    q: usize,
    style: LevelStyle,
    levels: Vec<BinaryHypervector>,
    /// For [`LevelStyle::Chunked`]: per-level chunk values (`±1` per chunk),
    /// the form the in-memory encoder feeds into the array.
    chunk_values: Vec<Vec<i8>>,
}

impl LevelMemory {
    /// Generate deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`, if `dim / (2q) == 0` for the random style, or if
    /// `num_chunks < 2q` / `num_chunks > dim` for the chunked style.
    pub fn generate(seed: u64, dim: usize, q: usize, style: LevelStyle) -> LevelMemory {
        assert!(q >= 2, "need at least two quantisation levels");
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x001e_7e11);
        match style {
            LevelStyle::Random => {
                let flips_per_level = dim / (2 * q);
                assert!(
                    flips_per_level >= 1,
                    "dim {dim} too small for {q} levels (dim/(2q) must be ≥ 1)"
                );
                let mut perm: Vec<usize> = (0..dim).collect();
                perm.shuffle(&mut rng);
                let mut levels = Vec::with_capacity(q);
                let mut current = BinaryHypervector::random(&mut rng, dim);
                levels.push(current.clone());
                for j in 1..q {
                    for &d in &perm[(j - 1) * flips_per_level..j * flips_per_level] {
                        current.flip(d);
                    }
                    levels.push(current.clone());
                }
                LevelMemory {
                    dim,
                    q,
                    style,
                    levels,
                    chunk_values: Vec::new(),
                }
            }
            LevelStyle::Chunked { num_chunks } => {
                assert!(
                    num_chunks >= 2 * q,
                    "num_chunks {num_chunks} must be at least 2q = {}",
                    2 * q
                );
                assert!(
                    num_chunks <= dim,
                    "num_chunks {num_chunks} cannot exceed dim {dim}"
                );
                let chunk_flips = num_chunks / (2 * q);
                let mut perm: Vec<usize> = (0..num_chunks).collect();
                perm.shuffle(&mut rng);
                let mut current: Vec<i8> = (0..num_chunks)
                    .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                    .collect();
                let mut chunk_values = Vec::with_capacity(q);
                chunk_values.push(current.clone());
                for j in 1..q {
                    for &c in &perm[(j - 1) * chunk_flips..j * chunk_flips] {
                        current[c] = -current[c];
                    }
                    chunk_values.push(current.clone());
                }
                let levels = chunk_values
                    .iter()
                    .map(|cv| expand_chunks(cv, dim))
                    .collect();
                LevelMemory {
                    dim,
                    q,
                    style,
                    levels,
                    chunk_values,
                }
            }
        }
    }

    /// The level hypervector for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= q`.
    #[inline]
    pub fn level(&self, level: usize) -> &BinaryHypervector {
        &self.levels[level]
    }

    /// For chunked memories, the per-chunk values (`±1`) of `level`; empty
    /// slice family for the random style.
    pub fn chunk_values(&self, level: usize) -> Option<&[i8]> {
        self.chunk_values.get(level).map(Vec::as_slice)
    }

    /// Quantise a normalised intensity in `[0, 1]` to a level index in
    /// `0..q`.
    ///
    /// Values outside `[0, 1]` are clamped — preprocessing normalises to
    /// that range, but defensive clamping keeps corrupt inputs from
    /// panicking deep inside encoding.
    #[inline]
    pub fn quantize(&self, intensity: f32) -> usize {
        let clamped = intensity.clamp(0.0, 1.0);
        ((f64::from(clamped) * (self.q as f64 - 1.0)).round()) as usize
    }

    /// Number of levels `Q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Hypervector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The generation style.
    pub fn style(&self) -> LevelStyle {
        self.style
    }
}

/// Expand per-chunk values into a full binary hypervector. Chunks are the
/// contiguous ranges `[c*ceil(dim/n), (c+1)*ceil(dim/n))` clipped to `dim`.
fn expand_chunks(chunk_values: &[i8], dim: usize) -> BinaryHypervector {
    let n = chunk_values.len();
    let chunk_size = dim.div_ceil(n);
    let mut hv = BinaryHypervector::zeros(dim);
    for (c, &v) in chunk_values.iter().enumerate() {
        if v > 0 {
            let start = c * chunk_size;
            let end = ((c + 1) * chunk_size).min(dim);
            for d in start..end {
                hv.set(d, true);
            }
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::hamming_distance;

    #[test]
    fn id_memory_deterministic_and_distinct() {
        let a = IdMemory::generate(5, 100, 256, IdPrecision::Bits3);
        let b = IdMemory::generate(5, 100, 256, IdPrecision::Bits3);
        assert_eq!(a, b);
        assert_ne!(a.id(0), a.id(1));
    }

    #[test]
    fn id_memory_respects_precision() {
        for p in IdPrecision::ALL {
            let m = IdMemory::generate(1, 10, 128, p);
            for pos in 0..10 {
                for &c in m.id(pos) {
                    assert!(c != 0 && c.abs() <= p.max_abs());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn id_memory_bounds() {
        let m = IdMemory::generate(1, 4, 64, IdPrecision::Bits1);
        let _ = m.id(4);
    }

    #[test]
    fn level_memory_linear_similarity_decay() {
        let q = 16;
        let dim = 2048;
        let lm = LevelMemory::generate(3, dim, q, LevelStyle::Random);
        let f = dim / (2 * q);
        for i in 0..q {
            for j in i..q {
                let hd = hamming_distance(lm.level(i), lm.level(j)) as usize;
                assert_eq!(hd, (j - i) * f, "levels {i},{j}");
            }
        }
    }

    #[test]
    fn extreme_levels_not_too_similar() {
        let lm = LevelMemory::generate(3, 4096, 32, LevelStyle::Random);
        let hd = hamming_distance(lm.level(0), lm.level(31));
        // 31 * 4096/64 = 1984 ≈ half the dimensions
        assert!(hd as usize >= 4096 / 2 - 4096 / 16);
    }

    #[test]
    fn quantize_boundaries() {
        let lm = LevelMemory::generate(1, 512, 16, LevelStyle::Random);
        assert_eq!(lm.quantize(0.0), 0);
        assert_eq!(lm.quantize(1.0), 15);
        assert_eq!(lm.quantize(0.5), 8); // round(7.5) = 8 (ties away from zero)
        assert_eq!(lm.quantize(-3.0), 0);
        assert_eq!(lm.quantize(7.0), 15);
    }

    #[test]
    fn chunked_levels_have_constant_chunks() {
        let dim = 1024;
        let n = 128;
        let lm = LevelMemory::generate(9, dim, 16, LevelStyle::Chunked { num_chunks: n });
        let chunk_size = dim.div_ceil(n);
        for level in 0..16 {
            let hv = lm.level(level);
            let cv = lm.chunk_values(level).unwrap();
            assert_eq!(cv.len(), n);
            for (c, &chunk_value) in cv.iter().enumerate() {
                let expect = chunk_value > 0;
                for d in c * chunk_size..((c + 1) * chunk_size).min(dim) {
                    assert_eq!(hv.bit(d), expect, "level {level} chunk {c} dim {d}");
                }
            }
        }
    }

    #[test]
    fn chunked_similarity_still_decays() {
        let lm = LevelMemory::generate(9, 2048, 16, LevelStyle::Chunked { num_chunks: 256 });
        let d01 = hamming_distance(lm.level(0), lm.level(1));
        let d07 = hamming_distance(lm.level(0), lm.level(7));
        let d015 = hamming_distance(lm.level(0), lm.level(15));
        assert!(d01 < d07 && d07 < d015);
    }

    #[test]
    #[should_panic(expected = "must be at least 2q")]
    fn chunked_rejects_too_few_chunks() {
        let _ = LevelMemory::generate(1, 1024, 32, LevelStyle::Chunked { num_chunks: 32 });
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn random_rejects_tiny_dim() {
        let _ = LevelMemory::generate(1, 16, 32, LevelStyle::Random);
    }

    #[test]
    fn random_style_has_no_chunk_values() {
        let lm = LevelMemory::generate(1, 512, 8, LevelStyle::Random);
        assert_eq!(lm.chunk_values(0), None);
    }
}
