//! The kernel-equivalence contract: every distance the dispatch layer
//! can compute — scalar, AVX2, AVX-512, single-pair or blocked — is the
//! same integer, for any dimension (tail words included), any word
//! pattern (all-zeros and all-ones edges included), and any block shape
//! (ragged Q/R remainders included). Output bytes never depend on which
//! kernel ran; only wall-clock does.
//!
//! A separate regression section poisons the padding bits beyond `dim`
//! in the final word — bits the [`hdoms_hdc::hv::HvRef::new_unchecked`]
//! release path never validates — and asserts no kernel lets them reach
//! a distance.

use hdoms_hdc::hv::BinaryHypervector;
use hdoms_hdc::kernels::{set_active, KernelDispatch, KernelKind, QUERY_TILE, REFERENCE_TILE};
use hdoms_hdc::similarity::{dot, hamming_distance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The reference implementation everything is checked against: plain
/// per-word XOR + `count_ones`, tail masked by construction.
fn naive_hamming(dim: usize, a: &[u64], b: &[u64]) -> u32 {
    let mut total = 0u32;
    for i in 0..dim {
        let bit_a = (a[i / 64] >> (i % 64)) & 1;
        let bit_b = (b[i / 64] >> (i % 64)) & 1;
        total += u32::from(bit_a != bit_b);
    }
    total
}

fn naive_matching_bits(a: &[u64], b: &[u64], start: usize, end: usize) -> u32 {
    (start..end)
        .filter(|&i| (a[i / 64] >> (i % 64)) & 1 == (b[i / 64] >> (i % 64)) & 1)
        .count() as u32
}

/// `count` packed `dim`-bit word blocks from a seeded generator:
/// random patterns plus the all-zeros / all-ones edges, tails kept
/// clean (the invariant the owned types maintain).
fn words_from_seed(seed: u64, dim: usize, count: usize) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dim.div_ceil(64);
    let rem = dim % 64;
    let tail_mask = if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    };
    (0..count)
        .map(|i| {
            let mut words: Vec<u64> = match i % 4 {
                0 => vec![0u64; n],
                1 => vec![u64::MAX; n],
                _ => (0..n).map(|_| rng.gen()).collect(),
            };
            if let Some(last) = words.last_mut() {
                *last &= tail_mask;
            }
            words
        })
        .collect()
}

/// Both kernel variants a box can run (on a no-SIMD machine the second
/// entry resolves to scalar, and the suite degenerates to scalar ≡
/// scalar — still a valid run, just a vacuous one).
fn variants() -> [KernelDispatch; 2] {
    [KernelDispatch::scalar(), KernelDispatch::simd()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Pairwise: hamming/dot agree with the naive reference for every
    /// variant, across dims with and without tail words, including dims
    /// smaller than one 256/512-bit vector.
    #[test]
    fn pairwise_kernels_match_naive(
        dim in 1usize..700,
        seed in any::<u64>(),
    ) {
        let blocks = words_from_seed(seed, dim, 8);
        for pair in blocks.chunks(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let expected = naive_hamming(dim, a, b);
            for kernel in variants() {
                prop_assert_eq!(
                    kernel.hamming_words(dim, a, b),
                    expected,
                    "{} hamming at dim {}", kernel.name(), dim
                );
                prop_assert_eq!(
                    kernel.dot_words(dim, a, b),
                    dim as i64 - 2 * i64::from(expected),
                    "{} dot at dim {}", kernel.name(), dim
                );
            }
        }
    }

    /// matching_bits: every variant agrees with the naive bit loop on
    /// arbitrary sub-ranges (partial edge words, single-word ranges,
    /// ranges spanning many full words).
    #[test]
    fn matching_bits_kernels_match_naive(
        dim in 2usize..700,
        seed in any::<u64>(),
        range_seed in any::<u64>(),
    ) {
        let blocks = words_from_seed(seed, dim, 2);
        let (a, b) = (&blocks[0], &blocks[1]);
        let mut rng = StdRng::seed_from_u64(range_seed);
        for _ in 0..4 {
            let start = rng.gen_range(0..dim - 1);
            let end = rng.gen_range(start + 1..=dim);
            let expected = naive_matching_bits(a, b, start, end);
            for kernel in variants() {
                prop_assert_eq!(
                    kernel.matching_bits_words(a, b, start, end),
                    expected,
                    "{} matching_bits {}..{} at dim {}", kernel.name(), start, end, dim
                );
            }
        }
    }

    /// Blocked ≡ pairwise: score_block and hamming_block produce, for
    /// every (q, r) cell, exactly the single-pair result — over ragged
    /// Q (not a multiple of the query tile) and ragged R (not a
    /// multiple of the reference tile), with Q and R both above and
    /// below one tile.
    #[test]
    fn blocked_kernels_match_pairwise(
        dim in 1usize..400,
        q_count in 1usize..(2 * QUERY_TILE + 3),
        r_count in 1usize..(REFERENCE_TILE + 5),
        seed in any::<u64>(),
    ) {
        let q_blocks = words_from_seed(seed, dim, q_count);
        let r_blocks = words_from_seed(seed ^ 0xabcd_ef01, dim, r_count);
        let queries: Vec<&[u64]> = q_blocks.iter().map(Vec::as_slice).collect();
        let references: Vec<&[u64]> = r_blocks.iter().map(Vec::as_slice).collect();
        for kernel in variants() {
            let mut dots = vec![0i64; q_count * r_count];
            let mut hams = vec![0u32; q_count * r_count];
            kernel.score_block(dim, &queries, &references, &mut dots);
            kernel.hamming_block(dim, &queries, &references, &mut hams);
            for (qi, query) in queries.iter().enumerate() {
                for (ri, reference) in references.iter().enumerate() {
                    let expected = kernel.hamming_words(dim, query, reference);
                    prop_assert_eq!(
                        hams[qi * r_count + ri],
                        expected,
                        "{} hamming_block cell ({}, {})", kernel.name(), qi, ri
                    );
                    prop_assert_eq!(
                        dots[qi * r_count + ri],
                        dim as i64 - 2 * i64::from(expected),
                        "{} score_block cell ({}, {})", kernel.name(), qi, ri
                    );
                }
            }
        }
    }

    /// dot_many (the 1 × R slice the flat scans use) equals the
    /// pairwise dot for every slot.
    #[test]
    fn dot_many_matches_pairwise(
        dim in 1usize..400,
        r_count in 1usize..(REFERENCE_TILE + 5),
        seed in any::<u64>(),
    ) {
        let q_block = words_from_seed(seed, dim, 3);
        let r_blocks = words_from_seed(seed ^ 0x1357_9bdf, dim, r_count);
        let query = q_block[2].as_slice();
        let references: Vec<&[u64]> = r_blocks.iter().map(Vec::as_slice).collect();
        for kernel in variants() {
            let mut out = vec![0i64; r_count];
            kernel.dot_many(dim, query, &references, &mut out);
            for (ri, reference) in references.iter().enumerate() {
                prop_assert_eq!(out[ri], kernel.dot_words(dim, query, reference));
            }
        }
    }

    /// The public similarity API gives the same integers whichever
    /// kernel the process-wide selection points at — the contract that
    /// makes `HDOMS_KERNEL` purely a performance knob.
    #[test]
    fn global_swap_is_invisible(dim in 1usize..500, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BinaryHypervector::random(&mut rng, dim);
        let b = BinaryHypervector::random(&mut rng, dim);
        set_active(KernelKind::Scalar);
        let scalar_hamming = hamming_distance(&a, &b);
        let scalar_dot = dot(&a, &b);
        set_active(KernelKind::Auto);
        prop_assert_eq!(hamming_distance(&a, &b), scalar_hamming);
        prop_assert_eq!(dot(&a, &b), scalar_dot);
    }
}

/// The tail-word hazard regression: views built through the release
/// (`new_unchecked`) path can carry garbage in the padding bits of the
/// final word. The kernels take raw word slices here — the owned types
/// would rightly reject these — and must mask the padding themselves in
/// every entry point, single-pair and blocked.
#[test]
fn poisoned_padding_bits_never_reach_a_distance() {
    let mut rng = StdRng::seed_from_u64(0xbad_7a11);
    for dim in [1usize, 63, 65, 100, 127, 129, 300, 511, 700] {
        let rem = dim % 64;
        if rem == 0 {
            continue; // no padding to poison
        }
        let clean = words_from_seed(rng.gen(), dim, 4);
        let poison = |words: &[u64]| {
            let mut dirty = words.to_vec();
            *dirty.last_mut().unwrap() |= u64::MAX << rem;
            dirty
        };
        let (a, b) = (&clean[2], &clean[3]);
        let dirty_a = poison(a);
        let dirty_b = poison(b);
        for kernel in [KernelDispatch::scalar(), KernelDispatch::simd()] {
            let expected = kernel.hamming_words(dim, a, b);
            for (x, y) in [
                (a.as_slice(), dirty_b.as_slice()),
                (dirty_a.as_slice(), b.as_slice()),
                (dirty_a.as_slice(), dirty_b.as_slice()),
            ] {
                assert_eq!(
                    kernel.hamming_words(dim, x, y),
                    expected,
                    "{} hamming read padding bits at dim {dim}",
                    kernel.name()
                );
                assert_eq!(
                    kernel.dot_words(dim, x, y),
                    dim as i64 - 2 * i64::from(expected),
                    "{} dot read padding bits at dim {dim}",
                    kernel.name()
                );
            }
            // The blocked kernels mask the same way.
            let queries = [dirty_a.as_slice(), a.as_slice()];
            let references = [dirty_b.as_slice(), b.as_slice()];
            let mut out = [0u32; 4];
            kernel.hamming_block(dim, &queries, &references, &mut out);
            assert_eq!(
                out,
                [expected; 4],
                "{} hamming_block read padding bits at dim {dim}",
                kernel.name()
            );
        }
    }
}

/// matching_bits over a range that ends inside the final word must also
/// ignore poisoned padding (the range mask and the tail mask coincide
/// there).
#[test]
fn poisoned_padding_bits_never_reach_matching_bits() {
    let dim = 200usize; // 3 words + 8-bit tail
    let rem = dim % 64;
    let clean = words_from_seed(42, dim, 2);
    let mut dirty = clean[1].clone();
    *dirty.last_mut().unwrap() |= u64::MAX << rem;
    for kernel in [KernelDispatch::scalar(), KernelDispatch::simd()] {
        for (start, end) in [(0usize, dim), (150, dim), (dim - 1, dim)] {
            assert_eq!(
                kernel.matching_bits_words(&clean[0], &dirty, start, end),
                kernel.matching_bits_words(&clean[0], &clean[1], start, end),
                "{} matching_bits {start}..{end} read padding bits",
                kernel.name()
            );
        }
    }
}
