//! Property-based tests for the HDC substrate.

use hdoms_hdc::encoder::{EncoderConfig, IdLevelEncoder};
use hdoms_hdc::hv::BinaryHypervector;
use hdoms_hdc::item_memory::{LevelMemory, LevelStyle};
use hdoms_hdc::multibit::{IdPrecision, MultiBitHypervector};
use hdoms_hdc::parallel::par_map;
use hdoms_hdc::similarity::{dot, hamming_distance, normalized_similarity};
use hdoms_ms::preprocess::{PreprocessConfig, Preprocessor};
use hdoms_ms::spectrum::{Peak, Spectrum, SpectrumOrigin};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_hv(dim: usize) -> impl Strategy<Value = BinaryHypervector> {
    any::<u64>()
        .prop_map(move |seed| BinaryHypervector::random(&mut StdRng::seed_from_u64(seed), dim))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packing invariant: tail bits beyond `dim` stay zero through any
    /// sequence of set/flip operations.
    #[test]
    fn tail_bits_stay_masked(
        dim in 1usize..200,
        ops in proptest::collection::vec((any::<usize>(), any::<bool>()), 0..64),
    ) {
        let mut hv = BinaryHypervector::zeros(dim);
        for (i, value) in ops {
            let idx = i % dim;
            if value {
                hv.flip(idx);
            } else {
                hv.set(idx, true);
            }
        }
        let rem = dim % 64;
        if rem != 0 {
            let last = *hv.words().last().unwrap();
            prop_assert_eq!(last & !((1u64 << rem) - 1), 0, "tail bits leaked");
        }
        // count_ones never exceeds dim.
        prop_assert!(hv.count_ones() as usize <= dim);
    }

    /// Similarity bounds and the dot/Hamming identity hold for any pair.
    #[test]
    fn similarity_bounds(a in arb_hv(257), b in arb_hv(257)) {
        let s = normalized_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert_eq!(dot(&a, &b), 257 - 2 * i64::from(hamming_distance(&a, &b)));
    }

    /// Level-memory similarity decays monotonically with level distance
    /// for arbitrary (dim, Q) combinations.
    #[test]
    fn level_similarity_monotone(
        seed in any::<u64>(),
        q in 2usize..16,
        dim_factor in 4usize..32,
    ) {
        let dim = 2 * q * dim_factor; // guarantees dim/(2q) >= 1
        let lm = LevelMemory::generate(seed, dim, q, LevelStyle::Random);
        for base in 0..q {
            let mut last = -1i64;
            for other in base..q {
                let d = i64::from(hamming_distance(lm.level(base), lm.level(other)));
                prop_assert!(d >= last, "distance must not shrink with level gap");
                last = d;
            }
        }
    }

    /// Multi-bit dot against a binary vector is bounded by dim × max_abs.
    #[test]
    fn multibit_dot_bounds(seed in any::<u64>(), bits in 1u8..=3) {
        let precision = match bits {
            1 => IdPrecision::Bits1,
            2 => IdPrecision::Bits2,
            _ => IdPrecision::Bits3,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = MultiBitHypervector::random(&mut rng, 128, precision);
        let b = BinaryHypervector::random(&mut rng, 128);
        let d = mb.dot_binary(&b);
        let bound = 128 * i64::from(precision.max_abs());
        prop_assert!((-bound..=bound).contains(&d));
    }

    /// The encoder never panics on arbitrary valid spectra and always
    /// produces a vector of the configured dimension; encoding is a pure
    /// function of its input.
    #[test]
    fn encoder_total_and_deterministic(
        mzs in proptest::collection::vec(101.0f64..1499.0, 3..40),
        seed in any::<u64>(),
    ) {
        let peaks: Vec<Peak> = mzs.iter().map(|&mz| Peak::new(mz, 10.0)).collect();
        let spectrum = Spectrum::new(0, 700.0, 2, peaks, SpectrumOrigin::Query);
        let pre = Preprocessor::new(PreprocessConfig {
            min_peaks: 1,
            ..PreprocessConfig::default()
        });
        let binned = pre.run(&spectrum).unwrap();
        let encoder = IdLevelEncoder::new(EncoderConfig {
            dim: 512,
            q_levels: 8,
            level_style: LevelStyle::Random,
            seed,
            ..EncoderConfig::default()
        });
        let a = encoder.encode(&binned);
        let b = encoder.encode(&binned);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.dim(), 512);
    }

    /// par_map equals sequential map for any input and thread count.
    #[test]
    fn par_map_equals_map(
        items in proptest::collection::vec(any::<i32>(), 0..100),
        threads in 1usize..9,
    ) {
        let expected: Vec<i64> = items.iter().map(|&x| i64::from(x) * 3 - 1).collect();
        let got = par_map(&items, threads, |&x| i64::from(x) * 3 - 1);
        prop_assert_eq!(got, expected);
    }
}
