//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde's *derive* position (`#[derive(Serialize,
//! Deserialize)]`) for forward compatibility — nothing serialises through
//! serde at runtime (the on-disk index format in `hdoms-index` hand-rolls
//! its bytes). With no network access to fetch the real crate, these
//! derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
