//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal, API-compatible subset of `rand` 0.8: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform `gen_range` over
//! integer and float ranges, `gen_bool`, and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *deterministic, well-mixed* output for a given
//! seed, never on the exact upstream stream.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `gen_range` accepts for output type `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing random value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
