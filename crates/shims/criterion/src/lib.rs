//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the bench suite uses —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Good enough to compare configurations on one machine, which
//! is all the workspace benches do.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the group's throughput unit (recorded, not analysed).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run a named benchmark in this group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            rendered: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Measure `f`, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "  {name}: median {median:?} (min {min:?}, max {max:?}, n={})",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
