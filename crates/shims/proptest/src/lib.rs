//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, `any::<T>()`, range
//! strategies, tuple strategies, [`collection::vec`], the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! seed and inputs via the panic message. Cases are generated from a
//! deterministic per-test seed, so failures reproduce exactly.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (clones of `0`-arity data).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite doubles in a searchable range (no NaN/inf — the workspace
    /// asserts on finite arithmetic).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen_range(rng, -1.0e9..1.0e9)
    }
}

impl Arbitrary for f32 {
    /// Finite floats in a searchable range.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen_range(rng, -1.0e6f32..1.0e6)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// String patterns as strategies: a `&str` is interpreted as a simplified
/// regex supporting literal characters, character classes `[abc]`, and
/// repetition `{m}` / `{m,n}` — the subset the workspace's tests use
/// (e.g. `"[ACDEFGHIKLMNPQRSTVWY]{1,30}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            // One atom: a character class or a literal.
            let class: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                for member in chars.by_ref() {
                    if member == ']' {
                        break;
                    }
                    set.push(member);
                }
                assert!(!set.is_empty(), "empty character class in pattern {self:?}");
                set
            } else {
                vec![c]
            };
            // Optional repetition suffix.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for member in chars.by_ref() {
                    if member == '}' {
                        break;
                    }
                    spec.push(member);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition lower bound"),
                        n.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let exact: usize = spec.trim().parse().expect("bad repetition count");
                        (exact, exact)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rand::Rng::gen_range(rng, min..=max);
            for _ in 0..count {
                out.push(class[rand::Rng::gen_range(rng, 0..class.len())]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn __new_case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name mixes distinct tests onto distinct
    // streams; the case index advances the stream deterministically.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    <StdRng as rand::SeedableRng>::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Define property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::__new_case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let mut rendered_inputs = ::std::string::String::new();
                $(rendered_inputs.push_str(
                    &::std::format!("\n  {} = {:?}", stringify!($arg), $arg),
                );)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {case}: {message}\ninputs:{rendered_inputs}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($config:expr;) => {};
}

/// Assert inside a [`proptest!`] body, reporting the failing case instead
/// of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_and_tuple_strategies(v in collection::vec((any::<u8>(), 0u32..5), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (_, small) in &v {
                prop_assert!(*small < 5);
            }
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..100).contains(&doubled));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|case| rand::Rng::gen(&mut crate::__new_case_rng("t", case)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| rand::Rng::gen(&mut crate::__new_case_rng("t", case)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
